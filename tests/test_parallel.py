"""Partitioned detection: partitions, merge equivalence, executors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CopyParams, InvertedIndex, detect_index
from repro.parallel import (
    detect_hybrid_parallel,
    detect_index_parallel,
    partition_entries,
    partition_positions_by_work,
    partition_weights,
    shared_memory_available,
)
from tests.strategies import worlds


def _example_index(example, example_probabilities, example_accuracies, params):
    return InvertedIndex.build(
        example, example_probabilities, example_accuracies, params
    )


class TestPartitioning:
    def test_blocks_cover_everything_once(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        parts = partition_entries(index, 3, strategy="blocks")
        seen = [pos for part in parts for pos in part.positions]
        assert sorted(seen) == list(range(index.n_entries))

    def test_stride_cover_everything_once(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        parts = partition_entries(index, 4, strategy="stride")
        seen = [pos for part in parts for pos in part.positions]
        assert sorted(seen) == list(range(index.n_entries))

    def test_more_partitions_than_entries(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        parts = partition_entries(index, index.n_entries + 5)
        assert len(parts) == index.n_entries + 5
        assert sum(len(p.positions) for p in parts) == index.n_entries

    def test_invalid_inputs(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        with pytest.raises(ValueError):
            partition_entries(index, 0)
        with pytest.raises(ValueError):
            partition_entries(index, 2, strategy="zigzag")

    def test_work_covers_everything_once(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        parts = partition_entries(index, 3, strategy="work")
        seen = [pos for part in parts for pos in part.positions]
        assert sorted(seen) == list(range(index.n_entries))

    def test_work_positions_stay_in_processing_order(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        for part in partition_entries(index, 4, strategy="work"):
            assert list(part.positions) == sorted(part.positions)

    def test_work_balances_no_worse_than_stride(self):
        """LPT packing bounds the spread by one entry's weight."""
        from repro.fusion import vote_probabilities
        from repro.synth import stock_1day

        world = stock_1day(scale=0.01)
        ds = world.dataset
        params = CopyParams()
        index = InvertedIndex.build(
            ds, vote_probabilities(ds), [0.8] * ds.n_sources, params
        )
        spreads = {}
        for strategy in ("stride", "work"):
            parts = partition_entries(index, 4, strategy=strategy)
            weights = [partition_weights(index, p) for p in parts]
            spreads[strategy] = max(weights) - min(weights)
        assert spreads["work"] <= spreads["stride"]

    def test_work_subset_split_rejects_bad_count(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        with pytest.raises(ValueError):
            partition_positions_by_work(index, range(index.n_entries), 0)

    def test_stride_balances_weights(self):
        """On a skewed profile, stride partitions carry similar loads."""
        from repro.fusion import vote_probabilities
        from repro.synth import stock_1day

        world = stock_1day(scale=0.01)
        ds = world.dataset
        params = CopyParams()
        index = InvertedIndex.build(
            ds, vote_probabilities(ds), [0.8] * ds.n_sources, params
        )
        parts = partition_entries(index, 4, strategy="stride")
        weights = [partition_weights(index, p) for p in parts]
        assert max(weights) <= 2 * max(min(weights), 1)


class TestEquivalence:
    @pytest.mark.parametrize("strategy", ["blocks", "stride"])
    @pytest.mark.parametrize("n_partitions", [1, 2, 5])
    def test_matches_sequential_on_example(
        self,
        example,
        example_probabilities,
        example_accuracies,
        params,
        strategy,
        n_partitions,
    ):
        sequential = detect_index(
            example, example_probabilities, example_accuracies, params
        )
        parallel = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=n_partitions,
            strategy=strategy,
        )
        assert set(parallel.decisions) == set(sequential.decisions)
        for pair, decision in parallel.decisions.items():
            reference = sequential.decisions[pair]
            assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
            assert decision.copying == reference.copying

    @settings(max_examples=40, deadline=None)
    @given(world=worlds(), n_partitions=st.integers(min_value=1, max_value=6))
    def test_matches_sequential_on_random_worlds(self, world, n_partitions):
        dataset, probs, accs = world
        params = CopyParams()
        sequential = detect_index(dataset, probs, accs, params)
        parallel = detect_index_parallel(
            dataset, probs, accs, params, n_partitions=n_partitions
        )
        assert parallel.copying_pairs() == sequential.copying_pairs()
        assert set(parallel.decisions) == set(sequential.decisions)

    def test_thread_executor(
        self, example, example_probabilities, example_accuracies, params
    ):
        sequential = detect_index(
            example, example_probabilities, example_accuracies, params
        )
        parallel = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=3,
            executor="threads",
        )
        assert parallel.copying_pairs() == sequential.copying_pairs()

    def test_unknown_executor(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect_index_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                executor="gpu",
            )

    def test_tail_only_pairs_stay_closed(
        self, example, example_probabilities, example_accuracies, params
    ):
        """S0/S5 share only tail values; no partitioning may open them."""
        ids = {name: i for i, name in enumerate(example.source_names)}
        for n_partitions in (1, 2, 7):
            result = detect_index_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                n_partitions=n_partitions,
            )
            assert result.decision_for(ids["S0"], ids["S5"]) is None


class TestColumnarBackend:
    """The numpy backend's columnar payload path mirrors the dict path."""

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_executors_match_sequential(
        self, example, example_probabilities, example_accuracies, params, executor
    ):
        # Explicit python reference (the default backend is numpy now —
        # this comparison is columnar-payload vs reference dict path).
        sequential = detect_index(
            example,
            example_probabilities,
            example_accuracies,
            CopyParams(backend="python"),
        )
        parallel = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=3,
            executor=executor,
            backend="numpy",
        )
        assert set(parallel.decisions) == set(sequential.decisions)
        for pair, decision in parallel.decisions.items():
            reference = sequential.decisions[pair]
            assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
            assert decision.c_bwd == pytest.approx(reference.c_bwd, abs=1e-9)
            assert decision.copying == reference.copying

    @settings(max_examples=25, deadline=None)
    @given(
        world=worlds(),
        n_partitions=st.integers(min_value=1, max_value=6),
        strategy=st.sampled_from(["stride", "blocks"]),
    )
    def test_matches_python_backend_on_random_worlds(
        self, world, n_partitions, strategy
    ):
        dataset, probs, accs = world
        params = CopyParams(backend="python")
        python = detect_index_parallel(
            dataset,
            probs,
            accs,
            params,
            n_partitions=n_partitions,
            strategy=strategy,
        )
        numpy_ = detect_index_parallel(
            dataset,
            probs,
            accs,
            params,
            n_partitions=n_partitions,
            strategy=strategy,
            backend="numpy",
        )
        assert set(numpy_.decisions) == set(python.decisions)
        for pair, decision in numpy_.decisions.items():
            reference = python.decisions[pair]
            assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
            assert decision.copying == reference.copying
        assert numpy_.cost.values_examined == python.cost.values_examined
        assert numpy_.cost.pairs_considered == python.cost.pairs_considered

    def test_backend_from_params(
        self, example, example_probabilities, example_accuracies
    ):
        """params.backend="numpy" routes the engine without the kwarg."""
        result = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            CopyParams(backend="numpy"),
            n_partitions=2,
        )
        sequential = detect_index(
            example,
            example_probabilities,
            example_accuracies,
            CopyParams(),
        )
        assert result.copying_pairs() == sequential.copying_pairs()

    def test_unknown_backend(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect_index_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                backend="gpu",
            )


class TestHybridParallel:
    """Strong-evidence-prefix partitioning of the HYBRID scan."""

    def test_single_partition_equals_sequential_hybrid(
        self, example, example_probabilities, example_accuracies
    ):
        """With one block the prefix is everything: bit-identical HYBRID."""
        from repro.core import detect_hybrid

        for backend in ("python", "numpy"):
            params = CopyParams(backend=backend)
            parallel = detect_hybrid_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                n_partitions=1,
            )
            sequential = detect_hybrid(
                example, example_probabilities, example_accuracies, params
            ).result
            assert parallel.decisions == sequential.decisions, backend

    @settings(max_examples=25, deadline=None)
    @given(world=worlds(), n_partitions=st.integers(min_value=1, max_value=5))
    def test_executors_agree_bitwise(self, world, n_partitions):
        dataset, probs, accs = world
        for backend in ("python", "numpy"):
            params = CopyParams(backend=backend)
            serial = detect_hybrid_parallel(
                dataset, probs, accs, params, n_partitions=n_partitions
            )
            threaded = detect_hybrid_parallel(
                dataset,
                probs,
                accs,
                params,
                n_partitions=n_partitions,
                executor="threads",
            )
            assert threaded.decisions == serial.decisions, backend
            assert threaded.cost.computations == serial.cost.computations

    @settings(max_examples=25, deadline=None)
    @given(world=worlds(), n_partitions=st.integers(min_value=2, max_value=4))
    def test_sound_against_exact_detection(self, world, n_partitions):
        """Early-copy verdicts are C^min-sound; survivors are exact."""
        dataset, probs, accs = world
        reference = detect_index(dataset, probs, accs, CopyParams())
        result = detect_hybrid_parallel(
            dataset, probs, accs, CopyParams(), n_partitions=n_partitions
        )
        for pair, decision in result.decisions.items():
            exact = reference.decision_for(*pair)
            if decision.early and decision.copying:
                assert exact is not None and exact.copying
            if not decision.early:
                assert exact is not None
                assert decision.copying == exact.copying
                assert decision.c_fwd == pytest.approx(exact.c_fwd, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(world=worlds())
    def test_backends_agree_on_verdicts(self, world):
        dataset, probs, accs = world
        python = detect_hybrid_parallel(
            dataset, probs, accs, CopyParams(backend="python"), n_partitions=3
        )
        numpy_ = detect_hybrid_parallel(
            dataset, probs, accs, CopyParams(backend="numpy"), n_partitions=3
        )
        assert set(numpy_.decisions) == set(python.decisions)
        for pair, decision in numpy_.decisions.items():
            reference = python.decisions[pair]
            assert decision.copying == reference.copying
            assert decision.early == reference.early
            assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
            assert decision.c_bwd == pytest.approx(reference.c_bwd, abs=1e-9)

    def test_processes_executor(
        self, example, example_probabilities, example_accuracies, params
    ):
        """A real process pool reproduces the serial outcome."""
        serial = detect_hybrid_parallel(
            example, example_probabilities, example_accuracies, params,
            n_partitions=3,
        )
        processes = detect_hybrid_parallel(
            example, example_probabilities, example_accuracies, params,
            n_partitions=3, executor="processes",
        )
        assert processes.decisions == serial.decisions

    def test_unknown_executor(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect_hybrid_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                executor="gpu",
            )

    def test_unknown_reduce_and_partition_axis(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect_hybrid_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                reduce="sum",
            )
        with pytest.raises(ValueError):
            detect_hybrid_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                partition_by="value",
            )

    @settings(max_examples=20, deadline=None)
    @given(world=worlds(), n_partitions=st.integers(min_value=2, max_value=5))
    def test_work_partitioned_suffix_matches_entries(self, world, n_partitions):
        """The prefix is identical, suffix sums re-associate only."""
        dataset, probs, accs = world
        for backend in ("python", "numpy"):
            params = CopyParams(backend=backend)
            by_entries = detect_hybrid_parallel(
                dataset, probs, accs, params, n_partitions=n_partitions
            )
            by_work = detect_hybrid_parallel(
                dataset,
                probs,
                accs,
                params,
                n_partitions=n_partitions,
                partition_by="work",
            )
            assert set(by_work.decisions) == set(by_entries.decisions)
            for pair, decision in by_work.decisions.items():
                reference = by_entries.decisions[pair]
                assert decision.copying == reference.copying
                assert decision.early == reference.early
                assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)


class TestEmptyWorld:
    def test_no_shared_values_all_executors(self):
        """A world with no multi-provider value yields empty results
        (regression: the columnar path filtered every partition out and
        handed ThreadPoolExecutor an illegal max_workers=0)."""
        from repro.data import DatasetBuilder

        b = DatasetBuilder()
        b.add("S0", "item0", "a")
        b.add("S1", "item1", "b")
        dataset = b.build()
        probs = [0.5] * dataset.n_values
        accs = [0.8] * dataset.n_sources
        for backend in ("python", "numpy"):
            params = CopyParams(backend=backend)
            for executor in ("serial", "threads", "processes"):
                result = detect_index_parallel(
                    dataset, probs, accs, params,
                    n_partitions=3, executor=executor,
                )
                assert result.decisions == {}, (backend, executor)


class TestTreeReduce:
    """Tree-wise (pairwise) merging agrees with the flat reduce."""

    @settings(max_examples=25, deadline=None)
    @given(
        world=worlds(),
        n_partitions=st.integers(min_value=1, max_value=9),
        backend=st.sampled_from(["python", "numpy"]),
    )
    def test_index_tree_matches_flat(self, world, n_partitions, backend):
        dataset, probs, accs = world
        params = CopyParams(backend=backend)
        flat = detect_index_parallel(
            dataset, probs, accs, params, n_partitions=n_partitions, reduce="flat"
        )
        tree = detect_index_parallel(
            dataset, probs, accs, params, n_partitions=n_partitions, reduce="tree"
        )
        assert set(tree.decisions) == set(flat.decisions)
        assert tree.cost.values_examined == flat.cost.values_examined
        for pair, decision in tree.decisions.items():
            reference = flat.decisions[pair]
            assert decision.copying == reference.copying
            assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
            assert decision.c_bwd == pytest.approx(reference.c_bwd, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(world=worlds(), n_partitions=st.integers(min_value=2, max_value=6))
    def test_hybrid_tree_matches_flat(self, world, n_partitions):
        dataset, probs, accs = world
        for backend in ("python", "numpy"):
            params = CopyParams(backend=backend)
            flat = detect_hybrid_parallel(
                dataset, probs, accs, params, n_partitions=n_partitions
            )
            tree = detect_hybrid_parallel(
                dataset,
                probs,
                accs,
                params,
                n_partitions=n_partitions,
                reduce="tree",
            )
            assert set(tree.decisions) == set(flat.decisions)
            for pair, decision in tree.decisions.items():
                reference = flat.decisions[pair]
                assert decision.copying == reference.copying
                assert decision.early == reference.early
                assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(world=worlds(), backend=st.sampled_from(["python", "numpy"]))
    def test_single_partition_bit_identical_to_sequential(self, world, backend):
        """Acceptance: n_partitions=1 + tree reduce == sequential, bitwise."""
        from repro.core import detect_hybrid

        dataset, probs, accs = world
        params = CopyParams(backend=backend)
        index_seq = detect_index(dataset, probs, accs, params)
        index_par = detect_index_parallel(
            dataset, probs, accs, params, n_partitions=1, reduce="tree"
        )
        assert index_par.decisions == index_seq.decisions
        hybrid_seq = detect_hybrid(dataset, probs, accs, params).result
        hybrid_par = detect_hybrid_parallel(
            dataset,
            probs,
            accs,
            params,
            n_partitions=1,
            reduce="tree",
            partition_by="work",
        )
        assert hybrid_par.decisions == hybrid_seq.decisions

    def test_unknown_reduce_mode(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect_index_parallel(
                example,
                example_probabilities,
                example_accuracies,
                params,
                reduce="sum",
            )


class TestSharedMemory:
    """The shm broadcast path and its pickling fallback."""

    def test_shared_memory_available_probe(self):
        assert isinstance(shared_memory_available(), bool)

    def test_columnar_take_matches_from_index(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Slicing the broadcast world == building the partition payload."""
        np = pytest.importorskip("numpy")
        from repro.core.kernel import ColumnarEntries

        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        world = ColumnarEntries.from_index(index)
        for positions in ([], [0], list(range(0, index.n_entries, 2))):
            direct = ColumnarEntries.from_index(index, positions)
            sliced = world.take(positions)
            assert np.array_equal(sliced.probs, direct.probs)
            assert np.array_equal(sliced.main, direct.main)
            assert np.array_equal(sliced.offsets, direct.offsets)
            assert np.array_equal(sliced.providers, direct.providers)

    def test_world_roundtrips_through_shared_memory(
        self, example, example_probabilities, example_accuracies, params
    ):
        np = pytest.importorskip("numpy")
        if not shared_memory_available():
            pytest.skip("no usable shared memory on this platform")
        from repro.core.kernel import ColumnarEntries
        from repro.parallel.shm import SharedWorld, attached_world

        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        cols = ColumnarEntries.from_index(index)
        with SharedWorld.create(
            cols, list(example_accuracies), example.n_sources
        ) as world:
            attached, accuracies = attached_world(world.handle)
            assert np.array_equal(attached.probs, cols.probs)
            assert np.array_equal(attached.main, cols.main)
            assert np.array_equal(attached.offsets, cols.offsets)
            assert np.array_equal(attached.providers, cols.providers)
            assert np.array_equal(accuracies, np.asarray(example_accuracies))
            # Drop the cached attachment before the block disappears.
            from repro.parallel import shm

            shm._ATTACHED.pop(world.handle.name, None)

    @pytest.mark.parametrize("reduce", ["flat", "tree"])
    def test_processes_with_many_partitions_match_serial(
        self, example, example_probabilities, example_accuracies, reduce
    ):
        """>= 8 partitions through a real pool over one broadcast world."""
        pytest.importorskip("numpy")
        params = CopyParams(backend="numpy")
        serial = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=8,
            reduce=reduce,
        )
        pooled = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=8,
            executor="processes",
            reduce=reduce,
        )
        assert pooled.decisions == serial.decisions
        assert pooled.cost.values_examined == serial.cost.values_examined

    def test_fallback_to_pickled_payloads(
        self, example, example_probabilities, example_accuracies, monkeypatch
    ):
        """With shm unavailable the engine pickles payloads and agrees."""
        pytest.importorskip("numpy")
        from repro.parallel import engine
        from repro.parallel.shm import SharedWorld

        def no_shm(*args, **kwargs):
            raise OSError("shared memory disabled for this test")

        monkeypatch.setattr(SharedWorld, "create", classmethod(no_shm))
        params = CopyParams(backend="numpy")
        serial = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=3,
        )
        fallback = detect_index_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=3,
            executor="processes",
        )
        assert fallback.decisions == serial.decisions
        index = _example_index(
            example, example_probabilities, example_accuracies, params
        )
        assert engine._map_columnar_shm(
            index,
            partition_entries(index, 2),
            list(example_accuracies),
            params,
            example.n_sources,
        ) is None

    def test_hybrid_suffix_through_processes(
        self, example, example_probabilities, example_accuracies
    ):
        """HYBRID's suffix blocks ride the same broadcast machinery."""
        pytest.importorskip("numpy")
        params = CopyParams(backend="numpy")
        serial = detect_hybrid_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=8,
            reduce="tree",
            partition_by="work",
        )
        pooled = detect_hybrid_parallel(
            example,
            example_probabilities,
            example_accuracies,
            params,
            n_partitions=8,
            executor="processes",
            reduce="tree",
            partition_by="work",
        )
        assert pooled.decisions == serial.decisions
