"""The vectorized scoring kernel and backend equivalence.

The numpy backend reorders floating-point additions, so scores are
compared to the pure-Python reference at 1e-9; verdicts (the booleans the
paper actually reports) must be *identical*.
"""

import pytest

np = pytest.importorskip("numpy", reason="the vectorized backend needs numpy")

from hypothesis import given, settings

from repro.core import (
    BACKENDS,
    ColumnarEntries,
    CopyParams,
    InvertedIndex,
    PairTable,
    detect,
    entry_triangle_scores,
    same_value_scores_both,
    scan_columnar,
)
from repro.core.kernel import count_shared_items_columnar, posterior_arrays
from repro.core.contribution import posterior
from repro.simjoin import count_shared_items
from tests.strategies import worlds

METHODS = ("pairwise", "index", "bound", "bound+", "hybrid")


class TestEntryTriangle:
    def test_matches_scalar_contribution(self, params):
        """The broadcast Eq. (6) agrees with the scalar reference."""
        p_true = 0.3
        accs = [0.9, 0.6, 0.75, 0.2]
        fwd, bwd = entry_triangle_scores(p_true, accs, params)
        k = len(accs)
        m = 0
        for i in range(k):
            for j in range(i + 1, k):
                ref_fwd, ref_bwd = same_value_scores_both(
                    p_true, accs[i], accs[j], params
                )
                assert fwd[m] == pytest.approx(ref_fwd, abs=1e-12)
                assert bwd[m] == pytest.approx(ref_bwd, abs=1e-12)
                m += 1
        assert m == len(fwd) == len(bwd) == k * (k - 1) // 2

    def test_clamps_extreme_accuracies(self, params):
        fwd, bwd = entry_triangle_scores(0.5, [0.0, 1.0], params)
        assert np.isfinite(fwd).all() and np.isfinite(bwd).all()


class TestPairTable:
    def test_accumulates_and_merges(self):
        n_sources = 4
        keys = np.array([1, 1, 2, 7], dtype=np.int64)  # pairs (0,1),(0,2),(1,3)
        fwd = np.array([1.0, 2.0, 3.0, 4.0])
        bwd = np.array([0.5, 0.5, 0.5, 0.5])
        main = np.array([True, False, False, True])
        table = PairTable.from_incidences(n_sources, keys, fwd, bwd, main)
        assert table.keys.tolist() == [1, 2, 7]
        assert table.c_fwd.tolist() == [3.0, 3.0, 4.0]
        assert table.n_shared.tolist() == [2, 1, 1]
        assert table.saw_main.tolist() == [True, False, True]
        assert table.pairs() == [(0, 1), (0, 2), (1, 3)]

        # Splitting the stream and merging must give the same table.
        half_a = PairTable.from_incidences(
            n_sources, keys[:2], fwd[:2], bwd[:2], main[:2]
        )
        half_b = PairTable.from_incidences(
            n_sources, keys[2:], fwd[2:], bwd[2:], main[2:]
        )
        merged = PairTable.merge([half_a, half_b])
        assert merged.keys.tolist() == table.keys.tolist()
        assert merged.c_fwd.tolist() == table.c_fwd.tolist()
        assert merged.n_shared.tolist() == table.n_shared.tolist()
        assert merged.saw_main.tolist() == table.saw_main.tolist()

    def test_sparse_path_matches_dense(self, monkeypatch):
        """Forcing the np.unique path gives the same reduction."""
        import repro.core.kernel as kernel

        rng = np.random.default_rng(3)
        n_sources = 30
        keys = rng.integers(0, n_sources * n_sources, 500).astype(np.int64)
        fwd = rng.normal(size=500)
        bwd = rng.normal(size=500)
        main = rng.random(500) < 0.5
        dense = PairTable.from_incidences(n_sources, keys, fwd, bwd, main)
        monkeypatch.setattr(kernel, "DENSE_KEY_SPACE", 0)
        sparse = PairTable.from_incidences(n_sources, keys, fwd, bwd, main)
        assert sparse.keys.tolist() == dense.keys.tolist()
        np.testing.assert_allclose(sparse.c_fwd, dense.c_fwd, atol=1e-12)
        np.testing.assert_allclose(sparse.c_bwd, dense.c_bwd, atol=1e-12)
        assert sparse.n_shared.tolist() == dense.n_shared.tolist()
        assert sparse.saw_main.tolist() == dense.saw_main.tolist()

    def test_merge_rejects_mixed_strides(self):
        a = PairTable.empty(3)
        with pytest.raises(ValueError):
            PairTable.merge([a])  # all empty
        full = PairTable.from_incidences(
            4,
            np.array([1], dtype=np.int64),
            np.array([1.0]),
            np.array([1.0]),
            np.array([True]),
        )
        other = PairTable.from_incidences(
            5,
            np.array([1], dtype=np.int64),
            np.array([1.0]),
            np.array([1.0]),
            np.array([True]),
        )
        with pytest.raises(ValueError):
            PairTable.merge([full, other])


class TestColumnarEntries:
    def test_from_index_roundtrip(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = InvertedIndex.build(
            example, example_probabilities, example_accuracies, params
        )
        cols = ColumnarEntries.from_index(index)
        assert cols.n_entries == index.n_entries
        for pos, entry in enumerate(index.entries):
            start, stop = cols.offsets[pos], cols.offsets[pos + 1]
            assert cols.providers[start:stop].tolist() == entry.providers
            assert cols.probs[pos] == entry.probability
            assert bool(cols.main[pos]) == (pos < index.tail_start)

    def test_scan_matches_python_state(
        self, example, example_probabilities, example_accuracies, params
    ):
        """The kernel scan reproduces detect_index's accumulated state."""
        index = InvertedIndex.build(
            example, example_probabilities, example_accuracies, params
        )
        cols = ColumnarEntries.from_index(index)
        table = scan_columnar(cols, example_accuracies, params, example.n_sources)
        reference = detect(
            example,
            example_probabilities,
            example_accuracies,
            params,
            method="index",
        )
        opened = {
            pair for pair, main in zip(table.pairs(), table.saw_main.tolist()) if main
        }
        assert opened == set(reference.decisions)


class TestSharedItemsColumnar:
    @settings(max_examples=50, deadline=None)
    @given(world=worlds())
    def test_matches_simjoin(self, world):
        dataset, _, _ = world
        assert count_shared_items_columnar(dataset) == count_shared_items(dataset)


class TestPosteriorArrays:
    def test_matches_scalar(self, params):
        rng = np.random.default_rng(7)
        c_fwd = rng.uniform(-50.0, 500.0, 64)
        c_bwd = rng.uniform(-50.0, 500.0, 64)
        ind, fwd, bwd = posterior_arrays(c_fwd, c_bwd, params)
        for m in range(len(c_fwd)):
            ref = posterior(c_fwd[m], c_bwd[m], params)
            assert ind[m] == pytest.approx(ref.independent, abs=1e-12)
            assert fwd[m] == pytest.approx(ref.forward, abs=1e-12)
            assert bwd[m] == pytest.approx(ref.backward, abs=1e-12)


class TestBackendEquivalence:
    """The acceptance property: both backends agree on every method."""

    @settings(max_examples=25, deadline=None)
    @given(world=worlds())
    @pytest.mark.parametrize("method", METHODS)
    def test_verdicts_and_posteriors_agree(self, world, method):
        dataset, probs, accs = world
        reference = detect(
            dataset, probs, accs, CopyParams(backend="python"), method=method
        )
        vectorized = detect(
            dataset, probs, accs, CopyParams(backend="numpy"), method=method
        )
        assert set(vectorized.decisions) == set(reference.decisions)
        for pair, ref in reference.decisions.items():
            vec = vectorized.decisions[pair]
            assert vec.copying == ref.copying
            assert vec.c_fwd == pytest.approx(ref.c_fwd, abs=1e-9)
            assert vec.c_bwd == pytest.approx(ref.c_bwd, abs=1e-9)
            assert vec.posterior.independent == pytest.approx(
                ref.posterior.independent, abs=1e-9
            )
            assert vec.posterior.forward == pytest.approx(
                ref.posterior.forward, abs=1e-9
            )
            assert vec.posterior.backward == pytest.approx(
                ref.posterior.backward, abs=1e-9
            )

    @pytest.mark.parametrize("method", ("pairwise", "index"))
    def test_cost_accounting_matches_on_example(
        self, example, example_probabilities, example_accuracies, params, method
    ):
        """The numpy backend reproduces the paper's computation counts."""
        # The reference side pins backend="python" explicitly: since the
        # default flipped to numpy, a bare `params` here would make this
        # a vacuous numpy-vs-numpy comparison.
        ref = detect(
            example,
            example_probabilities,
            example_accuracies,
            params,
            method=method,
            backend="python",
        )
        vec = detect(
            example,
            example_probabilities,
            example_accuracies,
            params,
            method=method,
            backend="numpy",
        )
        assert vec.cost.computations == ref.cost.computations
        assert vec.cost.values_examined == ref.cost.values_examined
        assert vec.cost.pairs_considered == ref.cost.pairs_considered

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            CopyParams(backend="fortran")
        assert set(BACKENDS) == {"python", "numpy"}
