"""BOUND / BOUND+ / HYBRID: Example 4.2 behaviour and bound soundness."""

import pytest
from hypothesis import given, settings

from repro.core import (
    CopyParams,
    detect_bound,
    detect_bound_plus,
    detect_hybrid,
    detect_index,
    detect_pairwise,
)
from tests.strategies import worlds


class TestExample42:
    @pytest.fixture(scope="class")
    def result(self, example, example_probabilities, example_accuracies, params):
        return detect_bound(example, example_probabilities, example_accuracies, params)

    def test_s2_s3_concluded_early_as_copying(self, result, example):
        """Example 4.2: copying for (S2, S3) after two shared values."""
        ids = {name: i for i, name in enumerate(example.source_names)}
        decision = result.decision_for(ids["S2"], ids["S3"])
        assert decision.early
        assert decision.copying

    def test_s0_s1_concluded_early_as_independent(self, result, example):
        """Example 4.2: no-copying for (S0, S1) at their third shared entry."""
        ids = {name: i for i, name in enumerate(example.source_names)}
        decision = result.decision_for(ids["S0"], ids["S1"])
        assert decision.early
        assert not decision.copying

    def test_same_pairs_as_index(self, result):
        assert result.cost.pairs_considered == 26

    def test_fewer_values_than_index(self, result):
        """BOUND examines ~33 shared values vs INDEX's 51 (Example 4.2)."""
        assert result.cost.values_examined < 51

    def test_binary_results_match_pairwise(
        self, result, example, example_probabilities, example_accuracies, params
    ):
        pw = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        assert result.copying_pairs() == pw.copying_pairs()


class TestSoundness:
    """The bound decisions must agree with exact detection (rare misses
    come only from the h-estimate in Eq. 10, which these small worlds
    should not trigger for copy conclusions — C^min is exact)."""

    @settings(max_examples=60, deadline=None)
    @given(world=worlds())
    def test_copy_conclusions_sound(self, world):
        """Early *copying* verdicts rely on the exact C^min: always right."""
        dataset, probs, accs = world
        params = CopyParams()
        pw = detect_pairwise(dataset, probs, accs, params)
        bd = detect_bound(dataset, probs, accs, params)
        for pair, decision in bd.decisions.items():
            if decision.copying and decision.early:
                reference = pw.decision_for(*pair)
                assert reference is not None and reference.copying

    @settings(max_examples=60, deadline=None)
    @given(world=worlds())
    def test_bound_family_agree_with_each_other(self, world):
        dataset, probs, accs = world
        params = CopyParams()
        bd = detect_bound(dataset, probs, accs, params)
        bp = detect_bound_plus(dataset, probs, accs, params)
        assert bd.copying_pairs() == bp.copying_pairs()

    @settings(max_examples=60, deadline=None)
    @given(world=worlds())
    def test_hybrid_matches_pairwise_on_small_worlds(self, world):
        """Small-overlap pairs run in exact mode, so HYBRID == PAIRWISE here."""
        dataset, probs, accs = world
        params = CopyParams()
        pw = detect_pairwise(dataset, probs, accs, params)
        hy = detect_hybrid(dataset, probs, accs, params).result
        assert hy.copying_pairs() == pw.copying_pairs()


class TestBoundPlusEfficiency:
    def test_fewer_computations_than_bound_on_dense_data(self, params):
        from repro.synth import stock_1day

        world = stock_1day(scale=0.02)
        ds = world.dataset
        from repro.fusion import vote_probabilities

        probs = vote_probabilities(ds)
        accs = [0.8] * ds.n_sources
        bd = detect_bound(ds, probs, accs, params)
        bp = detect_bound_plus(ds, probs, accs, params)
        assert bp.cost.computations < bd.cost.computations
        assert bp.copying_pairs() == bd.copying_pairs()


class TestHybridModes:
    def test_threshold_zero_equals_bound_plus(
        self, example, example_probabilities, example_accuracies, params
    ):
        bp = detect_bound_plus(
            example, example_probabilities, example_accuracies, params
        )
        hy = detect_hybrid(
            example,
            example_probabilities,
            example_accuracies,
            params,
            hybrid_threshold=0,
        ).result
        assert hy.copying_pairs() == bp.copying_pairs()
        assert hy.cost.computations == bp.cost.computations

    def test_huge_threshold_equals_index(
        self, example, example_probabilities, example_accuracies, params
    ):
        """With every pair in exact mode HYBRID degenerates to INDEX."""
        ix = detect_index(example, example_probabilities, example_accuracies, params)
        hy = detect_hybrid(
            example,
            example_probabilities,
            example_accuracies,
            params,
            hybrid_threshold=10_000,
        ).result
        assert hy.copying_pairs() == ix.copying_pairs()
        assert hy.cost.values_examined == ix.cost.values_examined


class TestBookkeeping:
    def test_bookkeeping_recorded_when_tracking(
        self, example, example_probabilities, example_accuracies, params
    ):
        outcome = detect_hybrid(
            example,
            example_probabilities,
            example_accuracies,
            params,
            track_bookkeeping=True,
        )
        assert outcome.bookkeeping is not None
        assert set(outcome.bookkeeping) == set(outcome.result.decisions)
        end = outcome.index.n_entries
        for pair, book in outcome.bookkeeping.items():
            decision = outcome.result.decisions[pair]
            assert book.copying == decision.copying
            assert 0 <= book.decision_pos <= end
            assert book.n_before + book.n_after <= book.l

    def test_exact_pairs_have_exact_base_scores(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Pairs resolved at scan end store their exact final scores."""
        pw = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        outcome = detect_hybrid(
            example,
            example_probabilities,
            example_accuracies,
            params,
            track_bookkeeping=True,
        )
        end = outcome.index.n_entries
        for pair, book in outcome.bookkeeping.items():
            if book.decision_pos == end:
                reference = pw.decision_for(*pair)
                assert book.c_base_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
                assert book.c_base_bwd == pytest.approx(reference.c_bwd, abs=1e-9)

    def test_no_bookkeeping_by_default(
        self, example, example_probabilities, example_accuracies, params
    ):
        outcome = detect_hybrid(
            example, example_probabilities, example_accuracies, params
        )
        assert outcome.bookkeeping is None
