"""Replay the conformance regression corpus (tier-1, forever).

Every fixture under ``tests/data/corpus/`` is a complete, shrunk
(world, configuration) case the differential engine once flagged — or a
seed case pinning a behaviour worth replaying (near-tie truth breaking,
``theta_cp`` float edges, the dense lockstep regime).  Re-running them
on every test run guarantees a fixed divergence can never silently
return.  New fixtures appear automatically:
``repro-copydetect conformance --corpus tests/data/corpus`` writes any
fresh divergence here, and this module picks it up without edits.
"""

from pathlib import Path

import pytest

from repro.conformance import corpus_paths, load_case, replay_case

CORPUS_DIR = Path(__file__).parent / "data" / "corpus"

FIXTURES = corpus_paths(CORPUS_DIR)


def test_corpus_is_present():
    """The seed fixtures ship with the repo; an empty corpus means a
    packaging or path regression, not a clean bill of health."""
    assert len(FIXTURES) >= 4


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_replays_clean(path):
    divergences = replay_case(path)
    assert divergences == [], (
        f"{path.name} diverges again:\n" + "\n".join(divergences[:5])
    )


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_is_well_formed(path):
    world, config, meta = load_case(path)
    assert meta["version"] == 1
    assert meta["id"] == path.stem
    assert world.n_sources >= 2
    assert config.label  # parses back into a valid CaseConfig
