"""The conformance engine: generators, contracts, shrinking, corpus."""

import json

import pytest

from repro.conformance import (
    CaseConfig,
    RandomChooser,
    adversarial_world,
    case_id,
    generate_world,
    load_case,
    random_world,
    replay_case,
    run_case,
    run_grid,
    save_case,
    shrink_world,
    smoke_grid,
    full_grid,
    world_from_problem,
)
from repro.conformance.engine import _detection_problems
from repro.core import CopyParams, detect


class TestGenerators:
    def test_world_stream_is_deterministic(self):
        for index in range(14):
            first = generate_world(index, seed=31)
            second = generate_world(index, seed=31)
            assert first.sources == second.sources
            assert first.claims == second.claims
            assert first.prob_by_value == second.prob_by_value
            assert first.acc_by_source == second.acc_by_source

    def test_world_stream_varies_with_seed(self):
        assert generate_world(0, seed=1).claims != generate_world(0, seed=2).claims

    def test_stream_cycles_all_kinds(self):
        kinds = {generate_world(i, seed=7).kind.split(":")[0] for i in range(16)}
        assert kinds == {
            "random", "adversarial", "shared_run", "profile",
            "large_sparse", "theta_edge",
        }

    def test_materialize_is_stable(self):
        world = generate_world(3, seed=7)
        first = world.materialize()
        second = world.materialize()
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert first[0].source_names == second[0].source_names

    def test_worlds_are_detectable(self):
        import random

        for builder in (random_world, adversarial_world):
            world = builder(RandomChooser(random.Random(5)))
            dataset, probs, accs = world.materialize()
            assert dataset.n_sources >= 2
            assert len(probs) == dataset.n_values
            assert len(accs) == dataset.n_sources
            detect(dataset, probs, accs, CopyParams(backend="python"))

    def test_world_from_problem_round_trips(self, example):
        probs = [0.5 + 0.001 * v for v in range(example.n_values)]
        accs = [0.6 + 0.01 * s for s in range(example.n_sources)]
        world = world_from_problem(example, probs, accs, kind="example")
        dataset, got_probs, got_accs = world.materialize()
        assert dataset.source_names == example.source_names
        assert dataset.claims == example.claims
        assert got_probs == probs
        assert got_accs == accs

    def test_cuts_preserve_name_keying(self):
        world = generate_world(0, seed=7)
        source = world.sources[-1]
        cut = world.without_source(source)
        assert source not in cut.sources
        assert all(claim[0] != source for claim in cut.claims)
        dataset, probs, accs = cut.materialize()
        assert len(accs) == dataset.n_sources


class TestCaseConfig:
    def test_rejects_bad_mode_and_method(self):
        with pytest.raises(ValueError):
            CaseConfig("fuzz", "index")
        with pytest.raises(ValueError):
            CaseConfig("detect", "incremental")  # fusion-only method
        with pytest.raises(ValueError):
            CaseConfig("scan", "pairwise")

    def test_contract_classification(self):
        assert CaseConfig("scan", "bound").contract == "bitexact"
        assert CaseConfig("detect", "bound+").contract == "bitexact"
        assert CaseConfig("detect", "pairwise").contract == "numeric"
        assert (
            CaseConfig("detect", "index", backend="python",
                       n_partitions=2, executor="threads").contract
            == "bitexact"
        )
        assert (
            CaseConfig("detect", "hybrid", n_partitions=2).contract == "numeric"
        )

    def test_reference_flips_only_implementation_axes(self):
        config = CaseConfig(
            "detect", "hybrid", n_partitions=3, executor="processes",
            reduce="tree", partition_by="work", epoch_size=16,
        )
        reference = config.reference()
        assert reference.backend == "python"
        assert reference.executor == "serial"
        assert reference.n_partitions == 3
        assert reference.reduce == "tree"
        assert reference.partition_by == "work"
        assert reference.epoch_size == 16

    def test_grid_labels_unique(self):
        for grid in (smoke_grid(), full_grid()):
            labels = [config.label for config in grid]
            assert len(labels) == len(set(labels))

    def test_smoke_grid_covers_required_axes(self):
        """The acceptance surface: seven methods, two backends, all four
        executors, both reduce modes, multi-round incremental fusion."""
        grid = smoke_grid()
        methods = {c.method for c in grid}
        assert methods >= {
            "pairwise", "index", "bound", "bound+", "hybrid",
            "incremental", "none",
        }
        assert {c.backend for c in grid} == {"python", "numpy"}
        assert {c.executor for c in grid} == {
            "serial", "threads", "processes", "remote",
        }
        assert {c.reduce for c in grid} == {"flat", "tree"}
        assert {c.partition_by for c in grid} == {"entries", "work"}
        assert any(
            c.mode == "fusion" and c.method == "incremental" and c.rounds >= 3
            for c in grid
        )


class TestRunCase:
    @pytest.mark.parametrize(
        "config",
        [
            CaseConfig("detect", "pairwise"),
            CaseConfig("detect", "bound+"),
            CaseConfig("scan", "hybrid", epoch_size=3),
            CaseConfig("fusion", "incremental", rounds=3),
            CaseConfig("detect", "index", n_partitions=2, executor="threads",
                       reduce="tree"),
        ],
        ids=lambda c: c.label,
    )
    def test_conforming_configs_produce_no_divergence(self, config):
        for index in (0, 1, 4):
            outcome = run_case(generate_world(index, seed=13), config)
            assert outcome.divergences == []

    def test_candidate_exception_is_a_divergence(self, monkeypatch):
        import repro.core.bound_kernel as bound_kernel

        def boom(*args, **kwargs):
            raise RuntimeError("injected kernel fault")

        monkeypatch.setattr(bound_kernel, "scan_with_bounds_numpy", boom)
        outcome = run_case(
            generate_world(0, seed=13), CaseConfig("detect", "bound")
        )
        assert outcome.diverged
        assert "injected kernel fault" in outcome.divergences[0]

    def test_detection_problems_flag_each_field(self, example, params):
        from dataclasses import replace as dc_replace

        probs = [0.5] * example.n_values
        accs = [0.8] * example.n_sources
        reference = detect(
            example, probs, accs, CopyParams(backend="python"), method="pairwise"
        )
        candidate = detect(
            example, probs, accs, CopyParams(backend="python"), method="pairwise"
        )
        assert _detection_problems(reference, candidate, "bitexact", 1, "pairwise") == []
        pair, decision = next(iter(candidate.decisions.items()))
        candidate.decisions[pair] = dc_replace(decision, c_fwd=decision.c_fwd + 1e-6)
        numeric = _detection_problems(reference, candidate, "numeric", 1, "pairwise")
        assert any("c_fwd" in problem for problem in numeric)
        bitexact = _detection_problems(reference, candidate, "bitexact", 1, "pairwise")
        assert any("bit-identical" in problem for problem in bitexact)
        candidate.decisions.pop(pair)
        assert any(
            "pairs differ" in problem
            for problem in _detection_problems(
                reference, candidate, "numeric", 1, "pairwise"
            )
        )

    def test_injected_fusion_fault_is_caught_and_shrunk(self, monkeypatch, tmp_path):
        """End to end: a corrupted ACCU kernel diverges, the world
        shrinks, the fixture replays red under the fault and green
        without it."""
        import repro.fusion.accu_kernel as accu_kernel

        true_update = accu_kernel.update_accuracies_columnar

        def skewed(cols, probabilities, params):
            return true_update(cols, probabilities, params) * 0.999

        monkeypatch.setattr(accu_kernel, "update_accuracies_columnar", skewed)
        config = CaseConfig("fusion", "none", rounds=2)
        world = generate_world(0, seed=13)
        outcome = run_case(world, config)
        assert outcome.diverged
        assert any("accuracies" in detail for detail in outcome.divergences)

        shrunk = shrink_world(
            world, lambda w: run_case(w, config).diverged, max_checks=60
        )
        assert shrunk.n_claims <= world.n_claims
        assert run_case(shrunk, config).diverged

        path = save_case(
            shrunk, config, outcome.divergences, corpus_dir=tmp_path
        )
        assert replay_case(path)  # still red while the fault is injected
        monkeypatch.setattr(accu_kernel, "update_accuracies_columnar", true_update)
        assert replay_case(path) == []  # green once fixed

    def test_shrinker_minimises_against_a_predicate(self):
        world = generate_world(2, seed=13)
        assert world.n_claims > 2
        target = world.claims[0]

        shrunk = shrink_world(
            world, lambda w: target in w.claims, max_checks=500
        )
        assert target in shrunk.claims
        assert shrunk.n_sources == 2  # floor: detection needs a pair
        assert all(
            claim == target or claim[0] != target[0] for claim in shrunk.claims
        ) or shrunk.n_claims < world.n_claims


class TestGridRunner:
    def test_small_grid_runs_green(self):
        report = run_grid(grid="smoke", n_cases=26, seed=19)
        assert report.ok
        assert report.n_cases == 26
        assert sum(report.cases_per_config.values()) == 26
        payload = report.to_json()
        assert payload["version"] == 1
        assert payload["ok"] is True
        assert len(payload["configs"]) == len(smoke_grid())

    def test_unknown_grid_rejected(self):
        with pytest.raises(ValueError):
            run_grid(grid="nope", n_cases=1)
        with pytest.raises(ValueError):
            run_grid(grid="smoke", n_cases=0)

    def test_divergences_reach_report_and_corpus(self, monkeypatch, tmp_path):
        import repro.fusion.accu_kernel as accu_kernel

        true_update = accu_kernel.update_accuracies_columnar
        monkeypatch.setattr(
            accu_kernel,
            "update_accuracies_columnar",
            lambda cols, probabilities, params: true_update(
                cols, probabilities, params
            )
            * 0.999,
        )
        configs = [CaseConfig("fusion", "none", rounds=2)]
        report = run_grid(
            n_cases=2,
            seed=13,
            configs=configs,
            corpus_dir=tmp_path,
            max_shrink_checks=30,
        )
        assert not report.ok
        assert report.divergences
        fixture = report.divergences[0].corpus_path
        assert fixture is not None
        payload = json.loads(open(fixture).read())
        assert payload["version"] == 1
        assert payload["divergence_at_capture"]


class TestCorpusFormat:
    def test_round_trip_is_lossless(self, tmp_path):
        world = generate_world(1, seed=23)
        config = CaseConfig("scan", "bound+", epoch_size=3)
        path = save_case(world, config, ["details"], corpus_dir=tmp_path)
        loaded_world, loaded_config, meta = load_case(path)
        assert loaded_world.sources == world.sources
        assert loaded_world.claims == world.claims
        assert loaded_world.prob_by_value == world.prob_by_value  # bit-exact
        assert loaded_world.acc_by_source == world.acc_by_source
        assert loaded_config == config
        assert meta["version"] == 1
        assert meta["id"] == case_id(world, config)

    def test_newer_schema_rejected(self, tmp_path):
        world = generate_world(1, seed=23)
        path = save_case(world, CaseConfig("detect", "index"), [], tmp_path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            load_case(path)

    def test_case_id_is_deterministic_and_distinct(self):
        world = generate_world(1, seed=23)
        other = generate_world(2, seed=23)
        config = CaseConfig("detect", "index")
        assert case_id(world, config) == case_id(world, config)
        assert case_id(world, config) != case_id(other, config)
        assert case_id(world, config) != case_id(
            world, CaseConfig("detect", "pairwise")
        )
