"""The columnar fusion backend: ACCU/ACCUCOPY kernel parity, the
round-persistent FusionWorkspace, and executor lifecycle hygiene."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.conformance import CaseConfig, run_case, world_from_problem
from repro.core import (
    CopyParams,
    IncrementalDetector,
    InvertedIndex,
    SingleRoundDetector,
    detect_pairwise,
)
from repro.core.kernel import ColumnarEntries
from repro.data import DatasetBuilder, motivating_example
from repro.fusion import FusionConfig, run_fusion, update_accuracies, value_probabilities
from repro.fusion.accu_kernel import (
    FusionColumns,
    copy_probability_matrix,
    independence_weight_stream,
    update_accuracies_columnar,
    value_probabilities_columnar,
)
from repro.fusion.workspace import FusionWorkspace
from repro.parallel.shm import SharedWorld, shared_memory_available
from repro.synth import book_cs
from tests.strategies import worlds

TOL = 1e-9

#: Pins the round count: tolerance 0 never converges, so every run does
#: exactly ``max_rounds`` rounds — the >= 5-round multi-round contract.
FIVE_ROUNDS = FusionConfig(max_rounds=5, min_rounds=5, tolerance=0.0)


def _drift(a, b) -> float:
    return max((abs(x - y) for x, y in zip(a, b)), default=0.0)


# ----------------------------------------------------------------------
# Kernel-level parity: one update at a time
# ----------------------------------------------------------------------
class TestAccuKernelParity:
    @settings(max_examples=40, deadline=None)
    @given(world=worlds())
    def test_value_probabilities_accu(self, world):
        dataset, _, accs = world
        params = CopyParams()
        ref = value_probabilities(dataset, accs, params)
        vec = value_probabilities_columnar(
            FusionColumns.from_dataset(dataset), accs, params
        )
        assert _drift(ref, vec) <= TOL

    @settings(max_examples=40, deadline=None)
    @given(world=worlds())
    def test_value_probabilities_accucopy(self, world):
        """ACCUCOPY: the rank-sorted discount products match the reference."""
        dataset, probs, accs = world
        params = CopyParams()
        detection = detect_pairwise(dataset, probs, accs, params)
        ref = value_probabilities(dataset, accs, params, detection=detection)
        vec = value_probabilities_columnar(
            FusionColumns.from_dataset(dataset), accs, params, detection=detection
        )
        assert _drift(ref, vec) <= TOL

    @settings(max_examples=40, deadline=None)
    @given(world=worlds())
    def test_update_accuracies(self, world):
        dataset, probs, _ = world
        params = CopyParams()
        ref = update_accuracies(dataset, probs, params)
        vec = update_accuracies_columnar(
            FusionColumns.from_dataset(dataset), np.asarray(probs), params
        )
        assert _drift(ref, vec) <= TOL

    def test_empty_source_keeps_neutral_accuracy(self):
        b = DatasetBuilder()
        b.ensure_source("empty")
        b.add("s", "D", "v")
        ds = b.build()
        params = CopyParams()
        vec = update_accuracies_columnar(
            FusionColumns.from_dataset(ds), np.asarray([0.7]), params
        )
        assert vec[0] == 0.5

    def test_copy_probability_matrix_matches_lookups(self, params):
        ds = motivating_example()
        accs = [0.8] * ds.n_sources
        probs = value_probabilities(ds, accs, params)
        detection = detect_pairwise(ds, probs, accs, params)
        matrix = copy_probability_matrix(detection, ds.n_sources)
        for copier in range(ds.n_sources):
            for original in range(ds.n_sources):
                if copier == original:
                    assert matrix[copier, original] == 0.0
                else:
                    assert matrix[copier, original] == detection.copy_probability(
                        copier, original
                    )

    def test_huge_source_fallback_matches_dense_path(self, monkeypatch, params):
        """Beyond DENSE_MATRIX_LIMIT the sparse decided-pair gather
        takes over (identical floats, no dense matrix)."""
        ds = motivating_example()
        accs = [0.35 + (i % 7) * 0.09 for i in range(ds.n_sources)]
        probs = value_probabilities(ds, accs, params)
        detection = detect_pairwise(ds, probs, accs, params)
        cols = FusionColumns.from_dataset(ds)
        dense = independence_weight_stream(
            cols, np.asarray(accs, dtype=np.float64), detection, params
        )
        import repro.fusion.accu_kernel as kernel_module

        monkeypatch.setattr(kernel_module, "DENSE_MATRIX_LIMIT", 1)
        fallback = independence_weight_stream(
            cols, np.asarray(accs, dtype=np.float64), detection, params
        )
        np.testing.assert_allclose(fallback, dense, rtol=0, atol=TOL)


# ----------------------------------------------------------------------
# Multi-round run_fusion parity (the acceptance contract)
# ----------------------------------------------------------------------
def _detector_for(method: str, params: CopyParams):
    if method == "none":
        return None
    if method == "incremental":
        return IncrementalDetector(params)
    return SingleRoundDetector(params, method=method)


class TestFusionBackendParity:
    @pytest.mark.parametrize(
        "method", ["none", "pairwise", "index", "bound", "bound+", "hybrid", "incremental"]
    )
    @settings(max_examples=12, deadline=None)
    @given(world=worlds(max_sources=6, max_items=10))
    def test_five_round_parity(self, method, world):
        """>= 5 rounds of ACCU (method 'none') / ACCUCOPY under every
        detection method, verified in lockstep at every step.

        This test used to diff two *complete* ``run_fusion`` runs and
        assert identical truths plus <= 1e-9 end-state drift — a latent
        over-assertion that reproduces on the pristine PR-4 code: on a
        tie-heavy world (all competing scores structurally equal, e.g.
        two-value items with menu accuracies) the numpy backend's
        re-association can leave two candidate truths *exactly* tied
        where the reference separates them by one ulp, flipping the
        argmax — after which the ACCUCOPY trajectories fork discretely
        and end-state drift is unbounded (a 4-source/6-item hypothesis
        example flipped an item truth with the vectors still 1e-16
        apart).  The real guarantee is *per-step* conformance on
        bit-identical inputs — detection under the single-round contract
        (bit-exact for the bound family, INCREMENTAL's bookkeeping
        rounds included), ACCU/ACCUCOPY updates at <= 1e-9, tie-aware
        fused truths — which is exactly what the conformance engine's
        lockstep fusion mode checks."""
        dataset, probs, accs = world
        case = run_case(
            world_from_problem(dataset, probs, accs, kind="hypothesis"),
            CaseConfig("fusion", method, rounds=5),
        )
        assert case.divergences == []

    def test_five_round_end_to_end_on_separated_world(self):
        """End-to-end run_fusion parity still holds on a well-separated
        world (the book_cs regime the soak example pins): identical
        truths and verdicts, <= 1e-9 end-state drift."""
        dataset = book_cs(scale=0.06).dataset
        reference = run_fusion(
            dataset,
            CopyParams(backend="python"),
            detector=_detector_for("index", CopyParams(backend="python")),
            config=FIVE_ROUNDS,
        )
        vectorized = run_fusion(
            dataset,
            CopyParams(backend="numpy"),
            detector=_detector_for("index", CopyParams(backend="numpy")),
            config=FIVE_ROUNDS,
        )
        assert vectorized.n_rounds == reference.n_rounds == 5
        assert vectorized.converged == reference.converged
        assert vectorized.chosen == reference.chosen
        for ref_round, vec_round in zip(reference.rounds, vectorized.rounds):
            assert (
                vec_round.detection.copying_pairs()
                == ref_round.detection.copying_pairs()
            )
        assert _drift(reference.probabilities, vectorized.probabilities) <= TOL
        assert _drift(reference.accuracies, vectorized.accuracies) <= TOL

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_parallel_detector_in_fusion_matches_sequential(self, executor):
        """The fuse-level parallel knobs reproduce the sequential loop."""
        dataset = book_cs(scale=0.08).dataset
        params = CopyParams(backend="numpy")
        sequential = run_fusion(
            dataset,
            params,
            detector=SingleRoundDetector(params, method="index"),
            config=FIVE_ROUNDS,
        )
        parallel = run_fusion(
            dataset,
            params,
            detector=SingleRoundDetector(
                params,
                method="index",
                n_partitions=3,
                executor=executor,
                reduce="tree",
                partition_by="work",
            ),
            config=FIVE_ROUNDS,
        )
        assert parallel.chosen == sequential.chosen
        assert _drift(sequential.accuracies, parallel.accuracies) <= TOL
        for seq_round, par_round in zip(sequential.rounds, parallel.rounds):
            assert (
                par_round.detection.copying_pairs()
                == seq_round.detection.copying_pairs()
            )

    def test_fusion_backend_override_isolates_detection_backend(self):
        """fusion_backend='python' + backend='numpy' fuses bit-identically
        to the all-python reference (the soak's detection-only contract)."""
        dataset = book_cs(scale=0.06).dataset
        reference = run_fusion(
            dataset,
            CopyParams(backend="python"),
            detector=IncrementalDetector(CopyParams(backend="python")),
            config=FIVE_ROUNDS,
        )
        mixed = run_fusion(
            dataset,
            CopyParams(backend="numpy"),
            detector=IncrementalDetector(CopyParams(backend="numpy")),
            config=FIVE_ROUNDS,
            fusion_backend="python",
        )
        assert mixed.chosen == reference.chosen
        assert _drift(reference.accuracies, mixed.accuracies) == 0.0

    def test_unknown_fusion_backend_rejected(self):
        with pytest.raises(ValueError):
            run_fusion(
                motivating_example(), CopyParams(), fusion_backend="fortran"
            )


# ----------------------------------------------------------------------
# The round-persistent workspace
# ----------------------------------------------------------------------
class TestFusionWorkspace:
    def test_columnar_for_index_matches_from_index(self, params):
        dataset = book_cs(scale=0.06).dataset
        accs = [0.8] * dataset.n_sources
        probs = value_probabilities(dataset, accs, params)
        index = InvertedIndex.build(dataset, probs, accs, params)
        with FusionWorkspace(dataset, params) as workspace:
            fast = workspace.columnar_for_index(index)
        slow = ColumnarEntries.from_index(index)
        np.testing.assert_array_equal(fast.probs, slow.probs)
        np.testing.assert_array_equal(fast.main, slow.main)
        np.testing.assert_array_equal(fast.offsets, slow.offsets)
        np.testing.assert_array_equal(fast.providers, slow.providers)

    def test_index_caches_columnar_entries(self, params):
        """Satellite: ColumnarEntries is built once per index, not per
        detect() call."""
        dataset = motivating_example()
        accs = [0.8] * dataset.n_sources
        probs = value_probabilities(dataset, accs, params)
        index = InvertedIndex.build(dataset, probs, accs, params)
        first = index.columnar_entries()
        assert index.columnar_entries() is first
        seeded = ColumnarEntries.from_index(index)
        index.set_columnar_entries(seeded)
        assert index.columnar_entries() is seeded

    def test_shared_items_cached_and_backend_agnostic(self):
        dataset = motivating_example()
        with FusionWorkspace(dataset, CopyParams(backend="numpy")) as ws_numpy:
            counts_numpy = ws_numpy.shared_items
            assert ws_numpy.shared_items is counts_numpy  # cached
        with FusionWorkspace(dataset, CopyParams(backend="python")) as ws_python:
            assert ws_python.shared_items == counts_numpy

    def test_pool_is_persistent_and_closed(self):
        with FusionWorkspace(motivating_example(), CopyParams()) as workspace:
            pool = workspace.pool("threads", 2)
            assert workspace.pool("threads", 4) is pool
            assert workspace.pool("serial") is None
        assert workspace.closed
        with pytest.raises(RuntimeError):
            workspace.pool("threads", 2)

    def test_close_is_idempotent(self):
        workspace = FusionWorkspace(motivating_example(), CopyParams())
        workspace.pool("threads", 1)
        workspace.close()
        workspace.close()
        assert workspace.closed

    def test_workspace_for_other_dataset_rejected(self, params):
        with FusionWorkspace(motivating_example(), params) as workspace:
            with pytest.raises(ValueError):
                run_fusion(book_cs(scale=0.05).dataset, params, workspace=workspace)

    def test_closed_workspace_rejected_up_front(self, params):
        dataset = motivating_example()
        workspace = FusionWorkspace(dataset, params)
        workspace.close()
        with pytest.raises(ValueError, match="closed"):
            run_fusion(dataset, params, workspace=workspace)


# ----------------------------------------------------------------------
# Executor lifecycle hygiene (exceptions mid-round, unlink-once)
# ----------------------------------------------------------------------
class _BoomDetector:
    """Binds the workspace, then raises partway through the run."""

    wants_workspace = True

    def __init__(self, fail_round: int = 2):
        self.fail_round = fail_round
        self.seen_workspaces = []

    def bind_workspace(self, workspace):
        if workspace is not None:
            self.seen_workspaces.append(workspace)

    def run_round(self, round_no, dataset, probabilities, accuracies):
        if round_no >= self.fail_round:
            raise RuntimeError("detector exploded mid-round")
        from repro.core import detect

        return detect(
            dataset, probabilities, accuracies, CopyParams(), method="index"
        )


class TestLifecycleHygiene:
    def test_owned_workspace_closed_on_detector_exception(self):
        detector = _BoomDetector()
        with pytest.raises(RuntimeError, match="exploded"):
            run_fusion(
                motivating_example(),
                CopyParams(backend="numpy"),
                detector=detector,
                config=FIVE_ROUNDS,
            )
        assert len(detector.seen_workspaces) == 1
        assert detector.seen_workspaces[0].closed

    def test_caller_owned_workspace_survives_detector_exception(self):
        dataset = motivating_example()
        params = CopyParams(backend="numpy")
        with FusionWorkspace(dataset, params) as workspace:
            with pytest.raises(RuntimeError, match="exploded"):
                run_fusion(
                    dataset,
                    params,
                    detector=_BoomDetector(),
                    config=FIVE_ROUNDS,
                    workspace=workspace,
                )
            assert not workspace.closed
        assert workspace.closed

    def test_detector_unbound_after_fusion(self):
        detector = SingleRoundDetector(CopyParams(backend="numpy"), method="index")
        run_fusion(
            motivating_example(),
            CopyParams(backend="numpy"),
            detector=detector,
            config=FusionConfig(max_rounds=2, min_rounds=1),
        )
        assert detector._workspace is None

    @pytest.mark.skipif(
        not shared_memory_available(), reason="no shared memory on this platform"
    )
    def test_shared_world_unlinked_exactly_once(self, params):
        dataset = book_cs(scale=0.05).dataset
        accs = [0.8] * dataset.n_sources
        probs = value_probabilities(dataset, accs, params)
        index = InvertedIndex.build(dataset, probs, accs, params)
        cols = ColumnarEntries.from_index(index)
        world = SharedWorld.create(cols, accs, dataset.n_sources)
        unlinks = []
        block = world._block
        original_unlink = block.unlink
        block.unlink = lambda: (unlinks.append(1), original_unlink())
        world.close()
        world.close()
        assert unlinks == [1]

    @pytest.mark.skipif(
        not shared_memory_available(), reason="no shared memory on this platform"
    )
    def test_workspace_broadcast_reuses_block_and_unlinks_once(self, params):
        """Across rounds the block is rewritten in place, never re-created,
        and closing the workspace (twice) unlinks it exactly once."""
        dataset = book_cs(scale=0.05).dataset
        accs = [0.8] * dataset.n_sources
        probs = value_probabilities(dataset, accs, params)
        index = InvertedIndex.build(dataset, probs, accs, params)
        cols = ColumnarEntries.from_index(index)
        workspace = FusionWorkspace(dataset, params)
        first = workspace.broadcast(cols, accs, dataset.n_sources)
        # "Next round": same layout, fresh per-round contents.
        fresh_probs = value_probabilities(dataset, [0.6] * dataset.n_sources, params)
        index2 = InvertedIndex.build(
            dataset, fresh_probs, [0.6] * dataset.n_sources, params
        )
        cols2 = ColumnarEntries.from_index(index2)
        second = workspace.broadcast(cols2, [0.6] * dataset.n_sources, dataset.n_sources)
        assert second is first
        # The rewritten buffer carries round 2's probabilities.
        reread = np.ndarray(
            (len(cols2.probs),),
            dtype=np.float64,
            buffer=first._block.buf,
            offset=first.handle.fields[0][2],
        )
        np.testing.assert_array_equal(reread, cols2.probs)
        unlinks = []
        original_unlink = first._block.unlink
        first._block.unlink = lambda: (unlinks.append(1), original_unlink())
        workspace.close()
        workspace.close()
        assert unlinks == [1]

    def test_shared_world_write_rejects_layout_change(self, params):
        if not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        dataset = book_cs(scale=0.05).dataset
        accs = [0.8] * dataset.n_sources
        probs = value_probabilities(dataset, accs, params)
        index = InvertedIndex.build(dataset, probs, accs, params)
        cols = ColumnarEntries.from_index(index)
        with SharedWorld.create(cols, accs, dataset.n_sources) as world:
            shrunk = cols.take(list(range(cols.n_entries - 1)))
            assert not world.write(shrunk, accs)
            assert world.write(cols, accs)
        assert not world.write(cols, accs)  # closed blocks refuse
