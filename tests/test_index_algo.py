"""INDEX: Example 3.6 accounting and the PAIRWISE-equivalence guarantee."""

import pytest
from hypothesis import given, settings

from repro.core import (
    CopyParams,
    EntryOrdering,
    detect_index,
    detect_pairwise,
)
from tests.strategies import worlds


class TestExample36:
    @pytest.fixture(scope="class")
    def result(self, example, example_probabilities, example_accuracies, params):
        return detect_index(example, example_probabilities, example_accuracies, params)

    def test_pairs_considered(self, result):
        """Example 3.6: 26 pairs occur in entries outside E-bar."""
        assert result.cost.pairs_considered == 26

    def test_values_examined(self, result):
        """Example 3.6: 51 shared values examined."""
        assert result.cost.values_examined == 51

    def test_computations(self, result):
        """Example 3.6: 51*2 + 26*2 = 154 computations."""
        assert result.cost.computations == 154

    def test_skipped_pair_s0_s5(self, result, example):
        """S0 and S5 share only tail values (Albany, Austin) -> never opened."""
        ids = {name: i for i, name in enumerate(example.source_names)}
        assert result.decision_for(ids["S0"], ids["S5"]) is None


class TestEquivalence:
    """Proposition 3.5: INDEX's binary results equal PAIRWISE's."""

    def test_motivating_example(
        self, example, example_probabilities, example_accuracies, params
    ):
        pw = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        ix = detect_index(example, example_probabilities, example_accuracies, params)
        assert ix.copying_pairs() == pw.copying_pairs()

    @settings(max_examples=60, deadline=None)
    @given(world=worlds())
    def test_random_worlds(self, world):
        dataset, probs, accs = world
        params = CopyParams()
        pw = detect_pairwise(dataset, probs, accs, params)
        ix = detect_index(dataset, probs, accs, params)
        assert ix.copying_pairs() == pw.copying_pairs()

    @settings(max_examples=40, deadline=None)
    @given(world=worlds())
    def test_opened_pair_scores_exact(self, world):
        """For every pair INDEX opens, its scores equal PAIRWISE's exactly."""
        dataset, probs, accs = world
        params = CopyParams()
        pw = detect_pairwise(dataset, probs, accs, params)
        ix = detect_index(dataset, probs, accs, params)
        for pair, decision in ix.decisions.items():
            reference = pw.decision_for(*pair)
            assert reference is not None
            assert decision.c_fwd == pytest.approx(reference.c_fwd, abs=1e-9)
            assert decision.c_bwd == pytest.approx(reference.c_bwd, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(world=worlds())
    def test_skipped_pairs_are_independent(self, world):
        """Pairs INDEX never opens are no-copying under PAIRWISE too."""
        dataset, probs, accs = world
        params = CopyParams()
        pw = detect_pairwise(dataset, probs, accs, params)
        ix = detect_index(dataset, probs, accs, params)
        for pair in pw.copying_pairs():
            assert pair in ix.decisions

    @settings(max_examples=30, deadline=None)
    @given(world=worlds())
    def test_ordering_does_not_change_results(self, world):
        """INDEX accumulates exactly, so entry order is irrelevant."""
        dataset, probs, accs = world
        params = CopyParams()
        results = [
            detect_index(dataset, probs, accs, params, ordering=ordering)
            for ordering in EntryOrdering
        ]
        first = results[0].copying_pairs()
        assert all(r.copying_pairs() == first for r in results[1:])
