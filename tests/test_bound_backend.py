"""Decision equivalence of the epoch-batched numpy bound backend.

The epoch-batched scan (:mod:`repro.core.bound_kernel`) promises more
than the 1e-9 agreement of the exhaustive kernels: decisions, decision
positions, :class:`~repro.core.result.CostCounter` tallies and
INCREMENTAL's :class:`~repro.core.bound.PairBookkeeping` — stored float
scores included — must be **bit-identical** to the pure-Python reference
(``PairDecision``/``PairBookkeeping`` are compared with plain ``==``
throughout, i.e. exact float equality).  These tests lock that down on
random worlds, adversarial threshold-edge worlds, every
:class:`~repro.core.index.EntryOrdering`, hybrid thresholds {0, 1, 16},
the banded thresholds, and a multi-round INCREMENTAL run.
"""

import pytest

np = pytest.importorskip("numpy", reason="the epoch-batched backend needs numpy")

from hypothesis import given, settings

from repro.core import (
    CopyParams,
    IncrementalDetector,
    detect,
    scan_with_bounds,
)
from repro.core.index import EntryOrdering
from tests.strategies import adversarial_worlds, theta_edge_worlds, worlds

#: (label, use_timers, hybrid_threshold) — BOUND, BOUND+ and HYBRID at
#: the thresholds the issue calls out (1 routes almost nothing to exact
#: mode, 16 is the paper's default).
CONFIGS = (
    ("bound", False, 0),
    ("bound+", True, 0),
    ("hybrid-1", True, 1),
    ("hybrid-16", True, 16),
)

EPOCH_SIZES = (1, 3, 128)


def assert_scan_identical(
    world,
    ordering=EntryOrdering.BY_CONTRIBUTION,
    epoch_sizes=EPOCH_SIZES,
    band=None,
):
    """Both backends must produce bit-identical scan outcomes."""
    dataset, probs, accs = world
    for label, use_timers, threshold in CONFIGS:
        reference = scan_with_bounds(
            dataset,
            probs,
            accs,
            CopyParams(backend="python"),
            ordering=ordering,
            use_timers=use_timers,
            hybrid_threshold=threshold,
            track_bookkeeping=True,
            band=band,
        )
        for epoch_size in epoch_sizes:
            batched = scan_with_bounds(
                dataset,
                probs,
                accs,
                CopyParams(backend="numpy"),
                ordering=ordering,
                use_timers=use_timers,
                hybrid_threshold=threshold,
                track_bookkeeping=True,
                band=band,
                epoch_size=epoch_size,
            )
            context = (label, ordering, epoch_size)
            # Bit-identical verdicts, scores, posteriors, early flags.
            assert batched.result.decisions == reference.result.decisions, context
            # Bit-identical bookkeeping: decision positions, before/after
            # counts, exact stored base scores.
            assert batched.bookkeeping == reference.bookkeeping, context
            ref_cost = reference.result.cost
            new_cost = batched.result.cost
            assert new_cost.computations == ref_cost.computations, context
            assert new_cost.values_examined == ref_cost.values_examined, context
            assert new_cost.pairs_considered == ref_cost.pairs_considered, context


class TestDecisionEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(world=worlds())
    def test_random_worlds(self, world):
        assert_scan_identical(world)

    @settings(max_examples=15, deadline=None)
    @given(world=worlds())
    @pytest.mark.parametrize(
        "ordering", [EntryOrdering.BY_PROVIDER, EntryOrdering.RANDOM]
    )
    def test_alternative_orderings(self, world, ordering):
        assert_scan_identical(world, ordering=ordering)

    @settings(max_examples=40, deadline=None)
    @given(world=adversarial_worlds())
    def test_adversarial_worlds(self, world):
        assert_scan_identical(world)

    @settings(max_examples=15, deadline=None)
    @given(world=worlds())
    def test_banded_thresholds(self, world):
        assert_scan_identical(world, band=(0.1, 0.9), epoch_sizes=(3,))

    def test_theta_edge_worlds(self, params):
        """Adjacent-float probability edges: the >=/< tie-breaks agree."""
        edges = []
        for n_shared in (1, 2, 5):
            edges.extend(theta_edge_worlds(params, n_shared=n_shared))
        assert len(edges) >= 3
        for world in edges:
            assert_scan_identical(world)

    def test_motivating_example(
        self, example, example_probabilities, example_accuracies
    ):
        assert_scan_identical((example, example_probabilities, example_accuracies))

    @settings(max_examples=15, deadline=None)
    @given(world=worlds())
    def test_epoch_size_invariance(self, world):
        """The epoch size is a pure performance knob: outcomes identical."""
        dataset, probs, accs = world
        outcomes = [
            scan_with_bounds(
                dataset,
                probs,
                accs,
                CopyParams(backend="numpy"),
                track_bookkeeping=True,
                epoch_size=epoch_size,
            )
            for epoch_size in (1, 2, 7, 64, 4096)
        ]
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other.result.decisions == first.result.decisions
            assert other.bookkeeping == first.bookkeeping
            assert other.result.cost.computations == first.result.cost.computations


class TestIncrementalEquivalence:
    """INCREMENTAL seeded by the numpy preparation round is unchanged."""

    @settings(max_examples=10, deadline=None)
    @given(world=worlds(max_sources=6, max_items=10))
    def test_rounds_identical(self, world):
        dataset, probs, accs = world
        detectors = {
            backend: IncrementalDetector(CopyParams(), backend=backend)
            for backend in ("python", "numpy")
        }
        # Drift probabilities/accuracies deterministically across rounds.
        for round_no in range(1, 5):
            shift = 0.03 * round_no
            round_probs = [min(0.999, max(0.001, p + shift)) for p in probs]
            round_accs = [min(0.99, max(0.01, a - shift / 2.0)) for a in accs]
            results = {
                backend: detector.run_round(
                    round_no, dataset, round_probs, round_accs
                )
                for backend, detector in detectors.items()
            }
            assert results["numpy"].decisions == results["python"].decisions, round_no


class TestCostAccounting:
    """The paper's computation accounting, on both backends."""

    @settings(max_examples=25, deadline=None)
    @given(world=worlds())
    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_bound_evaluates_every_shared_entry(self, world, backend):
        """BOUND's closed-form cost identity.

        Every active incidence performs two score updates and a
        ``C^min`` evaluation; the ``C^max`` evaluation follows unless the
        pair just concluded copying; every non-early pair pays the final
        two-score adjustment.  Hence::

            computations = 2*VE + (2*VE - early_copy) + 2*(pairs - early)
        """
        dataset, probs, accs = world
        result = detect(
            dataset, probs, accs, CopyParams(backend=backend), method="bound"
        )
        early = sum(1 for d in result.decisions.values() if d.early)
        early_copy = sum(
            1 for d in result.decisions.values() if d.early and d.copying
        )
        incidences = result.cost.values_examined
        pairs = result.cost.pairs_considered
        expected = (
            2 * incidences
            + (2 * incidences - early_copy)
            + 2 * (pairs - early)
        )
        assert result.cost.computations == expected

    @settings(max_examples=25, deadline=None)
    @given(world=worlds())
    def test_bound_plus_matches_timer_milestones(self, world):
        """BOUND+ re-evaluations happen exactly at the scheduled timers.

        The reference scan's ``eval_log`` records every evaluation with
        the milestone in effect: a min re-evaluation must land on the
        first shared entry whose ``n0`` reaches ``min_check_at``; a max
        re-evaluation must be triggered by one of its two scan-count
        milestones.  The numpy backend is held to the same schedule
        through its bit-identical computation count.
        """
        from repro.core import BoundEval  # noqa: F401 - documented type

        dataset, probs, accs = world
        log = []
        reference = scan_with_bounds(
            dataset,
            probs,
            accs,
            CopyParams(),
            use_timers=True,
            hybrid_threshold=0,
            eval_log=log,
        )
        last_min_n0 = {}
        for entry in log:
            if entry.kind == "min":
                expected = max(entry.scheduled_min, last_min_n0.get(entry.pair, 0) + 1)
                assert entry.n0 == expected, entry
                last_min_n0[entry.pair] = entry.n0
            else:
                assert (
                    entry.n1 >= entry.scheduled_max1
                    or entry.n2 >= entry.scheduled_max2
                ), entry
        # The recorded evaluations are the whole of the bound-eval cost:
        # computations = 2*VE (score updates) + |log| + 2*(non-early).
        early = sum(1 for d in reference.result.decisions.values() if d.early)
        non_early = reference.result.cost.pairs_considered - early
        assert reference.result.cost.computations == (
            2 * reference.result.cost.values_examined + len(log) + 2 * non_early
        )
        # And the numpy backend reproduces that count without the log.
        batched = scan_with_bounds(
            dataset,
            probs,
            accs,
            CopyParams(backend="numpy"),
            use_timers=True,
            hybrid_threshold=0,
        )
        assert (
            batched.result.cost.computations
            == reference.result.cost.computations
        )

    def test_eval_log_forces_reference_path(
        self, example, example_probabilities, example_accuracies
    ):
        """Requesting the eval log under backend='numpy' still logs."""
        log = []
        outcome = scan_with_bounds(
            example,
            example_probabilities,
            example_accuracies,
            CopyParams(backend="numpy"),
            use_timers=False,
            eval_log=log,
        )
        assert len(log) > 0
        assert outcome.result.cost.computations > 0


class TestGoldenFixtures:
    """Checked-in regression freeze of a deterministic world's outcome.

    ``tests/data/golden_bound.json`` stores every method's full
    ``DetectionResult`` (scores as bit-exact ``float.hex``) plus HYBRID's
    INCREMENTAL bookkeeping.  Any behaviour drift in either backend —
    however subtle — shows up as a diff here during the soak period.
    Regenerate deliberately with ``python tests/make_golden_bound.py``.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        import json

        from tests.make_golden_bound import GOLDEN_PATH

        return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_matches_fixture(self, golden, backend):
        from tests.make_golden_bound import golden_payload

        live = golden_payload(backend)
        del live["backend"]
        assert live["methods"].keys() == golden["methods"].keys()
        for method, stored in golden["methods"].items():
            assert live["methods"][method]["cost"] == stored["cost"], method
            assert live["methods"][method]["decisions"] == stored["decisions"], method
        assert live["hybrid_bookkeeping"] == golden["hybrid_bookkeeping"]

    def test_fixture_is_nontrivial(self, golden):
        """The frozen world must exercise early conclusions and costs."""
        for method in ("bound", "bound+", "hybrid"):
            rows = golden["methods"][method]["decisions"]
            assert len(rows) > 50
            assert any(row["early"] for row in rows)
            assert any(row["copying"] for row in rows)
            assert golden["methods"][method]["cost"]["computations"] > 0
        assert any(book["early"] for book in golden["hybrid_bookkeeping"])


class TestOversizedKeySpace:
    """Beyond the dense-state limit the scan stays vectorized — sparse.

    The pre-PR-6 behaviour (a *silent* fallback to the pure-Python
    reference loop) is retired: ``"auto"`` switches to the sparse
    observed-pair layout, logs the switch, and stays bit-identical.
    """

    def test_auto_goes_sparse_and_logs(self, monkeypatch, caplog):
        import logging

        import repro.core.bound as bound_module
        from repro.core import bound_kernel
        from tests.strategies import shared_run_world

        monkeypatch.setattr(bound_kernel, "DENSE_STATE_LIMIT", 1)
        dataset, probs, accs = shared_run_world(3, 0.05)
        with caplog.at_level(logging.WARNING, logger="repro.core.pairspace"):
            result = bound_module.detect_bound_plus(
                dataset, probs, accs, CopyParams(backend="numpy")
            )
        reference = bound_module.detect_bound_plus(
            dataset, probs, accs, CopyParams(backend="python")
        )
        assert result.decisions == reference.decisions
        assert any(
            "bound_kernel.EpochScan" in rec.message
            and "sparse" in rec.message
            for rec in caplog.records
        )

    @settings(max_examples=15, deadline=None)
    @given(world=worlds())
    def test_forced_sparse_layout_is_bit_identical(self, world):
        """pair_layout='sparse' reproduces every scan outcome exactly."""
        dataset, probs, accs = world
        for label, use_timers, threshold in CONFIGS:
            reference = scan_with_bounds(
                dataset,
                probs,
                accs,
                CopyParams(backend="python"),
                use_timers=use_timers,
                hybrid_threshold=threshold,
                track_bookkeeping=True,
            )
            sparse = scan_with_bounds(
                dataset,
                probs,
                accs,
                CopyParams(backend="numpy", pair_layout="sparse"),
                use_timers=use_timers,
                hybrid_threshold=threshold,
                track_bookkeeping=True,
                epoch_size=3,
            )
            assert sparse.result.decisions == reference.result.decisions, label
            assert sparse.bookkeeping == reference.bookkeeping, label
            assert (
                sparse.result.cost.computations
                == reference.result.cost.computations
            ), label
