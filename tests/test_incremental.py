"""INCREMENTAL: cross-round agreement with from-scratch detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CopyParams,
    IncrementalDetector,
    SingleRoundDetector,
    detect_hybrid,
    incremental_round,
    prepare_incremental,
)
from repro.fusion import FusionConfig, run_fusion
from tests.strategies import worlds


def _drift(probs, rng_value, magnitude):
    """Deterministically perturb probabilities within [0.001, 0.999]."""
    out = []
    for i, p in enumerate(probs):
        delta = magnitude * (1 if (i * 2654435761 + rng_value) % 2 else -1)
        out.append(min(max(p + delta, 0.001), 0.999))
    return out


class TestSingleDrift:
    """With ``rho_value=0`` every score change is applied exactly, so the
    incremental machinery (bookkeeping, reference frames, passes, tail
    re-opening) must reproduce a from-scratch run bit-for-bit.  With the
    default rho the small-change bulk estimate is the paper's knowing
    approximation (Table VI: F ~ .98) — its quality is asserted
    statistically in TestProfiles, not pointwise here."""

    @settings(max_examples=40, deadline=None)
    @given(world=worlds(), salt=st.integers(min_value=0, max_value=10))
    def test_small_drift_matches_hybrid(self, world, salt):
        dataset, probs, accs = world
        params = CopyParams()
        _, state = prepare_incremental(dataset, probs, accs, params)
        new_probs = _drift(probs, salt, magnitude=0.01)
        inc = incremental_round(state, new_probs, accs, params, rho_value=0.0)
        fresh = detect_hybrid(dataset, new_probs, accs, params).result
        assert inc.copying_pairs() == fresh.copying_pairs()

    @settings(max_examples=25, deadline=None)
    @given(world=worlds(), salt=st.integers(min_value=0, max_value=10))
    def test_big_drift_matches_hybrid(self, world, salt):
        """Large drifts (tail re-opening territory) must still agree."""
        dataset, probs, accs = world
        params = CopyParams()
        _, state = prepare_incremental(dataset, probs, accs, params)
        new_probs = _drift(probs, salt, magnitude=0.4)
        inc = incremental_round(state, new_probs, accs, params, rho_value=0.0)
        fresh = detect_hybrid(dataset, new_probs, accs, params).result
        assert inc.copying_pairs() == fresh.copying_pairs()

    @settings(max_examples=25, deadline=None)
    @given(world=worlds())
    def test_accuracy_refresh_matches_hybrid(self, world):
        """A big accuracy change triggers full pair recomputation.

        Every source drifts by exactly 0.3 >= rho_accuracy (toward the
        middle of the range — the earlier ``min(a + 0.3, 0.99)`` clamp
        silently shrank the drift below rho for accurate sources,
        landing in the paper's keep-the-old-verdict approximation and
        over-asserting; reproduced on the pristine seed).  The real
        guarantee is per *booked* pair: each is recomputed exactly in
        pass 3 and must carry the from-scratch verdict.  A from-scratch
        run may additionally open pairs the preparation index's tail
        bound had excluded (entry scores move with accuracies, and
        accuracy refreshes do not re-open tail pairs — only value-drift
        does); conversely a pair booked under the old accuracies may be
        tail-skipped by the fresh index, which proves it independent."""
        dataset, probs, accs = world
        params = CopyParams()
        _, state = prepare_incremental(dataset, probs, accs, params)
        new_accs = [a + 0.3 if a <= 0.6 else a - 0.3 for a in accs]
        inc = incremental_round(state, probs, new_accs, params)
        stats = state.history[-1]
        assert stats.done_pass3 == stats.pairs_total + stats.reopened_pairs
        fresh = detect_hybrid(dataset, probs, new_accs, params).result
        for pair, decision in inc.decisions.items():
            fresh_decision = fresh.decisions.get(pair)
            if fresh_decision is not None:
                assert decision.copying == fresh_decision.copying
            else:
                assert not decision.copying

    @settings(max_examples=25, deadline=None)
    @given(world=worlds())
    def test_no_change_confirms_everything_in_pass1(self, world):
        dataset, probs, accs = world
        params = CopyParams()
        _, state = prepare_incremental(dataset, probs, accs, params)
        inc = incremental_round(state, probs, accs, params)
        stats = state.history[-1]
        assert stats.done_pass1 == stats.pairs_total
        assert stats.flips == 0
        prep = detect_hybrid(dataset, probs, accs, params).result
        assert inc.copying_pairs() == prep.copying_pairs()


class TestMultiRound:
    @settings(max_examples=15, deadline=None)
    @given(world=worlds(max_sources=6, max_items=10))
    def test_three_rounds_of_drift(self, world):
        """Repeated incremental rounds stay in sync with fresh runs."""
        dataset, probs, accs = world
        params = CopyParams()
        _, state = prepare_incremental(dataset, probs, accs, params)
        current = probs
        for salt in (1, 2, 3):
            current = _drift(current, salt, magnitude=0.05)
            inc = incremental_round(state, current, accs, params, rho_value=0.0)
            fresh = detect_hybrid(dataset, current, accs, params).result
            assert inc.copying_pairs() == fresh.copying_pairs()


class TestWithinFusionLoop:
    def test_matches_hybrid_loop_on_example(self, example, params):
        """Full fusion with INCREMENTAL equals full fusion with HYBRID."""
        config = FusionConfig(max_rounds=8)
        hybrid = run_fusion(
            example,
            params,
            detector=SingleRoundDetector(params, method="hybrid"),
            config=config,
        )
        incremental = run_fusion(
            example, params, detector=IncrementalDetector(params), config=config
        )
        assert (
            incremental.final_detection().copying_pairs()
            == hybrid.final_detection().copying_pairs()
        )
        assert incremental.chosen == hybrid.chosen

    def test_round_stats_recorded(self, example, params):
        detector = IncrementalDetector(params)
        run_fusion(
            example, params, detector=detector, config=FusionConfig(max_rounds=6)
        )
        assert detector.state is not None
        assert len(detector.state.history) >= 1
        for stats in detector.state.history:
            assert (
                stats.done_pass1 + stats.done_pass2 + stats.done_pass3
                == stats.pairs_total
            )

    def test_example_5_1_flip(self, example, params):
        """Section V / Example 5.1: the (S0, S1) pair is judged copying in
        early rounds (both are highly accurate and share everything) and
        flips to no-copying once value probabilities firm up."""
        detector = IncrementalDetector(params)
        result = run_fusion(
            example, params, detector=detector, config=FusionConfig(max_rounds=8)
        )
        ids = {name: i for i, name in enumerate(example.source_names)}
        final = result.final_detection()
        decision = final.decision_for(ids["S0"], ids["S1"])
        assert decision is None or not decision.copying


class TestProfiles:
    @pytest.mark.parametrize("profile, scale", [("book_cs", 0.15), ("stock_1day", 0.02)])
    def test_quality_against_hybrid_on_profiles(self, params, profile, scale):
        """Table VI shape: incremental F-measure vs per-round HYBRID >= .9."""
        from repro.eval import pair_quality
        from repro.synth import make_profile

        world = make_profile(profile, scale)
        config = FusionConfig(max_rounds=8)
        hybrid = run_fusion(
            world.dataset,
            params,
            detector=SingleRoundDetector(params, method="hybrid"),
            config=config,
        )
        incremental = run_fusion(
            world.dataset, params, detector=IncrementalDetector(params), config=config
        )
        quality = pair_quality(
            hybrid.final_detection().copying_pairs(),
            incremental.final_detection().copying_pairs(),
        )
        assert quality.f_measure >= 0.9

    def test_pass1_dominates_on_profiles(self, params):
        """Table VIII: the overwhelming majority of pairs finish in pass 1."""
        from repro.synth import make_profile

        world = make_profile("stock_1day", 0.02)
        detector = IncrementalDetector(params)
        run_fusion(
            world.dataset,
            params,
            detector=detector,
            config=FusionConfig(max_rounds=8),
        )
        history = detector.state.history
        assert history, "expected at least one incremental round"
        total_p1 = sum(s.done_pass1 for s in history)
        total = sum(s.pairs_total for s in history)
        assert total_p1 / total >= 0.8
