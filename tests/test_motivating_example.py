"""End-to-end checks against every worked number in the paper's examples.

This file is the reproduction's anchor: Tables I and III and Examples
2.1, 3.3, 3.6 and 4.2 give exact intermediate values, and the library must
hit them.  (Example 3.6's "183 shared data items" is an arithmetic slip in
the paper — Table I sums to 181; see EXPERIMENTS.md.)
"""

import pytest

from repro.core import (
    InvertedIndex,
    detect_bound,
    detect_index,
    detect_pairwise,
)
from repro.data import (
    MOTIVATING_COPY_PAIRS,
    motivating_example,
    motivating_gold,
)


class TestTableI:
    def test_shape(self, example):
        assert example.n_sources == 10
        assert example.n_items == 5
        assert example.n_values == 16

    def test_missing_cells(self, example):
        by_name = dict(zip(example.source_names, example.items_per_source))
        assert by_name == {
            "S0": 4,
            "S1": 5,
            "S2": 5,
            "S3": 5,
            "S4": 5,
            "S5": 5,
            "S6": 4,
            "S7": 4,
            "S8": 5,
            "S9": 3,
        }


class TestTableIII:
    """The inverted index: entries, probabilities, scores, providers."""

    EXPECTED = {
        # label: (probability, score, providers)
        "Tempe": (0.02, 4.59, {"S5", "S6"}),
        "Atlantic": (0.01, 4.12, {"S2", "S3", "S4"}),
        "Houston": (0.02, 4.05, {"S2", "S4"}),
        "NewYork": (0.02, 4.05, {"S2", "S3", "S4"}),
        "Dallas": (0.02, 3.98, {"S6", "S7", "S8"}),
        "Buffalo": (0.04, 3.97, {"S6", "S7", "S8"}),
        "PalmBay": (0.05, 3.97, {"S6", "S7", "S8"}),
        "Miami": (0.03, 3.83, {"S2", "S3"}),
        "Phoenix": (0.95, 1.62, {"S0", "S1", "S2", "S3", "S4"}),
        "Trenton": (0.97, 1.51, {"S0", "S1", "S7", "S8", "S9"}),
        "Orlando": (0.92, 0.84, {"S1", "S4", "S5", "S9"}),
        "Albany": (0.94, 0.43, {"S0", "S1", "S5"}),
        "Austin": (0.96, 0.43, {"S0", "S1", "S5", "S9"}),
    }

    @pytest.fixture(scope="class")
    def index(self, example, example_probabilities, example_accuracies, params):
        return InvertedIndex.build(
            example, example_probabilities, example_accuracies, params
        )

    def test_entry_set(self, example, index):
        labels = {example.value_label[e.value_id] for e in index.entries}
        assert labels == set(self.EXPECTED)

    def test_probabilities_scores_providers(self, example, index):
        for entry in index.entries:
            label = example.value_label[entry.value_id]
            probability, score, providers = self.EXPECTED[label]
            assert entry.probability == pytest.approx(probability)
            assert entry.score == pytest.approx(score, abs=0.03), label
            names = {example.source_names[s] for s in entry.providers}
            assert names == providers, label

    def test_processing_order_score_descending(self, index):
        main = index.entries[: index.tail_start]
        scores = [e.score for e in main]
        assert scores == sorted(scores, reverse=True)


class TestExample36:
    """INDEX vs PAIRWISE accounting on the motivating example."""

    def test_pairwise_accounting(
        self, example, example_probabilities, example_accuracies, params
    ):
        result = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        assert result.cost.pairs_considered == 45
        assert result.cost.values_examined == 181  # paper says 183; see above
        assert result.cost.computations == 362

    def test_index_accounting(
        self, example, example_probabilities, example_accuracies, params
    ):
        result = detect_index(
            example, example_probabilities, example_accuracies, params
        )
        assert result.cost.pairs_considered == 26
        assert result.cost.values_examined == 51
        assert result.cost.computations == 154

    def test_index_cuts_computation_by_more_than_half(
        self, example, example_probabilities, example_accuracies, params
    ):
        pw = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        ix = detect_index(example, example_probabilities, example_accuracies, params)
        assert ix.cost.computations < pw.cost.computations / 2


class TestExample42:
    def test_bound_examines_fewer_values(
        self, example, example_probabilities, example_accuracies, params
    ):
        """BOUND: ~33 shared values and all 26 pairs (Example 4.2)."""
        result = detect_bound(
            example, example_probabilities, example_accuracies, params
        )
        assert result.cost.pairs_considered == 26
        assert result.cost.values_examined == pytest.approx(33, abs=2)

    def test_decisions_match_planted(
        self, example, example_probabilities, example_accuracies, params
    ):
        result = detect_bound(
            example, example_probabilities, example_accuracies, params
        )
        found = {
            frozenset({example.source_names[a], example.source_names[b]})
            for a, b in result.copying_pairs()
        }
        assert found == set(MOTIVATING_COPY_PAIRS)


class TestGold:
    def test_gold_covers_all_items(self):
        gold = motivating_gold()
        example = motivating_example()
        assert set(gold.truths) == set(example.item_names)
