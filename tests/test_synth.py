"""Synthetic generator: determinism, config validation, planted structure."""

import pytest

from repro.core import SingleRoundDetector
from repro.fusion import run_fusion
from repro.synth import (
    PROFILES,
    GeneratorConfig,
    generate,
    make_profile,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 0},
            {"n_independent_sources": 0},
            {"copy_selectivity": 0.0},
            {"copy_selectivity": 1.5},
            {"accuracy_range": (0.0, 0.9)},
            {"accuracy_range": (0.9, 0.5)},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = GeneratorConfig(n_items=50, n_independent_sources=6, seed=9)
        a = generate(config)
        b = generate(config)
        assert a.dataset.source_names == b.dataset.source_names
        assert a.dataset.claims == b.dataset.claims
        assert a.gold.truths == b.gold.truths

    def test_different_seed_different_world(self):
        a = generate(GeneratorConfig(n_items=50, seed=1))
        b = generate(GeneratorConfig(n_items=50, seed=2))
        assert a.dataset.claims != b.dataset.claims


class TestPlantedStructure:
    @pytest.fixture(scope="class")
    def world(self):
        return generate(
            GeneratorConfig(
                n_items=200,
                n_independent_sources=10,
                coverage_range=(0.6, 1.0),
                n_copier_groups=2,
                copiers_per_group=2,
                seed=5,
            )
        )

    def test_copy_pairs_recorded(self, world):
        assert len(world.copy_pairs) == 4  # 2 groups x 2 copiers

    def test_copiers_share_values_with_upstream(self, world):
        ds = world.dataset
        names = ds.source_names
        for copier, upstream in world.copy_pairs:
            c, u = names.index(copier), names.index(upstream)
            shared_values = sum(
                1
                for item, value in ds.claims[c].items()
                if ds.claims[u].get(item) == value
            )
            assert shared_values >= 0.5 * len(ds.claims[u])

    def test_gold_matches_generated_truths(self, world):
        ds = world.dataset
        resolved = world.gold.true_value_ids(ds)
        assert resolved, "gold standard should cover claimed items"
        for item_id, value_id in resolved.items():
            if value_id is not None:
                assert ds.value_label[value_id].endswith("/true")

    def test_true_accuracies_within_configured_band(self, world):
        for name, acc in world.true_accuracies.items():
            if name.startswith("src"):
                assert 0.3 <= acc <= 1.0

    def test_detection_finds_planted_copying(self, world, params):
        """End to end: the detector recovers (most of) the planted pairs."""
        result = run_fusion(
            world.dataset,
            params,
            detector=SingleRoundDetector(params, method="index"),
        )
        found = result.final_detection().copying_pairs()
        planted = world.copy_pair_ids()
        assert len(found & planted) >= len(planted) // 2


class TestProfiles:
    @pytest.mark.parametrize("name", PROFILES)
    def test_profiles_build(self, name):
        world = make_profile(name, scale=0.02)
        stats = world.dataset.stats()
        assert stats.n_sources > 0
        assert stats.n_claims > 0

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            make_profile("nope")

    def test_book_profile_is_sparse(self):
        """Book regime: most sources are tiny, most pairs share nothing."""
        world = make_profile("book_cs", scale=0.3)
        ds = world.dataset
        median_coverage = sorted(ds.items_per_source)[ds.n_sources // 2]
        assert median_coverage <= 0.05 * ds.n_items

    def test_stock_profile_is_dense(self):
        """Stock regime: every source covers at least half the items."""
        world = make_profile("stock_1day", scale=0.02)
        ds = world.dataset
        dense = sum(1 for c in ds.items_per_source if c >= 0.5 * ds.n_items)
        assert dense / ds.n_sources >= 0.8

    def test_book_full_low_conflicts(self):
        world = make_profile("book_full", scale=0.03)
        assert world.dataset.stats().avg_conflicts_per_item < 2.0

    def test_scale_changes_size(self):
        small = make_profile("book_cs", scale=0.05)
        large = make_profile("book_cs", scale=0.2)
        assert large.dataset.n_items > small.dataset.n_items
        assert large.dataset.n_sources > small.dataset.n_sources
