"""CopyParams: validation, derived thresholds, clamping."""

import math

import pytest

from repro.core import CopyParams


class TestValidation:
    def test_defaults_are_papers(self):
        params = CopyParams()
        assert params.alpha == 0.1
        assert params.s == 0.8
        assert params.n == 50

    @pytest.mark.parametrize("alpha", [0.0, 0.5, -0.1, 1.0])
    def test_alpha_out_of_range(self, alpha):
        with pytest.raises(ValueError):
            CopyParams(alpha=alpha)

    @pytest.mark.parametrize("s", [0.0, 1.0, -0.5, 2.0])
    def test_s_out_of_range(self, s):
        with pytest.raises(ValueError):
            CopyParams(s=s)

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            CopyParams(n=0)

    @pytest.mark.parametrize("clamp", [0.0, 0.5, 0.7])
    def test_clamp_out_of_range(self, clamp):
        with pytest.raises(ValueError):
            CopyParams(accuracy_clamp=clamp)

    def test_frozen(self):
        params = CopyParams()
        with pytest.raises(AttributeError):
            params.alpha = 0.2


class TestDerived:
    def test_beta(self):
        assert CopyParams(alpha=0.1).beta == pytest.approx(0.8)
        assert CopyParams(alpha=0.25).beta == pytest.approx(0.5)

    def test_thresholds_match_paper_example(self):
        """Example 4.2: theta_cp = ln(.8/.1) = 2.08, theta_ind = ln(.8/.2) = 1.39."""
        params = CopyParams(alpha=0.1)
        assert params.theta_cp == pytest.approx(2.0794, abs=1e-3)
        assert params.theta_ind == pytest.approx(1.3863, abs=1e-3)

    def test_threshold_ordering(self):
        params = CopyParams(alpha=0.05)
        assert params.theta_cp > params.theta_ind > 0

    def test_ln_one_minus_s(self):
        """Example 4.2 uses ln(1-s) = ln(.2) ~ -1.6."""
        assert CopyParams(s=0.8).ln_one_minus_s == pytest.approx(math.log(0.2))


class TestClamp:
    def test_inside_range_unchanged(self):
        params = CopyParams(accuracy_clamp=0.01)
        assert params.clamp_accuracy(0.5) == 0.5

    def test_extremes_clamped(self):
        params = CopyParams(accuracy_clamp=0.01)
        assert params.clamp_accuracy(0.0) == 0.01
        assert params.clamp_accuracy(1.0) == 0.99
        assert params.clamp_accuracy(-5.0) == 0.01

    def test_boundaries_exact(self):
        params = CopyParams(accuracy_clamp=0.05)
        assert params.clamp_accuracy(0.05) == 0.05
        assert params.clamp_accuracy(0.95) == 0.95
