"""Direct tests for paths otherwise exercised only indirectly."""

import pytest

from repro.core import CopyParams, SingleRoundDetector, detect_pairwise
from repro.data import DatasetBuilder
from repro.eval import run_method
from repro.fusion import independence_weights, value_probabilities


class TestIndependenceWeights:
    def _copy_world(self, params):
        b = DatasetBuilder()
        b.add("orig", "D", "wrong")
        b.add("copier", "D", "wrong")
        b.add("other", "D", "right")
        ds = b.build()
        probs = [0.02, 0.9]  # wrong, right
        accs = [0.7, 0.7, 0.7]
        detection = detect_pairwise(ds, probs, accs, params)
        return ds, probs, accs, detection

    def test_copier_vote_discounted(self, params):
        ds, probs, accs, detection = self._copy_world(params)
        wrong = ds.value_label.index("wrong")
        providers = ds.providers[wrong]
        weights = independence_weights(providers, accs, detection, params)
        # Equal accuracies: one of the two providers is ranked second and
        # pays the discount; the first keeps full weight.
        assert max(weights) == pytest.approx(1.0)
        assert min(weights) < 1.0

    def test_weights_in_unit_interval(self, params):
        ds, probs, accs, detection = self._copy_world(params)
        for value_id, providers in enumerate(ds.providers):
            if len(providers) < 2:
                continue
            weights = independence_weights(providers, accs, detection, params)
            assert all(0.0 <= w <= 1.0 for w in weights)

    def test_independent_sources_keep_full_weight(self, params):
        b = DatasetBuilder()
        b.add("a", "D", "v")
        b.add("b", "D", "v")
        ds = b.build()
        detection = detect_pairwise(ds, [0.9], [0.9, 0.9], params)
        assert not detection.decision_for(0, 1).copying
        weights = independence_weights([0, 1], [0.9, 0.9], detection, params)
        # No-copying posteriors still discount by their residual copy
        # probability; weights stay close to 1.
        assert all(w > 0.7 for w in weights)


class TestRunnerRemainingMethods:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.synth import make_profile

        return make_profile("book_cs", scale=0.08, seed=29)

    @pytest.mark.parametrize("method", ["bound", "bound+", "sample2"])
    def test_methods_run_and_decide(self, world, method):
        run = run_method(method, world.dataset, CopyParams(), seed=2)
        assert run.rounds >= 1
        assert run.computations > 0
        if method == "sample2":
            assert run.sampled_items is not None


class TestDetectorCache:
    def test_shared_items_cached_per_dataset(self, example, params):
        detector = SingleRoundDetector(params, method="index")
        first = detector._shared_items(example)
        second = detector._shared_items(example)
        assert first is second  # identity: no recomputation

    def test_cache_invalidated_for_new_dataset(self, example, params):
        detector = SingleRoundDetector(params, method="index")
        first = detector._shared_items(example)
        b = DatasetBuilder()
        b.add("A", "D", "x")
        b.add("B", "D", "x")
        other = b.build()
        assert detector._shared_items(other) is not first


class TestValueProbabilityEdges:
    def test_item_with_single_claim(self, params):
        b = DatasetBuilder()
        b.add("only", "D", "x")
        ds = b.build()
        probs = value_probabilities(ds, [0.8], params)
        assert 0.0 < probs[0] < 1.0

    def test_more_values_than_domain(self):
        """More observed values than n+1 slots must not go negative."""
        params = CopyParams(n=2)
        b = DatasetBuilder()
        for s in range(5):
            b.add(f"S{s}", "D", f"v{s}")
        ds = b.build()
        probs = value_probabilities(ds, [0.5] * 5, params)
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert sum(probs) == pytest.approx(1.0)


class TestNraEmptyInput:
    def test_top_k_copying_with_no_shared_values(self, params):
        from repro.nra import build_fagin_input, top_k_copying

        b = DatasetBuilder()
        b.add("A", "D1", "x")
        b.add("B", "D2", "y")
        ds = b.build()
        fagin = build_fagin_input(ds, [0.5, 0.5], [0.8, 0.8], params)
        result = top_k_copying(fagin, 3)
        assert result.items == []


class TestStatsDerived:
    def test_avg_conflicts(self):
        b = DatasetBuilder()
        b.add("A", "D1", "x")
        b.add("B", "D1", "y")  # two values on D1
        b.add("A", "D2", "z")  # one value on D2
        stats = b.build().stats()
        assert stats.avg_conflicts_per_item == pytest.approx(1.5)
