"""Direct tests for paths otherwise exercised only indirectly."""

import pytest

from repro.core import (
    CopyParams,
    SingleRoundDetector,
    detect_pairwise,
    explain_pair,
    max_score,
    max_score_bruteforce,
)
from repro.data import DatasetBuilder
from repro.eval import run_method
from repro.eval.report import improvement, render_table
from repro.fusion import independence_weights, value_probabilities
from repro.nra import nra_topk


class TestIndependenceWeights:
    def _copy_world(self, params):
        b = DatasetBuilder()
        b.add("orig", "D", "wrong")
        b.add("copier", "D", "wrong")
        b.add("other", "D", "right")
        ds = b.build()
        probs = [0.02, 0.9]  # wrong, right
        accs = [0.7, 0.7, 0.7]
        detection = detect_pairwise(ds, probs, accs, params)
        return ds, probs, accs, detection

    def test_copier_vote_discounted(self, params):
        ds, probs, accs, detection = self._copy_world(params)
        wrong = ds.value_label.index("wrong")
        providers = ds.providers[wrong]
        weights = independence_weights(providers, accs, detection, params)
        # Equal accuracies: one of the two providers is ranked second and
        # pays the discount; the first keeps full weight.
        assert max(weights) == pytest.approx(1.0)
        assert min(weights) < 1.0

    def test_weights_in_unit_interval(self, params):
        ds, probs, accs, detection = self._copy_world(params)
        for value_id, providers in enumerate(ds.providers):
            if len(providers) < 2:
                continue
            weights = independence_weights(providers, accs, detection, params)
            assert all(0.0 <= w <= 1.0 for w in weights)

    def test_independent_sources_keep_full_weight(self, params):
        b = DatasetBuilder()
        b.add("a", "D", "v")
        b.add("b", "D", "v")
        ds = b.build()
        detection = detect_pairwise(ds, [0.9], [0.9, 0.9], params)
        assert not detection.decision_for(0, 1).copying
        weights = independence_weights([0, 1], [0.9, 0.9], detection, params)
        # No-copying posteriors still discount by their residual copy
        # probability; weights stay close to 1.
        assert all(w > 0.7 for w in weights)


class TestRunnerRemainingMethods:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.synth import make_profile

        return make_profile("book_cs", scale=0.08, seed=29)

    @pytest.mark.parametrize("method", ["bound", "bound+", "sample2"])
    def test_methods_run_and_decide(self, world, method):
        run = run_method(method, world.dataset, CopyParams(), seed=2)
        assert run.rounds >= 1
        assert run.computations > 0
        if method == "sample2":
            assert run.sampled_items is not None


class TestDetectorCache:
    def test_shared_items_cached_per_dataset(self, example, params):
        detector = SingleRoundDetector(params, method="index")
        first = detector._shared_items(example)
        second = detector._shared_items(example)
        assert first is second  # identity: no recomputation

    def test_cache_invalidated_for_new_dataset(self, example, params):
        detector = SingleRoundDetector(params, method="index")
        first = detector._shared_items(example)
        b = DatasetBuilder()
        b.add("A", "D", "x")
        b.add("B", "D", "x")
        other = b.build()
        assert detector._shared_items(other) is not first


class TestValueProbabilityEdges:
    def test_item_with_single_claim(self, params):
        b = DatasetBuilder()
        b.add("only", "D", "x")
        ds = b.build()
        probs = value_probabilities(ds, [0.8], params)
        assert 0.0 < probs[0] < 1.0

    def test_more_values_than_domain(self):
        """More observed values than n+1 slots must not go negative."""
        params = CopyParams(n=2)
        b = DatasetBuilder()
        for s in range(5):
            b.add(f"S{s}", "D", f"v{s}")
        ds = b.build()
        probs = value_probabilities(ds, [0.5] * 5, params)
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert sum(probs) == pytest.approx(1.0)


class TestNraEmptyInput:
    def test_top_k_copying_with_no_shared_values(self, params):
        from repro.nra import build_fagin_input, top_k_copying

        b = DatasetBuilder()
        b.add("A", "D1", "x")
        b.add("B", "D2", "y")
        ds = b.build()
        fagin = build_fagin_input(ds, [0.5, 0.5], [0.8, 0.8], params)
        result = top_k_copying(fagin, 3)
        assert result.items == []


class TestStatsDerived:
    def test_avg_conflicts(self):
        b = DatasetBuilder()
        b.add("A", "D1", "x")
        b.add("B", "D1", "y")  # two values on D1
        b.add("A", "D2", "z")  # one value on D2
        stats = b.build().stats()
        assert stats.avg_conflicts_per_item == pytest.approx(1.5)


class TestExplainPair:
    """explain_pair: the evidence breakdown behind a verdict."""

    def _world(self):
        b = DatasetBuilder()
        b.add("A", "capital", "Trenton")
        b.add("B", "capital", "Trenton")  # shared, unlikely value
        b.add("A", "bird", "goldfinch")
        b.add("B", "bird", "robin")  # disagreement
        b.add("A", "tree", "oak")  # only A claims: not evidence
        ds = b.build()
        probs = {ds.value_label.index("Trenton"): 0.05}
        return ds, [probs.get(v, 0.5) for v in range(ds.n_values)], [0.8, 0.8]

    def test_breakdown_accounts_for_every_shared_item(self, params):
        ds, probs, accs = self._world()
        explanation = explain_pair(ds, 0, 1, probs, accs, params)
        assert explanation.source_a == "A"
        assert explanation.n_shared_values == 1
        assert explanation.n_different == 1
        assert len(explanation.items) == 2  # 'tree' is not shared
        # Totals are the sum of the per-item contributions.
        assert explanation.c_fwd == pytest.approx(
            sum(ev.c_fwd for ev in explanation.items)
        )
        # Items are sorted by forward contribution, strongest first.
        assert explanation.items[0].shared
        assert explanation.items[0].c_fwd >= explanation.items[1].c_fwd
        assert explanation.top_evidence(1) == explanation.items[:1]

    def test_matches_pairwise_detection(self, params):
        """The explanation recomputes exactly what PAIRWISE concluded."""
        ds, probs, accs = self._world()
        detection = detect_pairwise(ds, probs, accs, params)
        decision = detection.decision_for(0, 1)
        explanation = explain_pair(ds, 0, 1, probs, accs, params)
        assert explanation.c_fwd == pytest.approx(decision.c_fwd)
        assert explanation.c_bwd == pytest.approx(decision.c_bwd)
        assert explanation.copying == decision.copying
        assert explanation.posterior.independent == pytest.approx(
            decision.posterior.independent
        )

    def test_render_lists_evidence_and_truncates(self, params):
        b = DatasetBuilder()
        for i in range(8):
            b.add("A", f"item{i}", "v")
            b.add("B", f"item{i}", "v")
        b.add("A", "extra", "x")
        b.add("B", "extra", "y")
        ds = b.build()
        explanation = explain_pair(
            ds, 0, 1, [0.3] * ds.n_values, [0.7, 0.9], params
        )
        text = explanation.render(max_items=3)
        assert "A vs B" in text
        assert "... and 6 more items" in text
        assert text.count("+ item") == 3  # truncated at max_items
        full = explanation.render(max_items=50)
        assert "more items" not in full
        assert "- extra" in full  # disagreements render with both values

    def test_invalid_sources_rejected(self, example, example_probabilities,
                                      example_accuracies, params):
        with pytest.raises(ValueError, match="itself"):
            explain_pair(
                example, 1, 1, example_probabilities, example_accuracies, params
            )
        with pytest.raises(ValueError, match="out of range"):
            explain_pair(
                example, 0, 99, example_probabilities, example_accuracies, params
            )


class TestRenderTable:
    def test_formats_cell_types(self):
        text = render_table(
            "T",
            ["name", "count", "ratio", "flag"],
            [
                ["a", 1234567, 0.1234, True],
                ["b", 2, float("nan"), False],
                ["c", 3, 12345.6, True],
            ],
        )
        assert "1,234,567" in text  # thousands separators on ints
        assert "0.123" in text  # 3-decimal floats
        assert "12,346" in text  # large floats lose decimals
        assert "yes" in text and "no" in text  # booleans
        lines = text.splitlines()
        assert lines[1] == "=" * len("T")
        # NaN renders as a dash, not 'nan'.
        assert any(" - " in line for line in lines)
        # All data rows are padded to the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_improvement_convention(self):
        assert improvement(10.0, 1.0) == pytest.approx(0.9)
        assert improvement(10.0, 10.0) == 0.0
        assert improvement(10.0, 20.0) == pytest.approx(-1.0)
        assert improvement(0.0, 5.0) != improvement(0.0, 5.0)  # NaN


class TestMaxScoreEdges:
    def test_rejects_single_provider(self, params):
        with pytest.raises(ValueError):
            max_score(0.5, [0.8], params)
        with pytest.raises(ValueError):
            max_score_bruteforce(0.5, [0.8], params)

    @pytest.mark.parametrize(
        "accuracies",
        [
            [0.8, 0.8],  # the degenerate two-provider tie
            [0.5, 0.5, 0.5, 0.5],  # all equal: every extreme coincides
            [0.001, 0.999],  # beyond the clamp on both sides
            [0.01, 0.01, 0.99, 0.99],  # paired extremes
            [0.2, 0.2, 0.2, 0.9],  # second-min equals min
        ],
    )
    @pytest.mark.parametrize("p_true", [0.001, 0.5, 0.999])
    def test_degenerate_menus_match_bruteforce(self, params, accuracies, p_true):
        """Proposition 3.1's extremes shortcut survives ties and clamps."""
        assert max_score(p_true, accuracies, params) == pytest.approx(
            max_score_bruteforce(p_true, accuracies, params), abs=1e-12
        )


class TestNraEdges:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be"):
            nra_topk([[("a", 1.0)]], 0)

    def test_unsorted_list_rejected(self):
        with pytest.raises(ValueError, match="descending"):
            nra_topk([[("a", 1.0), ("b", 2.0)]], 1)

    def test_exhaustion_returns_unresolved(self):
        """Fewer objects than k: lists run dry, items still correct."""
        result = nra_topk([[("a", 2.0), ("b", 1.0)]], k=5)
        assert not result.resolved
        assert [obj for obj, _ in result.items] == ["a", "b"]

    def test_negative_scores_use_list_floors(self):
        """An object absent from the penalty list must assume the worst."""
        lists = [
            [("a", 3.0), ("b", 2.0)],
            [("b", -0.5), ("a", -2.0)],
        ]
        result = nra_topk(lists, k=2, missing_score=0.0)
        scores = dict(result.items)
        assert scores["a"] == pytest.approx(1.0)
        assert scores["b"] == pytest.approx(1.5)
        assert result.items[0][0] == "b"

    def test_early_stop_reads_fewer_positions(self):
        """A clear winner stops the scan before the lists are exhausted."""
        lists = [
            [("a", 10.0)] + [(f"x{i}", 0.01) for i in range(50)],
            [("a", 10.0)] + [(f"y{i}", 0.01) for i in range(50)],
        ]
        result = nra_topk(lists, k=1)
        assert result.resolved
        assert result.items[0][0] == "a"
        assert result.sorted_accesses < 2 * 51
