"""Popularity-aware contribution model (paper footnote 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    CopyParams,
    detect_pairwise,
    detect_pairwise_popular,
    estimate_relative_popularity,
    pr_independent,
    pr_independent_popular,
    pr_single,
    pr_single_popular,
    same_value_scores_both,
    same_value_scores_popular,
)
from repro.data import DatasetBuilder
from tests.strategies import accuracies, probabilities


class TestReduction:
    """At rho = 1 the popularity model IS the uniform model."""

    @given(p=probabilities, a1=accuracies, a2=accuracies)
    def test_pr_independent(self, p, a1, a2):
        assert pr_independent_popular(p, a1, a2, 1.0, 50) == pytest.approx(
            pr_independent(p, a1, a2, 50)
        )

    @given(p=probabilities, a=accuracies)
    def test_pr_single(self, p, a):
        assert pr_single_popular(p, a, 1.0) == pytest.approx(pr_single(p, a))

    @given(p=probabilities, a1=accuracies, a2=accuracies)
    def test_scores(self, p, a1, a2):
        params = CopyParams()
        uniform = same_value_scores_both(p, a1, a2, params)
        popular = same_value_scores_popular(p, a1, a2, 1.0, params)
        assert popular[0] == pytest.approx(uniform[0])
        assert popular[1] == pytest.approx(uniform[1])


class TestMonotonicity:
    @given(
        p=st.floats(min_value=0.001, max_value=0.02),
        a1=st.floats(min_value=0.2, max_value=0.5),
        a2=st.floats(min_value=0.2, max_value=0.5),
        rho=st.floats(min_value=2.0, max_value=20.0),
    )
    def test_popular_false_values_are_weaker_evidence(self, p, a1, a2, rho):
        """In the false-channel-dominated regime (clearly-false value,
        error-prone providers) a popular falsehood scores below a rare
        one.  Outside that regime the 'might be true' channel dominates
        and the correction can reverse — see the module docstring;
        hypothesis found the boundary at (p=.25, a=.5, rho=2)."""
        params = CopyParams()
        rare = same_value_scores_popular(p, a1, a2, 1.0, params)
        popular = same_value_scores_popular(p, a1, a2, rho, params)
        assert popular[0] < rare[0]
        assert popular[1] < rare[1]

    def test_accurate_providers_reverse_the_correction(self):
        """Documented boundary behaviour: for accurate providers sharing a
        popular value, the score *rises* with popularity (the value being
        provided at all becomes likelier while independent collision stays
        dominated by the true channel)."""
        params = CopyParams()
        rare = same_value_scores_popular(0.25, 0.5, 0.5, 1.0, params)
        popular = same_value_scores_popular(0.25, 0.5, 0.5, 2.0, params)
        assert popular[0] > rare[0]


class TestEstimator:
    def test_uniform_world_estimates_near_one(self):
        """Singleton values (no repeated errors) stay near rho = 1."""
        b = DatasetBuilder()
        for s in range(6):
            b.add(f"S{s}", "D", f"v{s}")
        ds = b.build()
        params = CopyParams()
        rhos = estimate_relative_popularity(ds, [0.1] * 6, params)
        assert all(0.5 < r < 2.5 for r in rhos)

    def test_repeated_false_value_gets_high_rho(self):
        b = DatasetBuilder()
        for s in range(8):
            b.add(f"S{s}", "D", "stale")  # everyone repeats the same error
        b.add("S8", "D", "fresh")
        ds = b.build()
        params = CopyParams()
        probs = [0.05 if ds.value_label[v] == "stale" else 0.9 for v in range(ds.n_values)]
        rhos = estimate_relative_popularity(ds, probs, params)
        stale = ds.value_label.index("stale")
        fresh = ds.value_label.index("fresh")
        assert rhos[stale] > 3.0
        assert rhos[stale] > rhos[fresh]

    def test_length_validation(self):
        b = DatasetBuilder()
        b.add("A", "D", "x")
        b.add("B", "D", "x")
        ds = b.build()
        with pytest.raises(ValueError):
            detect_pairwise_popular(
                ds, [0.5], [0.8, 0.8], CopyParams(), rel_popularity=[1.0, 1.0]
            )


class TestDecisionCorrection:
    def _borderline_world(self):
        """Two 0.5-accuracy sources sharing 2 *popular* false values and
        disagreeing on 3 items — plus a crowd that repeats the same
        popular falsehoods independently."""
        b = DatasetBuilder()
        # Shared popular falsehoods on items P0, P1.
        for s in ("A", "B", "C", "D", "E", "F"):
            b.add(s, "P0", "pop0")
            b.add(s, "P1", "pop1")
        # A and B disagree on three more items.
        for i, (va, vb) in enumerate([("x", "y"), ("q", "r"), ("s", "t")]):
            b.add("A", f"I{i}", va)
            b.add("B", f"I{i}", vb)
        return b.build()

    def test_popularity_flips_borderline_pair(self):
        ds = self._borderline_world()
        params = CopyParams()
        probs = [
            0.02 if ds.value_label[v].startswith("pop") else 0.5
            for v in range(ds.n_values)
        ]
        accs = [0.5] * ds.n_sources
        a, bee = ds.source_names.index("A"), ds.source_names.index("B")

        uniform = detect_pairwise(ds, probs, accs, params)
        assert uniform.decision_for(a, bee).copying, "uniform model is fooled"

        popular = detect_pairwise_popular(ds, probs, accs, params)
        decision = popular.decision_for(a, bee)
        assert not decision.copying, (
            "popularity model should discount the crowd-repeated falsehoods"
        )

    def test_copiers_still_detected_under_popularity(self):
        """Real copiers share rare values too; the correction must not
        erase true positives."""
        from repro.synth import GeneratorConfig, generate

        world = generate(
            GeneratorConfig(
                n_items=300,
                n_independent_sources=12,
                coverage_range=(0.7, 1.0),
                accuracy_range=(0.5, 0.85),
                n_copier_groups=2,
                copiers_per_group=2,
                false_value_skew=2.0,
                seed=9,
            )
        )
        ds = world.dataset
        params = CopyParams()
        from repro.fusion import run_fusion

        fusion = run_fusion(ds, params, detector=None)
        result = detect_pairwise_popular(
            ds, fusion.probabilities, fusion.accuracies, params
        )
        planted = world.copy_pair_ids()
        found = result.copying_pairs()
        assert len(found & planted) >= len(planted) // 2


class TestGeneratorSkew:
    def test_skew_concentrates_false_picks(self):
        from repro.synth import GeneratorConfig, generate

        flat = generate(
            GeneratorConfig(n_items=400, n_independent_sources=20,
                            coverage_range=(0.8, 1.0), accuracy_range=(0.4, 0.6),
                            n_copier_groups=0, false_value_skew=0.0, seed=3)
        )
        skewed = generate(
            GeneratorConfig(n_items=400, n_independent_sources=20,
                            coverage_range=(0.8, 1.0), accuracy_range=(0.4, 0.6),
                            n_copier_groups=0, false_value_skew=2.5, seed=3)
        )

        def top_false_share(world):
            ds = world.dataset
            best = total = 0
            for item in range(ds.n_items):
                for vid in ds.values_of_item(item):
                    if ds.value_label[vid].endswith("/f0"):
                        best += len(ds.providers[vid])
                    if "/f" in ds.value_label[vid]:
                        total += len(ds.providers[vid])
            return best / total if total else 0.0

        assert top_false_share(skewed) > 2 * top_false_share(flat)

    def test_zero_copier_groups_allowed(self):
        from repro.synth import GeneratorConfig, generate

        world = generate(GeneratorConfig(n_items=50, n_copier_groups=0, seed=1))
        assert world.copy_pairs == set()
