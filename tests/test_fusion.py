"""Truth finding: VOTE, ACCU probabilities, ACCUCOPY discounting, the loop."""

import pytest
from hypothesis import given, settings

from repro.core import CopyParams, SingleRoundDetector, detect_pairwise
from repro.data import DatasetBuilder, motivating_example, motivating_gold
from repro.fusion import (
    FusionConfig,
    accuracy_score,
    choose_values,
    run_fusion,
    update_accuracies,
    value_probabilities,
    vote,
    vote_probabilities,
)
from tests.strategies import worlds


def _simple_dataset():
    b = DatasetBuilder()
    b.add("good", "D", "true-v")
    b.add("good2", "D", "true-v")
    b.add("bad", "D", "false-v")
    return b.build()


class TestVote:
    def test_majority_wins(self):
        ds = _simple_dataset()
        chosen = vote(ds)
        item = ds.item_names.index("D")
        assert ds.value_label[chosen[item]] == "true-v"

    def test_tie_breaks_deterministically(self):
        b = DatasetBuilder()
        b.add("a", "D", "x")
        b.add("b", "D", "y")
        ds = b.build()
        assert vote(ds) == vote(ds)

    def test_vote_probabilities_sum_to_one_per_item(self):
        ds = motivating_example()
        probs = vote_probabilities(ds)
        for item_id in range(ds.n_items):
            total = sum(probs[v] for v in ds.values_of_item(item_id))
            assert total == pytest.approx(1.0)


class TestAccuracyScore:
    def test_monotone(self, params):
        assert accuracy_score(0.9, params) > accuracy_score(0.5, params)

    def test_clamped_extremes_finite(self, params):
        assert accuracy_score(1.0, params) < float("inf")
        assert accuracy_score(0.0, params) > float("-inf")


class TestValueProbabilities:
    def test_higher_accuracy_sources_win(self, params):
        ds = _simple_dataset()
        probs = value_probabilities(ds, [0.9, 0.9, 0.3], params)
        true_id = ds.value_label.index("true-v")
        false_id = ds.value_label.index("false-v")
        assert probs[true_id] > probs[false_id]

    def test_minority_of_accurate_sources_beats_majority_of_bad(self, params):
        b = DatasetBuilder()
        b.add("expert", "D", "right")
        b.add("junk1", "D", "wrong")
        b.add("junk2", "D", "wrong")
        ds = b.build()
        probs = value_probabilities(ds, [0.99, 0.2, 0.2], params)
        assert probs[ds.value_label.index("right")] > probs[
            ds.value_label.index("wrong")
        ]

    @settings(max_examples=40, deadline=None)
    @given(world=worlds())
    def test_probabilities_valid_and_bounded(self, world):
        dataset, _, accs = world
        params = CopyParams()
        probs = value_probabilities(dataset, accs, params)
        assert all(0.0 <= p <= 1.0 for p in probs)
        for item_id in range(dataset.n_items):
            total = sum(probs[v] for v in dataset.values_of_item(item_id))
            assert total <= 1.0 + 1e-9

    def test_copy_discount_weakens_copied_value(self, params):
        """ACCUCOPY: a false value shared by copiers loses its vote mass."""
        b = DatasetBuilder()
        b.add("orig", "D", "wrong")
        b.add("copier", "D", "wrong")
        b.add("honest1", "D", "right")
        b.add("honest2", "D", "right")
        ds = b.build()
        accs = [0.7, 0.7, 0.7, 0.7]
        plain = value_probabilities(ds, accs, params)
        detection = detect_pairwise(ds, plain, accs, params)
        # Force a strong copy verdict for (orig, copier) by lowering the
        # shared value's probability.
        probs_low = list(plain)
        probs_low[ds.value_label.index("wrong")] = 0.02
        detection = detect_pairwise(ds, probs_low, accs, params)
        discounted = value_probabilities(ds, accs, params, detection=detection)
        wrong = ds.value_label.index("wrong")
        assert discounted[wrong] <= plain[wrong] + 1e-12


class TestUpdateAccuracies:
    def test_mean_of_claimed_probabilities(self, params):
        ds = _simple_dataset()
        probs = [0.9, 0.1]  # true-v, false-v
        accs = update_accuracies(ds, probs, params)
        assert accs[0] == pytest.approx(0.9)
        assert accs[2] == pytest.approx(0.1)

    def test_sources_without_claims_neutral(self, params):
        b = DatasetBuilder()
        b.ensure_source("empty")
        b.add("s", "D", "v")
        ds = b.build()
        accs = update_accuracies(ds, [0.7], params)
        assert accs[0] == 0.5

    def test_clamped(self, params):
        ds = _simple_dataset()
        accs = update_accuracies(ds, [1.0, 0.0], params)
        assert all(params.accuracy_clamp <= a <= 1 - params.accuracy_clamp for a in accs)


class TestChooseValues:
    def test_picks_argmax(self):
        ds = _simple_dataset()
        chosen = choose_values(ds, [0.3, 0.6])
        item = ds.item_names.index("D")
        assert ds.value_label[chosen[item]] == "false-v"


class TestFusionLoop:
    def test_motivating_example_recovers_truth(self, params):
        """The loop reproduces Table II's converged state: planted
        accuracies and all five intended truths."""
        ds = motivating_example()
        detector = SingleRoundDetector(params, method="pairwise")
        result = run_fusion(ds, params, detector=detector)
        gold = motivating_gold()
        assert gold.accuracy_of(ds, result.chosen) == 1.0
        by_name = dict(zip(ds.source_names, result.accuracies))
        assert by_name["S0"] == pytest.approx(0.99, abs=0.02)
        assert by_name["S2"] == pytest.approx(0.2, abs=0.05)
        assert by_name["S6"] == pytest.approx(0.01, abs=0.02)

    def test_copying_detected_in_loop(self, params):
        ds = motivating_example()
        detector = SingleRoundDetector(params, method="index")
        result = run_fusion(ds, params, detector=detector)
        names = {
            frozenset({ds.source_names[a], ds.source_names[b]})
            for a, b in result.final_detection().copying_pairs()
        }
        from repro.data import MOTIVATING_COPY_PAIRS

        assert names == set(MOTIVATING_COPY_PAIRS)

    def test_without_detector_copiers_mislead(self, params):
        """ACCU alone (no copy detection) trusts the copier block more."""
        ds = motivating_example()
        plain = run_fusion(ds, params, detector=None)
        aware = run_fusion(
            ds, params, detector=SingleRoundDetector(params, method="pairwise")
        )
        gold = motivating_gold()
        assert gold.accuracy_of(ds, aware.chosen) >= gold.accuracy_of(ds, plain.chosen)

    def test_convergence_flag(self, params):
        ds = motivating_example()
        result = run_fusion(
            ds,
            params,
            detector=None,
            config=FusionConfig(max_rounds=1, min_rounds=1),
        )
        assert result.n_rounds == 1

    def test_round_records(self, params):
        ds = motivating_example()
        detector = SingleRoundDetector(params, method="hybrid")
        result = run_fusion(ds, params, detector=detector)
        assert [r.round_no for r in result.rounds] == list(
            range(1, result.n_rounds + 1)
        )
        assert result.detection_seconds >= 0.0
        assert result.total_computations > 0
