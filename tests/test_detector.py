"""Detector dispatch and the stateful round detectors."""

import pytest

from repro.core import (
    METHODS,
    CopyParams,
    IncrementalDetector,
    SingleRoundDetector,
    detect,
)


class TestDetectDispatch:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_run(
        self, example, example_probabilities, example_accuracies, params, method
    ):
        result = detect(
            example, example_probabilities, example_accuracies, params, method=method
        )
        assert result.method in (method, "hybrid", "bound+")
        assert result.elapsed_seconds >= 0.0
        assert result.decisions

    def test_unknown_method(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect(
                example,
                example_probabilities,
                example_accuracies,
                params,
                method="nope",
            )

    @pytest.mark.parametrize("method", METHODS)
    def test_methods_agree_on_example(
        self, example, example_probabilities, example_accuracies, params, method
    ):
        reference = detect(
            example,
            example_probabilities,
            example_accuracies,
            params,
            method="pairwise",
        )
        result = detect(
            example, example_probabilities, example_accuracies, params, method=method
        )
        assert result.copying_pairs() == reference.copying_pairs()


class TestSingleRoundDetector:
    def test_validates_method(self, params):
        with pytest.raises(ValueError):
            SingleRoundDetector(params, method="incremental")

    def test_run_round(
        self, example, example_probabilities, example_accuracies, params
    ):
        detector = SingleRoundDetector(params, method="index")
        a = detector.run_round(1, example, example_probabilities, example_accuracies)
        b = detector.run_round(2, example, example_probabilities, example_accuracies)
        assert a.copying_pairs() == b.copying_pairs()


class TestIncrementalDetector:
    def test_schedule(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Rounds 1-2 run HYBRID (round 2 prepares state); round 3+ are
        incremental."""
        detector = IncrementalDetector(params)
        r1 = detector.run_round(
            1, example, example_probabilities, example_accuracies
        )
        assert detector.state is None
        assert r1.method == "hybrid"
        r2 = detector.run_round(
            2, example, example_probabilities, example_accuracies
        )
        assert detector.state is not None
        assert r2.method == "hybrid"
        r3 = detector.run_round(
            3, example, example_probabilities, example_accuracies
        )
        assert r3.method == "incremental"
        assert r3.copying_pairs() == r2.copying_pairs()

    def test_out_of_order_round_prepares(self, example, example_probabilities, example_accuracies, params):
        """Jumping straight to round 5 without state falls back to prep."""
        detector = IncrementalDetector(params)
        result = detector.run_round(
            5, example, example_probabilities, example_accuracies
        )
        assert detector.state is not None
        assert result.method == "hybrid"
