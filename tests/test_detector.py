"""Detector dispatch and the stateful round detectors."""

import pytest

from repro.core import (
    METHODS,
    IncrementalDetector,
    SingleRoundDetector,
    detect,
)


class TestDetectDispatch:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_run(
        self, example, example_probabilities, example_accuracies, params, method
    ):
        result = detect(
            example, example_probabilities, example_accuracies, params, method=method
        )
        assert result.method in (method, "hybrid", "bound+")
        assert result.elapsed_seconds >= 0.0
        assert result.decisions

    def test_unknown_method(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            detect(
                example,
                example_probabilities,
                example_accuracies,
                params,
                method="nope",
            )

    @pytest.mark.parametrize("method", METHODS)
    def test_methods_agree_on_example(
        self, example, example_probabilities, example_accuracies, params, method
    ):
        reference = detect(
            example,
            example_probabilities,
            example_accuracies,
            params,
            method="pairwise",
        )
        result = detect(
            example, example_probabilities, example_accuracies, params, method=method
        )
        assert result.copying_pairs() == reference.copying_pairs()


class TestSingleRoundDetector:
    def test_validates_method(self, params):
        with pytest.raises(ValueError):
            SingleRoundDetector(params, method="incremental")

    def test_run_round(
        self, example, example_probabilities, example_accuracies, params
    ):
        detector = SingleRoundDetector(params, method="index")
        a = detector.run_round(1, example, example_probabilities, example_accuracies)
        b = detector.run_round(2, example, example_probabilities, example_accuracies)
        assert a.copying_pairs() == b.copying_pairs()


class TestIncrementalDetector:
    def test_schedule(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Rounds 1-2 run HYBRID (round 2 prepares state); round 3+ are
        incremental."""
        detector = IncrementalDetector(params)
        r1 = detector.run_round(
            1, example, example_probabilities, example_accuracies
        )
        assert detector.state is None
        assert r1.method == "hybrid"
        r2 = detector.run_round(
            2, example, example_probabilities, example_accuracies
        )
        assert detector.state is not None
        assert r2.method == "hybrid"
        r3 = detector.run_round(
            3, example, example_probabilities, example_accuracies
        )
        assert r3.method == "incremental"
        assert r3.copying_pairs() == r2.copying_pairs()

    def test_out_of_order_round_prepares(self, example, example_probabilities, example_accuracies, params):
        """Jumping straight to round 5 without state falls back to prep."""
        detector = IncrementalDetector(params)
        result = detector.run_round(
            5, example, example_probabilities, example_accuracies
        )
        assert detector.state is not None
        assert result.method == "hybrid"


class TestSharedItemsCache:
    """Regression: the shared-items cache must key on the dataset object.

    The original implementation keyed on ``id(dataset)``; ids are
    recycled once a dataset is garbage collected, so a fresh dataset
    allocated at the same address silently inherited the previous
    dataset's counts.  A strong reference both prevents the recycling
    and makes the comparison exact.
    """

    @pytest.mark.parametrize("detector_cls", [SingleRoundDetector, IncrementalDetector])
    def test_cache_holds_strong_reference(
        self, example, example_probabilities, example_accuracies, params, detector_cls
    ):
        if detector_cls is SingleRoundDetector:
            detector = detector_cls(params, method="index")
        else:
            detector = detector_cls(params)
        counts = detector._shared_items(example)
        assert detector._shared_items_cache is not None
        cached_dataset, cached_counts = detector._shared_items_cache
        assert cached_dataset is example  # strong ref, not an id snapshot
        assert cached_counts is counts
        # Same object: cache hit returns the identical mapping.
        assert detector._shared_items(example) is counts

    @pytest.mark.parametrize("detector_cls", [SingleRoundDetector, IncrementalDetector])
    def test_distinct_datasets_get_distinct_counts(
        self, params, detector_cls
    ):
        from repro.data import DatasetBuilder

        def build(n_items):
            builder = DatasetBuilder()
            for i in range(n_items):
                builder.add("A", f"item{i}", "v")
                builder.add("B", f"item{i}", "v")
            return builder.build()

        if detector_cls is SingleRoundDetector:
            detector = detector_cls(params, method="index")
        else:
            detector = detector_cls(params)
        first = build(2)
        assert detector._shared_items(first) == {(0, 1): 2}
        # Drop the first dataset entirely, then hand the detector a new
        # one — under id() keying this is where a recycled address could
        # serve the stale {(0, 1): 2} for a 3-item dataset.
        del first
        import gc

        gc.collect()
        second = build(3)
        assert detector._shared_items(second) == {(0, 1): 3}
