"""Streaming layer: ledger intake, epoch engine, and the asyncio service.

The load-bearing assertions here are the lockstep-parity ones the
architecture promises (see ``src/repro/streaming/engine.py``):

* a live :class:`StreamingService` run and a synchronous
  :func:`replay_epochs` run over the same epoch partitions produce
  *exactly* equal accuracies, truths and pair decisions per epoch;
* with warm starts off, the final streamed epoch is exactly equal to
  one batch INCREMENTAL ``run_fusion`` over the accumulated claims.

Everything async uses ``asyncio.run`` directly (no pytest-asyncio in
the environment).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core import CopyParams, IncrementalDetector, PairNotObservedError
from repro.data import ClaimDelta, ClaimLedger, coalesce_deltas
from repro.fusion import FusionConfig, run_fusion
from repro.serving import VerdictReader, VerdictStore
from repro.streaming import (
    StreamEngine,
    StreamingService,
    replay_epochs,
)

# ----------------------------------------------------------------------
# World builders: rich enough that the hybrid index actually opens pairs
# (tiny worlds put every entry in the index tail and observe nothing).
# ----------------------------------------------------------------------


def make_world(
    n_independent: int = 4,
    n_items: int = 12,
    n_copiers: int = 2,
    seed: int = 7,
) -> list[ClaimDelta]:
    """Claims with planted copying: copiers clone source ``S0`` verbatim."""
    rng = random.Random(seed)
    deltas: list[ClaimDelta] = []
    claims_of_s0: dict[str, str] = {}
    for s in range(n_independent):
        source = f"S{s}"
        for i in range(n_items):
            item = f"I{i:02d}"
            if rng.random() < 0.7:
                value = f"true-{i}"
            else:
                value = f"wrong-{i}-{rng.randint(0, 1)}"
            deltas.append(ClaimDelta(source, item, value))
            if s == 0:
                claims_of_s0[item] = value
    for c in range(n_copiers):
        source = f"C{c}"
        for i in range(n_items):
            item = f"I{i:02d}"
            deltas.append(ClaimDelta(source, item, claims_of_s0[item]))
    return deltas


def partition(deltas: list[ClaimDelta], n: int) -> list[list[ClaimDelta]]:
    """Split a delta stream into ``n`` contiguous epochs."""
    size = (len(deltas) + n - 1) // n
    return [deltas[i : i + size] for i in range(0, len(deltas), size)]


@pytest.fixture(scope="module")
def world() -> list[ClaimDelta]:
    return make_world()


@pytest.fixture(scope="module")
def epochs(world) -> list[list[ClaimDelta]]:
    return partition(world, 3)


# ----------------------------------------------------------------------
# ClaimDelta + coalescing
# ----------------------------------------------------------------------


class TestClaimDelta:
    def test_json_round_trip(self):
        delta = ClaimDelta("S0", "NJ", "Trenton")
        assert ClaimDelta.from_json(delta.to_json()) == delta

    @pytest.mark.parametrize(
        "obj",
        [
            {},
            {"source": "S0", "item": "NJ"},
            {"source": "S0", "item": "NJ", "value": 7},
            "not-a-mapping",
        ],
    )
    def test_from_json_rejects_malformed(self, obj):
        with pytest.raises(ValueError):
            ClaimDelta.from_json(obj)


class TestCoalesce:
    def test_burst_collapses_to_first_position_last_value(self):
        burst = [
            ClaimDelta("S0", "NJ", "Trenton"),
            ClaimDelta("S1", "NJ", "Newark"),
            ClaimDelta("S0", "NJ", "Newark"),
            ClaimDelta("S0", "NJ", "Princeton"),
        ]
        out = coalesce_deltas(burst)
        # S0's slot stays first (interning-order stability) but carries
        # the burst's final value (last-writer-wins).
        assert out == [
            ClaimDelta("S0", "NJ", "Princeton"),
            ClaimDelta("S1", "NJ", "Newark"),
        ]

    def test_verbatim_resends_dedupe(self):
        burst = [ClaimDelta("S0", "NJ", "Trenton")] * 5
        assert coalesce_deltas(burst) == [ClaimDelta("S0", "NJ", "Trenton")]

    def test_distinct_keys_untouched(self, world):
        assert coalesce_deltas(world) == world


# ----------------------------------------------------------------------
# ClaimLedger
# ----------------------------------------------------------------------


class TestClaimLedger:
    def test_apply_accounting(self):
        ledger = ClaimLedger()
        update = ledger.apply(
            [
                ClaimDelta("S0", "NJ", "Trenton"),
                ClaimDelta("S1", "NJ", "Newark"),
            ]
        )
        assert update.n_deltas == 2
        assert update.changed_claims == 2
        assert update.new_sources == 2
        assert update.new_items == 1
        assert update.new_values == 2
        assert not update.is_noop

    def test_confirmations_are_noops(self):
        ledger = ClaimLedger()
        ledger.apply([ClaimDelta("S0", "NJ", "Trenton")])
        v = ledger.version
        update = ledger.apply([ClaimDelta("S0", "NJ", "Trenton")])
        assert update.confirmations == 1
        assert update.changed_claims == 0
        assert update.is_noop
        assert ledger.version == v  # version advances only on change

    def test_value_flip_changes(self):
        ledger = ClaimLedger()
        ledger.apply([ClaimDelta("S0", "NJ", "Trenton")])
        update = ledger.apply([ClaimDelta("S0", "NJ", "Newark")])
        assert update.changed_claims == 1
        assert not update.is_noop
        assert len(ledger) == 1  # last-writer-wins, not append

    def test_snapshot_identity_between_batches(self, world):
        ledger = ClaimLedger()
        ledger.apply(world)
        first = ledger.snapshot()
        assert ledger.snapshot() is first  # cached per version
        ledger.apply([ClaimDelta("S9", "I00", "true-0")])
        assert ledger.snapshot() is not first

    def test_seeded_ledger_reproduces_base(self, world):
        ledger = ClaimLedger()
        ledger.apply(world)
        base = ledger.snapshot()
        seeded = ClaimLedger(base=base)
        again = seeded.snapshot()
        assert again.source_names == base.source_names
        assert again.item_names == base.item_names
        assert again.value_label == base.value_label
        assert list(again.iter_claims()) == list(base.iter_claims())

    def test_streamed_interning_matches_batch_interning(self, world, epochs):
        streamed = ClaimLedger()
        for epoch in epochs:
            streamed.apply(epoch)
        batch = ClaimLedger()
        batch.apply(world)
        assert (
            streamed.snapshot().source_names == batch.snapshot().source_names
        )
        assert list(streamed.snapshot().iter_claims()) == list(
            batch.snapshot().iter_claims()
        )


# ----------------------------------------------------------------------
# StreamEngine epochs
# ----------------------------------------------------------------------


class TestStreamEngine:
    def test_epochs_publish_consecutive_snapshots(self, tmp_path, epochs):
        with StreamEngine(store=tmp_path / "store") as engine:
            ids = [engine.run_epoch(epoch).snapshot_id for epoch in epochs]
        assert ids == [1, 2, 3]

    def test_confirmation_batch_is_skipped(self, tmp_path, epochs):
        with StreamEngine(store=tmp_path / "store") as engine:
            first = engine.run_epoch(epochs[0])
            again = engine.run_epoch(epochs[0])  # pure re-confirmation
        assert not first.skipped
        assert again.skipped
        assert again.fusion is None
        assert again.epoch == first.epoch  # epoch counter did not advance
        # No new snapshot was written; the state still points at epoch 1's.
        assert again.snapshot_id == first.snapshot_id == 1
        store = VerdictStore(tmp_path / "store")
        assert store.current_id() == 1

    def test_empty_first_batch_is_skipped(self, tmp_path):
        with StreamEngine(store=tmp_path / "store") as engine:
            result = engine.run_epoch([])
        assert result.skipped
        assert result.snapshot_id is None
        assert engine.state is None

    def test_no_store_runs_unpublished(self, epochs):
        with StreamEngine() as engine:
            result = engine.run_epoch(epochs[0])
        assert not result.skipped
        assert result.snapshot_id is None
        assert engine.state.snapshot_id is None

    def test_warm_start_seeds_previous_accuracies(self, epochs):
        cold = replay_epochs(epochs, warm_start=False)
        warm = replay_epochs(epochs, warm_start=True)
        # Both converge; the warm run never needs more rounds than cold
        # on a quiet feed (that is the whole point of warm starts).
        assert all(r.fusion.converged for r in cold if not r.skipped)
        assert warm[-1].fusion.n_rounds <= cold[-1].fusion.n_rounds

    def test_reader_sees_every_epoch_version(self, tmp_path, epochs):
        store = VerdictStore(tmp_path / "store")
        with StreamEngine(store=store) as engine:
            results = [engine.run_epoch(epoch) for epoch in epochs]
            reader = VerdictReader(store)
            reader.refresh()
            assert reader.snapshot_id == results[-1].snapshot_id

    def test_labels_grow_through_delta_snapshots(self, tmp_path, world):
        """Items/values first seen in epoch 2+ resolve by name at the reader.

        Regression: delta snapshots used to omit label tables, so a
        reader refreshed past a world-growing epoch hit unresolvable
        value ids.
        """
        store = VerdictStore(tmp_path / "store")
        chunks = partition(world, 3)
        with StreamEngine(store=store) as engine:
            engine.run_epoch(chunks[0])
            reader = VerdictReader(store)
            n_values_before = len(engine.state.dataset.value_label)
            engine.run_epoch(chunks[1])
            engine.run_epoch(chunks[2])
            reader.refresh()
            grown = engine.state.dataset
        assert len(grown.value_label) > n_values_before
        # Every fused item resolves to a labelled truth post-growth.
        for item_id in range(grown.n_items):
            truth = reader.get_truth(grown.item_names[item_id])
            assert truth is not None
            assert truth.value_label == grown.value_label[truth.value]

    def test_new_sources_force_full_snapshot(self, tmp_path, world):
        """Growing n_sources restrides pair keys: publisher is rebuilt."""
        store = VerdictStore(tmp_path / "store")
        newcomer = [
            ClaimDelta("LATE", f"I{i:02d}", f"true-{i}") for i in range(12)
        ]
        with StreamEngine(store=store) as engine:
            engine.run_epoch(world)
            publisher_before = engine._publisher
            engine.run_epoch(newcomer)
            assert engine._publisher is not publisher_before
            n_sources = engine.state.dataset.n_sources
        reader = VerdictReader(store)
        assert reader.n_sources == n_sources

    def test_explain_from_epoch_state(self, tmp_path, world):
        with StreamEngine(store=tmp_path / "store") as engine:
            engine.run_epoch(world)
            state = engine.state
            names = state.dataset.source_names
            s0, c0 = names.index("S0"), names.index("C0")
            explanation = state.explain(s0, c0)
            # The detector's stored verdict catches the verbatim clone
            # (the recomputed posterior may differ when the stored one
            # is an early bound-based decision).
            assert explanation.detected is not None
            assert explanation.detected.copying
            assert explanation.n_shared_values > 0
            with pytest.raises(ValueError):
                state.explain(s0, s0)

    def test_truth_of(self, world):
        with StreamEngine() as engine:
            engine.run_epoch(world)
            state = engine.state
            item = state.dataset.item_names.index("I00")
            value, probability = state.truth_of(item)
            assert state.dataset.value_label[value].startswith(("true-", "wrong-"))
            assert 0.0 < probability <= 1.0
            assert state.truth_of(10_000) is None


# ----------------------------------------------------------------------
# Lockstep parity: the acceptance criterion
# ----------------------------------------------------------------------


class TestLockstepParity:
    def test_replay_is_deterministic(self, epochs):
        a = replay_epochs(epochs)
        b = replay_epochs(epochs)
        for ra, rb in zip(a, b):
            assert ra.fusion.accuracies == rb.fusion.accuracies
            assert ra.fusion.chosen == rb.fusion.chosen
            assert (
                ra.fusion.final_detection().decisions
                == rb.fusion.final_detection().decisions
            )

    def test_cold_stream_equals_one_batch_incremental_run(self, world, epochs):
        """N streamed epochs == one batch INCREMENTAL run over the same deltas.

        With warm starts off, every epoch re-fuses the accumulated
        claims from the cold initial accuracy — so the final streamed
        epoch must be *exactly* (not approximately) the batch run.
        """
        cold = replay_epochs(epochs, warm_start=False)

        ledger = ClaimLedger()
        ledger.apply(world)
        params = CopyParams()
        batch = run_fusion(
            ledger.snapshot(),
            params,
            IncrementalDetector(params, prepare_round=1),
            FusionConfig(),
        )

        final = cold[-1].fusion
        assert final.accuracies == batch.accuracies
        assert final.probabilities == batch.probabilities
        assert final.chosen == batch.chosen
        assert (
            final.final_detection().decisions
            == batch.final_detection().decisions
        )

    def test_warm_stream_decisions_match_batch(self, world, epochs):
        """Warm starts change round counts, not converged conclusions."""
        warm = replay_epochs(epochs, warm_start=True)
        ledger = ClaimLedger()
        ledger.apply(world)
        params = CopyParams()
        batch = run_fusion(
            ledger.snapshot(),
            params,
            IncrementalDetector(params, prepare_round=1),
            FusionConfig(),
        )
        final = warm[-1].fusion
        assert final.chosen == batch.chosen
        for key, decision in batch.final_detection().decisions.items():
            streamed = final.final_detection().decisions[key]
            assert streamed.copying == decision.copying
        # Warm starts converge to the same fixed point, but from a
        # different trajectory — agreement is within the fusion loop's
        # convergence tolerance, not bit-exact (that is the cold run's
        # guarantee, asserted above).
        for a, b in zip(final.accuracies, batch.accuracies):
            assert a == pytest.approx(b, abs=1e-6)


# ----------------------------------------------------------------------
# StreamingService: micro-batching, debounce, drain
# ----------------------------------------------------------------------


def _service(tmp_path, **kwargs) -> StreamingService:
    defaults = dict(max_batch=10_000, max_delay=0.2, debounce=0.02)
    defaults.update(kwargs)
    return StreamingService(StreamEngine(store=tmp_path / "store"), **defaults)


class TestServiceValidation:
    def test_rejects_bad_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            StreamingService(StreamEngine(), max_batch=0)
        with pytest.raises(ValueError):
            StreamingService(StreamEngine(), max_delay=0.0)
        with pytest.raises(ValueError):
            StreamingService(StreamEngine(), debounce=-1.0)

    def test_debounce_capped_at_max_delay(self, tmp_path):
        service = StreamingService(
            StreamEngine(), max_delay=0.1, debounce=5.0
        )
        assert service.debounce == 0.1


class TestServiceEpochs:
    def test_debounce_coalesces_a_burst_into_one_epoch(self, tmp_path, world):
        """A bursty source re-sending within the debounce window yields
        one epoch whose batch kept first position and last value."""

        async def main():
            async with _service(tmp_path) as service:
                service.submit(world)
                # Re-send S0's first claim three times, last value wins.
                for value in ("true-0", "flip-a", "flip-b"):
                    service.submit([ClaimDelta("S0", "I00", value)])
                    await asyncio.sleep(0.001)
                await service.flush()
                return service.stats(), service.state

        stats, state = asyncio.run(main())
        assert stats["epochs_run"] == 1  # burst coalesced, one epoch
        assert stats["claims_received"] == len(world) + 3
        s0 = state.dataset.source_names.index("S0")
        i00 = state.dataset.item_names.index("I00")
        claimed = state.dataset.claim_of(s0, i00)
        assert state.dataset.value_label[claimed] == "flip-b"

    def test_deadline_flush_of_pure_confirmations_publishes_nothing(
        self, tmp_path, world
    ):
        """A deadline-triggered flush whose batch is a no-op (verbatim
        re-confirmations) runs no fusion and publishes no snapshot."""

        async def main():
            async with _service(tmp_path) as service:
                service.submit(world)
                await service.flush()
                after_first = service.stats()
                service.submit(world[:5])  # verbatim re-sends
                await service.flush()
                return after_first, service.stats()

        first, second = asyncio.run(main())
        assert first["epochs_run"] == 1
        assert second["epochs_run"] == 1
        assert second["epochs_skipped"] == 1
        assert second["snapshot_id"] == first["snapshot_id"] == 1
        assert VerdictStore(tmp_path / "store").current_id() == 1

    def test_size_trigger_flushes_immediately(self, tmp_path, world):
        async def main():
            # max_batch below the submission size, huge deadline: only
            # the size trigger can flush this fast.
            service = _service(
                tmp_path, max_batch=len(world), max_delay=30.0, debounce=30.0
            )
            async with service:
                service.submit(world)
                await asyncio.wait_for(service.flush(), timeout=5.0)
                return service.stats()

        stats = asyncio.run(main())
        assert stats["epochs_run"] >= 1
        assert stats["pending"] == 0

    def test_shutdown_drain_publishes_pending_mid_epoch(self, tmp_path, world):
        """Deltas still pending at stop(drain=True) land in a final
        published epoch — no accepted claim is dropped."""

        async def main():
            service = _service(tmp_path, max_delay=30.0, debounce=30.0)
            await service.start()
            service.submit(world)  # would sit for 30s without the drain
            await service.stop(drain=True)
            return service.stats()

        stats = asyncio.run(main())
        assert stats["epochs_run"] == 1
        assert stats["pending"] == 0
        assert stats["snapshot_id"] == 1
        assert VerdictStore(tmp_path / "store").current_id() == 1

    def test_shutdown_without_drain_discards_pending(self, tmp_path, world):
        async def main():
            service = _service(tmp_path, max_delay=30.0, debounce=30.0)
            await service.start()
            service.submit(world)
            await service.stop(drain=False)
            return service.stats()

        stats = asyncio.run(main())
        assert stats["epochs_run"] == 0
        assert stats["pending"] == 0
        assert stats["snapshot_id"] is None

    def test_subscribers_see_epoch_events_and_shutdown(self, tmp_path, world):
        async def main():
            service = _service(tmp_path)
            await service.start()
            queue = service.subscribe()
            service.submit(world)
            await service.flush()
            await service.stop()
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            return events

        events = asyncio.run(main())
        assert [e["type"] for e in events] == ["epoch", "shutdown"]
        assert events[0]["epoch"] == 1
        assert events[0]["snapshot_id"] == 1
        assert events[0]["changed_claims"] == len(world)

    def test_live_queries_before_first_epoch_raise(self, tmp_path):
        async def main():
            async with _service(tmp_path) as service:
                with pytest.raises(RuntimeError):
                    service.explain_pair(0, 1)
                return True

        assert asyncio.run(main())

    def test_reader_requires_a_store(self):
        async def main():
            async with StreamingService(StreamEngine()) as service:
                with pytest.raises(RuntimeError):
                    service.reader  # noqa: B018 - the access is the test
                return True

        assert asyncio.run(main())

    def test_live_service_lockstep_with_replay(self, tmp_path, world, epochs):
        """The acceptance parity: live async epochs == synchronous replay."""

        async def main():
            async with _service(tmp_path) as service:
                per_epoch = []
                for epoch in epochs:
                    service.submit(epoch)
                    await service.flush()
                    state = service.state
                    per_epoch.append(
                        (state.accuracies, state.chosen, state.detection)
                    )
                return per_epoch

        live = asyncio.run(main())
        replayed = replay_epochs([coalesce_deltas(e) for e in epochs])
        assert len(live) == len(replayed)
        for (accuracies, chosen, detection), result in zip(live, replayed):
            assert accuracies == tuple(result.fusion.accuracies)
            assert chosen == result.fusion.chosen
            assert (
                detection.decisions
                == result.fusion.final_detection().decisions
            )

    def test_live_queries_answer_from_freshest_snapshot(
        self, tmp_path, world
    ):
        async def main():
            async with _service(tmp_path) as service:
                service.submit(world)
                await service.flush()
                state = service.state
                names = state.dataset.source_names
                s0, c0 = names.index("S0"), names.index("C0")
                verdict = service.get_verdict(s0, c0)
                truth = service.get_truth("I00")
                explanation = service.explain_pair(s0, c0)
                return verdict, truth, explanation

        verdict, truth, explanation = asyncio.run(main())
        assert verdict is not None and verdict.copying
        assert verdict.snapshot_id == 1
        assert truth is not None and truth.snapshot_id == 1
        assert explanation.detected is not None
        assert explanation.detected.copying

    def test_unobserved_pair_explain_raises(self, tmp_path, world):
        async def main():
            async with _service(tmp_path) as service:
                service.submit(world)
                await service.flush()
                state = service.state
                names = state.dataset.source_names
                # Two honest independents with no shared scored values
                # may or may not be opened; force the unobserved case by
                # asking about a pair across disjoint item sets.
                service.submit(
                    [ClaimDelta("LONER", "ONLY-MINE", "solo-value")]
                )
                await service.flush()
                state = service.state
                loner = state.dataset.source_names.index("LONER")
                s0 = names.index("S0")
                with pytest.raises(PairNotObservedError):
                    service.explain_pair(s0, loner)
                return True

        assert asyncio.run(main())
