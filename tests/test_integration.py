"""Cross-module integration: full pipelines on profile-shaped worlds."""

import pytest

from repro.core import CopyParams
from repro.eval import pair_quality, run_method, quality_vs_reference
from repro.synth import make_profile


@pytest.fixture(scope="module")
def book_world():
    return make_profile("book_cs", scale=0.15, seed=21)


@pytest.fixture(scope="module")
def stock_world():
    return make_profile("stock_1day", scale=0.02, seed=23)


@pytest.fixture(scope="module")
def book_runs(book_world):
    params = CopyParams()
    methods = ["pairwise", "index", "hybrid", "incremental", "scalesample", "sample1"]
    return {m: run_method(m, book_world.dataset, params, seed=5) for m in methods}


@pytest.fixture(scope="module")
def stock_runs(stock_world):
    params = CopyParams()
    methods = ["pairwise", "index", "bound", "bound+", "hybrid", "incremental"]
    return {m: run_method(m, stock_world.dataset, params, seed=5) for m in methods}


class TestBookRegime:
    def test_index_identical_to_pairwise(self, book_runs):
        """Table VI: INDEX obtains exactly PAIRWISE's results."""
        assert (
            book_runs["index"].copying_pairs()
            == book_runs["pairwise"].copying_pairs()
        )

    def test_index_fewer_computations(self, book_runs):
        assert book_runs["index"].computations < book_runs["pairwise"].computations

    def test_hybrid_and_incremental_high_f(self, book_runs, book_world):
        ref = book_runs["pairwise"]
        for method in ("hybrid", "incremental"):
            q = quality_vs_reference(
                book_runs[method], ref, book_world.dataset, book_world.gold
            )
            assert q.copy_quality.f_measure >= 0.9, method

    def test_scalesample_beats_naive_sampling(self, book_runs):
        """Table IX's headline: the per-source floor rescues sampling on
        low-coverage data."""
        ref_pairs = book_runs["pairwise"].copying_pairs()
        scale_f = pair_quality(
            ref_pairs, book_runs["scalesample"].copying_pairs()
        ).f_measure
        naive_f = pair_quality(
            ref_pairs, book_runs["sample1"].copying_pairs()
        ).f_measure
        assert scale_f >= naive_f

    def test_fusion_quality_stable_across_methods(self, book_runs, book_world):
        ref = book_runs["pairwise"]
        for method in ("index", "hybrid", "incremental"):
            q = quality_vs_reference(
                book_runs[method], ref, book_world.dataset, book_world.gold
            )
            assert q.fusion_diff <= 0.05, method
            assert q.accuracy_var <= 0.05, method

    def test_most_planted_pairs_found(self, book_runs, book_world):
        planted = book_world.copy_pair_ids()
        found = book_runs["pairwise"].copying_pairs()
        assert len(found & planted) / len(planted) >= 0.5


class TestStockRegime:
    def test_all_methods_agree(self, stock_runs):
        """Dense data: every method reproduces PAIRWISE's verdicts."""
        reference = stock_runs["pairwise"].copying_pairs()
        for method, run in stock_runs.items():
            assert run.copying_pairs() == reference, method

    def test_bound_plus_cheaper_than_bound(self, stock_runs):
        assert (
            stock_runs["bound+"].computations < stock_runs["bound"].computations
        )

    def test_bounds_cheaper_than_index(self, stock_runs):
        """Dense pairs terminate early, so BOUND+ saves computations."""
        assert stock_runs["bound+"].computations < stock_runs["index"].computations

    def test_incremental_cheapest_iterative(self, stock_runs):
        assert (
            stock_runs["incremental"].computations
            < stock_runs["hybrid"].computations
        )

    def test_planted_pairs_found(self, stock_runs, stock_world):
        planted = stock_world.copy_pair_ids()
        found = stock_runs["pairwise"].copying_pairs()
        assert len(found & planted) / len(planted) >= 0.5


class TestPublicApi:
    def test_quickstart_snippet(self):
        """The README/package-docstring quickstart must run as written."""
        from repro import CopyParams, run_fusion, SingleRoundDetector
        from repro.synth import stock_1day

        world = stock_1day(scale=0.01)
        params = CopyParams()
        detector = SingleRoundDetector(params, method="hybrid")
        result = run_fusion(world.dataset, params, detector=detector)
        assert result.final_detection() is not None

    def test_version(self):
        import repro

        assert repro.__version__
