"""Test package marker.

Making ``tests`` a real package serves two purposes: pytest collects all
modules regardless of the current working directory, and the shared
hypothesis strategies in :mod:`tests.strategies` can be imported with a
package-safe absolute import (``from tests.strategies import worlds``)
instead of a relative import that breaks under rootdir-less invocation.
"""
