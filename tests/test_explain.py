"""Evidence explanations for pair verdicts."""

import pytest

from repro.core import detect_pairwise, explain_pair


class TestExplainPair:
    @pytest.fixture(scope="class")
    def s2_s3(self, example, example_probabilities, example_accuracies, params):
        ids = {name: i for i, name in enumerate(example.source_names)}
        return explain_pair(
            example,
            ids["S2"],
            ids["S3"],
            example_probabilities,
            example_accuracies,
            params,
        )

    def test_totals_match_pairwise(
        self, s2_s3, example, example_probabilities, example_accuracies, params
    ):
        pairwise = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        ids = {name: i for i, name in enumerate(example.source_names)}
        decision = pairwise.decision_for(ids["S2"], ids["S3"])
        assert s2_s3.c_fwd == pytest.approx(decision.c_fwd)
        assert s2_s3.c_bwd == pytest.approx(decision.c_bwd)
        assert s2_s3.copying == decision.copying

    def test_item_breakdown(self, s2_s3):
        assert s2_s3.n_shared_values == 4
        assert s2_s3.n_different == 1
        assert len(s2_s3.items) == 5

    def test_items_sum_to_totals(self, s2_s3):
        assert sum(ev.c_fwd for ev in s2_s3.items) == pytest.approx(s2_s3.c_fwd)
        assert sum(ev.c_bwd for ev in s2_s3.items) == pytest.approx(s2_s3.c_bwd)

    def test_strongest_evidence_first(self, s2_s3):
        scores = [ev.c_fwd for ev in s2_s3.items]
        assert scores == sorted(scores, reverse=True)
        top = s2_s3.top_evidence(1)[0]
        assert top.item == "NJ"  # sharing NJ.Atlantic (P=.01) leads

    def test_disagreement_recorded(self, s2_s3):
        diff = [ev for ev in s2_s3.items if not ev.shared]
        assert len(diff) == 1
        assert diff[0].item == "TX"
        assert diff[0].probability is None
        assert diff[0].c_fwd < 0

    def test_render_contains_verdict_and_items(self, s2_s3):
        text = s2_s3.render()
        assert "COPYING" in text
        assert "NJ" in text
        assert "Pr(independent)" in text

    def test_render_truncates(self, s2_s3):
        text = s2_s3.render(max_items=2)
        assert "and 3 more items" in text

    def test_self_pair_rejected(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            explain_pair(
                example, 1, 1, example_probabilities, example_accuracies, params
            )

    def test_out_of_range_rejected(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            explain_pair(
                example, 0, 99, example_probabilities, example_accuracies, params
            )

    def test_disjoint_pair_has_no_items(
        self, example, example_probabilities, example_accuracies, params
    ):
        """S9 (NJ, FL, TX) vs S6 (AZ, NY, FL, TX): they do share FL/TX...
        use a constructed disjoint pair instead."""
        from repro.data import DatasetBuilder

        b = DatasetBuilder()
        b.add("A", "D1", "x")
        b.add("B", "D2", "y")
        ds = b.build()
        explanation = explain_pair(ds, 0, 1, [0.5, 0.5], [0.8, 0.8], params)
        assert explanation.items == []
        assert not explanation.copying  # prior favours independence


class TestExplainAgainstResult:
    """explain_pair(..., result=) — the never-observed-pair bugfix.

    A pair a detection run never opened has no entry in ``decisions``
    (and, under a sparse ``pair_layout``, no allocated slot at all); a
    naive ``result.decisions[(s1, s2)]`` leaks a raw KeyError.  With the
    result passed to explain_pair, the lookup must either attach the
    stored verdict or raise the dedicated PairNotObservedError.
    """

    @pytest.fixture(scope="class", params=["dense", "sparse"])
    def detection(
        self, request, example, example_probabilities, example_accuracies
    ):
        from repro.core import CopyParams, detect

        params = CopyParams(backend="numpy", pair_layout=request.param)
        return params, detect(
            example,
            example_probabilities,
            example_accuracies,
            params,
            method="hybrid",
        )

    def _unobserved_pair(self, example, result):
        n = example.n_sources
        for s1 in range(n):
            for s2 in range(s1 + 1, n):
                if (s1, s2) not in result.decisions:
                    return s1, s2
        pytest.skip("every pair was opened on this world")

    def test_never_observed_pair_raises_clear_error(
        self, detection, example, example_probabilities, example_accuracies
    ):
        from repro.core import PairNotObservedError

        params, result = detection
        s1, s2 = self._unobserved_pair(example, result)
        with pytest.raises(PairNotObservedError, match="never observed") as err:
            explain_pair(
                example,
                s1,
                s2,
                example_probabilities,
                example_accuracies,
                params,
                result=result,
            )
        assert err.value.pair == (s1, s2)
        assert isinstance(err.value, LookupError)

    def test_observed_pair_attaches_detected_verdict(
        self, detection, example, example_probabilities, example_accuracies
    ):
        params, result = detection
        (s1, s2), decision = next(iter(result.decisions.items()))
        explanation = explain_pair(
            example,
            s1,
            s2,
            example_probabilities,
            example_accuracies,
            params,
            result=result,
        )
        assert explanation.detected == decision

    def test_without_result_stays_lenient(
        self, detection, example, example_probabilities, example_accuracies
    ):
        params, result = detection
        s1, s2 = self._unobserved_pair(example, result)
        explanation = explain_pair(
            example, s1, s2, example_probabilities, example_accuracies, params
        )
        assert explanation.detected is None


class TestCliExplain:
    def test_detect_explain_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data import motivating_example, save_claims

        path = tmp_path / "claims.csv"
        save_claims(motivating_example(), path)
        assert main(["detect", str(path), "--method", "index", "--explain", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pr(independent)" in out
