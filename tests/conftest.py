"""Shared fixtures and the centralized hypothesis profiles.

Hypothesis settings live here — not scattered per-module — so CI and
local runs stay deliberately different:

* ``dev`` (default) — the library defaults minus the deadline (the
  vectorized kernels' first-call numpy warm-up blows the 200 ms default
  on slow machines, and per-example timing is noise we never act on).
* ``ci`` — also caps ``max_examples`` below the library default: the
  suite runs on three Python versions per push, and the nightly
  conformance grid (thousands of seeded cases) carries the deep
  exploration budget instead.

Select with ``HYPOTHESIS_PROFILE=ci`` (the CI workflow exports it);
individual tests still override per-@settings where a specific budget
is part of the test's design.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core import CopyParams
from repro.data import (
    Dataset,
    motivating_accuracies,
    motivating_example,
    motivating_value_probabilities,
)

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, max_examples=60, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def params() -> CopyParams:
    """The paper's default parameters (alpha=.1, s=.8, n=50)."""
    return CopyParams()


@pytest.fixture(scope="session")
def example() -> Dataset:
    """The Table I motivating example."""
    return motivating_example()


@pytest.fixture(scope="session")
def example_accuracies(example: Dataset) -> list[float]:
    return motivating_accuracies(example)


@pytest.fixture(scope="session")
def example_probabilities(example: Dataset) -> list[float]:
    return motivating_value_probabilities(example)
