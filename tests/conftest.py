"""Shared fixtures: the motivating example and default parameters."""

from __future__ import annotations

import pytest

from repro.core import CopyParams
from repro.data import (
    Dataset,
    motivating_accuracies,
    motivating_example,
    motivating_value_probabilities,
)


@pytest.fixture(scope="session")
def params() -> CopyParams:
    """The paper's default parameters (alpha=.1, s=.8, n=50)."""
    return CopyParams()


@pytest.fixture(scope="session")
def example() -> Dataset:
    """The Table I motivating example."""
    return motivating_example()


@pytest.fixture(scope="session")
def example_accuracies(example: Dataset) -> list[float]:
    return motivating_accuracies(example)


@pytest.fixture(scope="session")
def example_probabilities(example: Dataset) -> list[float]:
    return motivating_value_probabilities(example)
