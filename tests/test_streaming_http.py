"""HTTP/SSE wire layer and the ``serve`` CLI subcommand.

The server runs on the test's own event loop; the blocking
:class:`StreamClient` is driven through ``asyncio.to_thread`` so its
socket calls never stall the loop serving them.  The CLI test runs
``repro-copydetect serve`` as a real subprocess and exercises the
graceful SIGINT drain.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.streaming import (
    StreamClient,
    StreamClientError,
    StreamEngine,
    StreamingServer,
    StreamingService,
)

from tests.test_streaming import make_world

REPO = Path(__file__).resolve().parent.parent


def run_with_server(tmp_path, scenario, **service_kwargs):
    """Start a server on a free port, run ``await scenario(client)``, stop."""
    defaults = dict(max_batch=10_000, max_delay=0.2, debounce=0.02)
    defaults.update(service_kwargs)

    async def main():
        engine = StreamEngine(store=tmp_path / "store")
        service = StreamingService(engine, **defaults)
        server = StreamingServer(service, port=0)
        await server.start()
        try:
            client = StreamClient(port=server.port, timeout=15.0)
            return await scenario(client, service, server)
        finally:
            await server.stop(drain=True)

    return asyncio.run(main())


def in_thread(fn, *args, **kwargs):
    """Run a blocking client call off the event loop."""
    return asyncio.to_thread(fn, *args, **kwargs)


class TestHttpRoundTrip:
    def test_post_claims_then_query_everything(self, tmp_path):
        world = make_world()

        async def scenario(client, service, server):
            reply = await in_thread(
                client.post_claims, [d.to_json() for d in world]
            )
            assert reply["accepted"] == len(world)
            await service.flush()

            stats = await in_thread(client.stats)
            names = service.state.dataset.source_names
            s0, c0 = names.index("S0"), names.index("C0")

            verdict = await in_thread(client.get_verdict, s0, c0)
            truth = await in_thread(client.get_truth, "I00")
            explanation = await in_thread(client.explain_pair, s0, c0)
            missing = await in_thread(client.get_verdict, s0, names.index("S1"))
            return stats, verdict, truth, explanation, missing

        stats, verdict, truth, explanation, missing = run_with_server(
            tmp_path, scenario
        )
        assert stats["epochs_run"] == 1
        assert stats["snapshot_id"] == 1
        assert verdict is not None
        assert verdict["copying"] is True
        assert verdict["snapshot_id"] == 1
        assert truth["item_name"] == "I00"
        assert truth["value_label"]
        assert truth["snapshot_id"] == 1
        assert explanation["observed"] is True
        assert explanation["top_evidence"]
        # An independent pair the detector closed early may still be
        # served (verdict dict) or never observed (None) — both are
        # valid 200 replies, never an error.
        assert missing is None or missing["copying"] is False

    def test_unobserved_pair_is_an_answer_not_an_error(self, tmp_path):
        world = make_world()

        async def scenario(client, service, server):
            await in_thread(client.post_claims, world)
            await service.flush()
            await in_thread(
                client.post_claims,
                [{"source": "LONER", "item": "ONLY-MINE", "value": "solo"}],
            )
            await service.flush()
            names = service.state.dataset.source_names
            return await in_thread(
                client.explain_pair,
                names.index("S0"),
                names.index("LONER"),
            )

        explanation = run_with_server(tmp_path, scenario)
        assert explanation["observed"] is False
        assert "detail" in explanation

    def test_sse_events_carry_epochs_and_shutdown(self, tmp_path):
        world = make_world()

        async def scenario(client, service, server):
            events: list[dict] = []

            def consume():
                for event in client.events():
                    events.append(event)

            consumer = asyncio.create_task(in_thread(consume))
            await asyncio.sleep(0.05)  # let the subscription attach
            await in_thread(client.post_claims, world)
            await service.flush()
            await server.stop(drain=True)
            # EOF may beat the shutdown frame; the generator must end
            # cleanly either way.
            await asyncio.wait_for(consumer, timeout=10.0)
            return events

        events = run_with_server(tmp_path, scenario)
        assert events[0]["event"] == "hello"
        epoch_events = [e for e in events if e["event"] == "epoch"]
        assert len(epoch_events) == 1
        assert epoch_events[0]["epoch"] == 1
        assert epoch_events[0]["snapshot_id"] == 1
        assert epoch_events[0]["converged"] in (True, False)


class TestHttpErrors:
    def test_queries_before_first_epoch_conflict(self, tmp_path):
        async def scenario(client, service, server):
            statuses = {}
            for name, call in [
                ("verdict", lambda: client.get_verdict(0, 1)),
                ("truth", lambda: client.get_truth("I00")),
                ("explain", lambda: client.explain_pair(0, 1)),
            ]:
                try:
                    await in_thread(call)
                except StreamClientError as exc:
                    statuses[name] = exc.status
            return statuses

        statuses = run_with_server(tmp_path, scenario)
        assert statuses == {"verdict": 409, "truth": 409, "explain": 409}

    @pytest.mark.parametrize(
        "path, expected",
        [
            ("/verdict", 400),  # missing s1/s2
            ("/verdict?s1=x&s2=1", 400),  # non-integer
            ("/truth", 400),  # missing item
            ("/nope", 404),
            ("/verdict?s1=0&s2=1", 409),  # well-formed but too early
        ],
    )
    def test_get_error_statuses(self, tmp_path, path, expected):
        async def scenario(client, service, server):
            try:
                await in_thread(client._request, "GET", path)
            except StreamClientError as exc:
                return exc.status
            return 200

        assert run_with_server(tmp_path, scenario) == expected

    def test_wrong_methods_are_405(self, tmp_path):
        async def scenario(client, service, server):
            statuses = []
            for method, path in [("GET", "/claims"), ("POST", "/stats")]:
                try:
                    await in_thread(client._request, method, path, b"{}")
                except StreamClientError as exc:
                    statuses.append(exc.status)
            return statuses

        assert run_with_server(tmp_path, scenario) == [405, 405]

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b'{"claims": 7}',
            b'{"claims": [{"source": "S0"}]}',
            b'{"claims": [{"source": "S0", "item": "I", "value": 3}]}',
        ],
    )
    def test_malformed_claim_posts_are_400(self, tmp_path, body):
        async def scenario(client, service, server):
            try:
                await in_thread(client._request, "POST", "/claims", body)
            except StreamClientError as exc:
                return exc.status
            return 202

        assert run_with_server(tmp_path, scenario) == 400

    def test_bare_list_body_is_accepted(self, tmp_path):
        async def scenario(client, service, server):
            body = json.dumps(
                [{"source": "S0", "item": "NJ", "value": "Trenton"}]
            ).encode()
            reply = await in_thread(client._request, "POST", "/claims", body)
            await service.flush()
            return reply

        reply = run_with_server(tmp_path, scenario)
        assert reply["accepted"] == 1


class TestServeCli:
    """``repro-copydetect serve`` as a real process, SIGINT drain included."""

    @pytest.fixture()
    def server_process(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env["PYTHONUNBUFFERED"] = "1"
        store = tmp_path / "verdicts"
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "serve",
                "--port",
                "0",
                "--store",
                str(store),
                "--max-delay",
                "0.2",
                "--debounce",
                "0.02",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "streaming service on http://" in banner, banner
            port = int(banner.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
            yield process, port, store
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_serve_accepts_claims_and_drains_on_sigint(self, server_process):
        process, port, store = server_process
        world = make_world()
        body = json.dumps({"claims": [d.to_json() for d in world]}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/claims",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=15) as reply:
            assert reply.status == 202

        # Wait for the epoch to publish, then query through the wire.
        deadline = time.monotonic() + 15
        stats = {}
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/stats", timeout=15
            ) as reply:
                stats = json.loads(reply.read())
            if stats.get("epochs_run", 0) >= 1:
                break
            time.sleep(0.05)
        assert stats["epochs_run"] >= 1
        assert stats["snapshot_id"] == 1

        process.send_signal(signal.SIGINT)
        out, _ = process.communicate(timeout=30)
        assert process.returncode == 0, out
        assert "drained" in out
        assert (store / "CURRENT").exists()
        assert any(store.glob("snap-*.rvs"))
