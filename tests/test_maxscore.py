"""Proposition 3.1: entry max-scores from extreme provider accuracies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CopyParams, max_score, max_score_bruteforce
from tests.strategies import accuracies, probabilities


class TestKnownValues:
    """Scores of Table III (Example 3.3)."""

    @pytest.mark.parametrize(
        "p_true, provider_accuracies, expected",
        [
            (0.01, [0.2, 0.2, 0.4], 4.12),  # NJ.Atlantic from (S4, S3)
            (0.02, [0.6, 0.01], 4.59),  # AZ.Tempe (S5, S6)
            (0.02, [0.2, 0.4], 4.05),  # TX.Houston (S2, S4)
            (0.03, [0.2, 0.2], 3.83),  # FL.Miami (S2, S3)
            (0.97, [0.99, 0.99, 0.25, 0.2, 0.99], 1.51),  # NJ.Trenton
        ],
    )
    def test_table_iii(self, params, p_true, provider_accuracies, expected):
        assert max_score(p_true, provider_accuracies, params) == pytest.approx(
            expected, abs=0.02
        )


class TestProposition31:
    @given(
        p=probabilities,
        accs=st.lists(accuracies, min_size=2, max_size=8),
    )
    def test_matches_bruteforce(self, p, accs):
        """The extreme-accuracy shortcut equals the O(k^2) maximum."""
        params = CopyParams()
        fast = max_score(p, accs, params)
        slow = max_score_bruteforce(p, accs, params)
        assert fast == pytest.approx(slow, rel=1e-12, abs=1e-12)

    @given(p=probabilities, accs=st.lists(accuracies, min_size=2, max_size=6))
    def test_upper_bounds_every_pair(self, p, accs):
        """M-hat dominates the contribution of every ordered provider pair."""
        from repro.core import same_value_score

        params = CopyParams()
        bound = max_score(p, accs, params)
        for i, a1 in enumerate(accs):
            for j, a2 in enumerate(accs):
                if i != j:
                    assert same_value_score(p, a1, a2, params) <= bound + 1e-12


class TestValidation:
    def test_single_provider_rejected(self, params):
        with pytest.raises(ValueError):
            max_score(0.5, [0.9], params)
        with pytest.raises(ValueError):
            max_score_bruteforce(0.5, [0.9], params)

    def test_two_equal_providers(self, params):
        """Degenerate extremes (all accuracies equal) still work."""
        score = max_score(0.1, [0.5, 0.5], params)
        assert score == pytest.approx(max_score_bruteforce(0.1, [0.5, 0.5], params))
