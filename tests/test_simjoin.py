"""Set-overlap counting and the prefix-filter join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simjoin import (
    count_shared_items,
    count_shared_values,
    overlap_join,
)
from tests.strategies import datasets


def _bruteforce_shared_items(ds):
    counts = {}
    for s1 in range(ds.n_sources):
        for s2 in range(s1 + 1, ds.n_sources):
            shared = len(set(ds.claims[s1]) & set(ds.claims[s2]))
            if shared:
                counts[(s1, s2)] = shared
    return counts


def _bruteforce_shared_values(ds):
    counts = {}
    for s1 in range(ds.n_sources):
        for s2 in range(s1 + 1, ds.n_sources):
            shared = sum(
                1
                for item, value in ds.claims[s1].items()
                if ds.claims[s2].get(item) == value
            )
            if shared:
                counts[(s1, s2)] = shared
    return counts


class TestSharedCounts:
    @given(ds=datasets())
    @settings(max_examples=60, deadline=None)
    def test_items_match_bruteforce(self, ds):
        assert count_shared_items(ds) == _bruteforce_shared_items(ds)

    @given(ds=datasets())
    @settings(max_examples=60, deadline=None)
    def test_values_match_bruteforce(self, ds):
        assert count_shared_values(ds) == _bruteforce_shared_values(ds)

    def test_motivating_example_counts(self, example):
        counts = count_shared_items(example)
        assert sum(counts.values()) == 181  # see test_pairwise notes

    @given(ds=datasets())
    @settings(max_examples=40, deadline=None)
    def test_values_never_exceed_items(self, ds):
        items = count_shared_items(ds)
        values = count_shared_values(ds)
        for pair, count in values.items():
            assert count <= items[pair]


class TestOverlapJoin:
    def test_simple(self):
        sets = [[1, 2, 3], [2, 3, 4], [9]]
        result = overlap_join(sets, threshold=2)
        assert result == {(0, 1): 2}

    def test_threshold_one_equals_any_overlap(self):
        sets = [[1], [1], [2]]
        result = overlap_join(sets, threshold=1)
        assert result == {(0, 1): 1}

    def test_mapping_input(self):
        result = overlap_join({"a": [1, 2], "b": [2, 3]}, threshold=1)
        assert result == {("a", "b"): 1}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            overlap_join([[1]], threshold=0)

    @given(
        sets=st.lists(
            st.lists(st.integers(min_value=0, max_value=20), max_size=15),
            min_size=2,
            max_size=8,
        ),
        threshold=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, sets, threshold):
        expected = {}
        normalized = [set(s) for s in sets]
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                overlap = len(normalized[i] & normalized[j])
                if overlap >= threshold:
                    expected[(i, j)] = overlap
        assert overlap_join(sets, threshold) == expected
