"""Every example script must run cleanly (small scales where supported)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

#: (script, extra argv) — scales dialed down to keep CI fast.
CASES = [
    ("quickstart.py", []),
    ("book_aggregator.py", ["0.1"]),
    ("stock_feeds.py", ["0.01"]),
    ("structured_vs_text.py", []),
    ("customer_dedupe.py", []),
    ("parallel_detection.py", []),
]


@pytest.mark.parametrize("script, argv", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, argv):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_scaling_sweep_importable():
    """scaling_sweep takes minutes at default sizes; import-check only."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "scaling_sweep", EXAMPLES / "scaling_sweep.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # runs module body (defs only)
    assert callable(module.main)
