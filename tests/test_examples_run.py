"""Every example script must run cleanly (small scales where supported)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
SRC = Path(__file__).parent.parent / "src"


def _env_with_src() -> dict[str, str]:
    """Child-process env with ``src`` on PYTHONPATH.

    pytest's own ``pythonpath`` ini option only patches this process's
    ``sys.path``; the example scripts run in fresh interpreters and must
    find ``repro`` regardless of how pytest was invoked.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return env

#: (script, extra argv) — scales dialed down to keep CI fast.
CASES = [
    ("quickstart.py", []),
    ("book_aggregator.py", ["0.1"]),
    ("stock_feeds.py", ["0.01"]),
    ("structured_vs_text.py", []),
    ("customer_dedupe.py", []),
    ("parallel_detection.py", []),
    # The ROADMAP's backend-flip soak: INCREMENTAL multi-round fusion
    # under backend="numpy" must reproduce the python reference on a
    # REAL-profile (zipf-coverage) world — the script itself asserts it.
    ("incremental_soak.py", ["0.08"]),
    # The streaming stack end to end (service, epochs, queries) plus
    # the live-vs-replay lockstep parity check the script asserts.
    ("streaming_quickstart.py", []),
]


@pytest.mark.parametrize("script, argv", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, argv):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=180,
        env=_env_with_src(),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_scaling_sweep_importable():
    """scaling_sweep takes minutes at default sizes; import-check only."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "scaling_sweep", EXAMPLES / "scaling_sweep.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # runs module body (defs only)
    assert callable(module.main)
