"""Sampling strategies: budgets, the SCALESAMPLE floor, determinism."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    sample_by_cell,
    sample_by_item,
    sampled_cell_fraction,
    scale_sample,
)
from tests.strategies import datasets


class TestByItem:
    def test_fraction_of_items(self, example):
        items = sample_by_item(example, 0.4, random.Random(0))
        assert len(items) == 2  # 40% of 5 items

    def test_full_fraction_returns_all(self, example):
        items = sample_by_item(example, 1.0, random.Random(0))
        assert len(items) == example.n_items

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction(self, example, fraction):
        with pytest.raises(ValueError):
            sample_by_item(example, fraction, random.Random(0))

    def test_deterministic_under_seed(self, example):
        a = sample_by_item(example, 0.5, random.Random(7))
        b = sample_by_item(example, 0.5, random.Random(7))
        assert a == b


class TestByCell:
    def test_meets_cell_budget(self, example):
        rng = random.Random(0)
        items = sample_by_cell(example, 0.5, rng)
        assert sampled_cell_fraction(example, items) >= 0.5

    def test_small_budget_samples_few(self, example):
        items = sample_by_cell(example, 0.05, random.Random(0))
        assert 1 <= len(items) <= 2

    @given(ds=datasets(), fraction=st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_budget_always_met(self, ds, fraction):
        if not any(ds.claims):
            return
        items = sample_by_cell(ds, fraction, random.Random(1))
        assert sampled_cell_fraction(ds, items) >= fraction - 1e-9


class TestScaleSample:
    @given(ds=datasets(), fraction=st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_floor_property(self, ds, fraction):
        """Every source keeps min(N, |claims|) of its items — the paper's
        key guarantee (Section VI-E)."""
        items = set(scale_sample(ds, fraction, random.Random(3), min_items_per_source=4))
        for claim in ds.claims:
            kept = sum(1 for item in claim if item in items)
            assert kept >= min(4, len(claim))

    def test_superset_effect_on_skewed_data(self):
        """On low-coverage data the realised rate exceeds the nominal one
        (the paper: 49% realised from 10% nominal on Book-CS)."""
        from repro.synth import book_cs

        world = book_cs(scale=0.2)
        ds = world.dataset
        nominal = 0.1
        items = scale_sample(ds, nominal, random.Random(0))
        realised = len(items) / ds.n_items
        assert realised > nominal

    def test_zero_floor_equals_by_item_size(self, example):
        rng = random.Random(5)
        items = scale_sample(example, 0.4, rng, min_items_per_source=0)
        assert len(items) == 2

    def test_negative_floor_rejected(self, example):
        with pytest.raises(ValueError):
            scale_sample(example, 0.5, random.Random(0), min_items_per_source=-1)


class TestCellFraction:
    def test_all_items_is_one(self, example):
        assert sampled_cell_fraction(example, list(range(example.n_items))) == 1.0

    def test_no_items_is_zero(self, example):
        assert sampled_cell_fraction(example, []) == 0.0
