"""Cross-cutting robustness properties: orderings under bounds, unicode
round trips, incremental re-opening, statistical accuracy recovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CopyParams,
    EntryOrdering,
    InvertedIndex,
    detect_bound_plus,
    detect_pairwise,
    incremental_round,
    prepare_incremental,
)
from repro.data import DatasetBuilder, load_claims, save_claims
from tests.strategies import worlds


class TestBoundsUnderAnyOrdering:
    """The suffix-max M keeps Eq. 10 sound for RANDOM and BY_PROVIDER
    orderings too — early copy conclusions must stay correct."""

    @settings(max_examples=30, deadline=None)
    @given(world=worlds(), seed=st.integers(min_value=0, max_value=100))
    def test_random_ordering_copy_conclusions_sound(self, world, seed):
        dataset, probs, accs = world
        params = CopyParams()
        reference = detect_pairwise(dataset, probs, accs, params)
        index = InvertedIndex.build(
            dataset,
            probs,
            accs,
            params,
            ordering=EntryOrdering.RANDOM,
            rng=random.Random(seed),
        )
        result = detect_bound_plus(dataset, probs, accs, params, index=index)
        for pair, decision in result.decisions.items():
            if decision.copying and decision.early:
                exact = reference.decision_for(*pair)
                assert exact is not None and exact.copying

    @settings(max_examples=30, deadline=None)
    @given(world=worlds())
    def test_by_provider_ordering_matches_pairwise(self, world):
        """Copy conclusions and exact resolutions match PAIRWISE.

        Early *no-copy* conclusions are exempt: they rest on Eq. (10)'s
        C^max with the paper's estimated future-share count ``h`` — an
        approximation by design ("may introduce errors", Section IV) —
        and under non-BY_CONTRIBUTION orderings the estimate can
        misjudge a pair whose evidence arrives late (hypothesis finds
        3-source worlds doing exactly that).  What *is* guaranteed, and
        asserted here: early copying verdicts are C^min-sound, and every
        pair resolved without an early stop scores identically to the
        exhaustive reference.
        """
        dataset, probs, accs = world
        params = CopyParams()
        reference = detect_pairwise(dataset, probs, accs, params)
        index = InvertedIndex.build(
            dataset, probs, accs, params, ordering=EntryOrdering.BY_PROVIDER
        )
        result = detect_bound_plus(dataset, probs, accs, params, index=index)
        for pair, decision in result.decisions.items():
            exact = reference.decision_for(*pair)
            if decision.early:
                if decision.copying:
                    assert exact is not None and exact.copying
            else:
                assert exact is not None
                assert decision.copying == exact.copying
                assert decision.c_fwd == pytest.approx(exact.c_fwd, abs=1e-9)


class TestUnicodeRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        value=st.text(
            min_size=1,
            max_size=30,
            alphabet=st.characters(
                blacklist_categories=("Cs",), blacklist_characters="\r\n\x00"
            ),
        )
    )
    def test_arbitrary_values_survive_csv(self, tmp_path_factory, value):
        b = DatasetBuilder()
        b.add("S0", "item", value)
        b.add("S1", "item", value)
        ds = b.build()
        path = tmp_path_factory.mktemp("rt") / "claims.csv"
        save_claims(ds, path)
        loaded = load_claims(path)
        assert loaded.value_label[0] == value
        assert loaded.n_values == 1


class TestIncrementalReopening:
    def test_big_swing_reopens_tail_pair(self, params):
        """A pair whose only shared value sat in the tail must be opened
        once that value's probability collapses."""
        b = DatasetBuilder()
        b.add("A", "D", "v")
        b.add("B", "D", "v")
        ds = b.build()
        _, state = prepare_incremental(ds, [0.5], [0.5, 0.5], params)
        assert state.pairs == {}  # tail-only, skipped at prep
        result = incremental_round(state, [0.05], [0.5, 0.5], params)
        assert state.history[-1].reopened_pairs == 1
        assert result.decision_for(0, 1).copying

    def test_hopeless_tail_pairs_stay_closed(self, params):
        """Pairs whose disagreement penalty dooms them are never booked,
        even when the tail's total mass crosses theta_ind."""
        b = DatasetBuilder()
        # A and B share one value but disagree on four other items.
        b.add("A", "D0", "v")
        b.add("B", "D0", "v")
        for i in range(1, 5):
            b.add("A", f"D{i}", f"a{i}")
            b.add("B", f"D{i}", f"b{i}")
        ds = b.build()
        probs = [0.5] * ds.n_values
        _, state = prepare_incremental(ds, probs, [0.5, 0.5], params)
        if state.pairs:
            pytest.skip("pair opened at prep; tail scenario not realised")
        new_probs = [0.1] + [0.5] * (ds.n_values - 1)
        incremental_round(state, new_probs, [0.5, 0.5], params)
        # Potential = one entry's score; penalty = 4 * ln(.2) ~ -6.4, so
        # the ceiling stays below theta_ind and the pair stays closed.
        assert state.history[-1].reopened_pairs == 0


class TestAccuracyRecovery:
    def test_fusion_estimates_track_true_accuracies(self, params):
        """On a dense synthetic world the learned accuracies must
        correlate strongly with the generator's realised accuracies."""
        from repro.core import SingleRoundDetector
        from repro.fusion import run_fusion
        from repro.synth import stock_1day

        world = stock_1day(scale=0.02, seed=19)
        ds = world.dataset
        result = run_fusion(
            ds, params, detector=SingleRoundDetector(params, method="hybrid")
        )
        errors = []
        for source_id, name in enumerate(ds.source_names):
            truth = world.true_accuracies[name]
            errors.append(abs(result.accuracies[source_id] - truth))
        assert sum(errors) / len(errors) < 0.1
