"""Dataset model: interning, derived structures, projection, statistics."""

import pytest
from hypothesis import given

from repro.data import Dataset, DatasetBuilder
from tests.strategies import datasets


class TestBuilder:
    def test_empty_builder(self):
        ds = DatasetBuilder().build()
        assert ds.n_sources == 0
        assert ds.n_items == 0
        assert ds.n_values == 0

    def test_value_interning_shared(self):
        b = DatasetBuilder()
        b.add("S0", "NJ", "Trenton")
        b.add("S1", "NJ", "Trenton")
        ds = b.build()
        assert ds.n_values == 1
        assert ds.providers[0] == [0, 1]

    def test_same_label_different_items_distinct(self):
        b = DatasetBuilder()
        b.add("S0", "NJ", "Springfield")
        b.add("S0", "IL", "Springfield")
        ds = b.build()
        assert ds.n_values == 2

    def test_last_writer_wins(self):
        b = DatasetBuilder()
        b.add("S0", "NJ", "Trenton")
        b.add("S0", "NJ", "Newark")
        ds = b.build()
        assert len(ds.claims[0]) == 1
        assert ds.value_label[ds.claims[0][0]] == "Newark"

    def test_ensure_source_without_claims(self):
        b = DatasetBuilder()
        b.ensure_source("empty")
        b.add("S1", "A", "x")
        ds = b.build()
        assert ds.n_sources == 2
        assert ds.claims[0] == {}

    def test_claim_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(
                source_names=["S0", "S1"],
                item_names=["A"],
                claims=[{0: 0}],
                value_item=[0],
                value_label=["x"],
            )


class TestDerived:
    def test_items_per_source(self, example):
        by_name = dict(zip(example.source_names, example.items_per_source))
        assert by_name["S0"] == 4  # S0 misses FL
        assert by_name["S1"] == 5
        assert by_name["S9"] == 3

    def test_providers_disjoint_per_item(self, example):
        """A source appears in at most one value per item (Definition 3.2)."""
        for item_id in range(example.n_items):
            seen: set[int] = set()
            for value_id in example.values_of_item(item_id):
                for source in example.providers[value_id]:
                    assert source not in seen
                    seen.add(source)

    @given(ds=datasets())
    def test_providers_match_claims(self, ds):
        for value_id, providers in enumerate(ds.providers):
            item_id = ds.value_item[value_id]
            for source in providers:
                assert ds.claims[source][item_id] == value_id

    @given(ds=datasets())
    def test_iter_claims_complete(self, ds):
        triples = list(ds.iter_claims())
        assert len(triples) == sum(len(c) for c in ds.claims)
        for source, item, value in triples:
            assert ds.claims[source][item] == value

    def test_item_value_table(self, example):
        table = example.item_value_table()
        nj = example.item_names.index("NJ")
        labels = {example.value_label[v] for v in table[nj]}
        assert labels == {"Trenton", "Atlantic", "Union"}


class TestStats:
    def test_motivating_example(self, example):
        stats = example.stats()
        assert stats.n_sources == 10
        assert stats.n_items == 5
        assert stats.n_distinct_values == 16
        assert stats.n_index_entries == 13  # Table III has 13 entries
        assert stats.n_claims == 45

    @given(ds=datasets())
    def test_index_entries_at_most_values(self, ds):
        stats = ds.stats()
        assert 0 <= stats.n_index_entries <= stats.n_distinct_values


class TestProjection:
    def test_keeps_source_alignment(self, example):
        nj = example.item_names.index("NJ")
        projected = example.project_items([nj])
        assert projected.source_names == example.source_names
        # S6 provides nothing for NJ
        s6 = projected.source_names.index("S6")
        assert projected.claims[s6] == {}

    def test_projected_claims_match(self, example):
        nj = example.item_names.index("NJ")
        projected = example.project_items([nj])
        s0 = projected.source_names.index("S0")
        (item_id, value_id), = projected.claims[s0].items()
        assert projected.item_names[item_id] == "NJ"
        assert projected.value_label[value_id] == "Trenton"

    @given(ds=datasets())
    def test_projection_to_all_items_preserves_claims(self, ds):
        projected = ds.project_items(range(ds.n_items))
        assert sum(len(c) for c in projected.claims) == sum(
            len(c) for c in ds.claims
        )

    @given(ds=datasets())
    def test_projection_to_nothing(self, ds):
        projected = ds.project_items([])
        assert all(not claim for claim in projected.claims)
