"""The sparse pair-state layer (PR 6).

Three groups of pins:

* the :mod:`repro.core.pairspace` primitives themselves — key codec,
  layout resolution (and its warning), slot universes, keyed reduction,
  the directed-pair value map — including the degenerate shapes (empty
  worlds, a single observed pair, duplicate incidences);
* int64 key discipline: ``s1 * n_sources + s2`` must never wrap, pinned
  end-to-end at ``n_sources > 2**16`` where the key exceeds int32;
* dense/sparse parity: forcing ``pair_layout`` must not change any
  verdict — bit-exactly for the bound family, within the property-tested
  1e-9 re-association tolerance for the exhaustive/index kernels and
  the ACCUCOPY fusion round.
"""

import logging
import random

import numpy as np
import pytest

from repro.conformance.generators import (
    RandomChooser,
    large_sparse_world,
    random_world,
)
from repro.core import METHODS, CopyParams, IncrementalDetector, detect
from repro.core.pairspace import (
    PairSpace,
    PairValueMap,
    decode_pair_keys,
    encode_pair_keys,
    reduce_by_key,
    resolve_pair_layout,
)
from repro.data import DatasetBuilder

NUMERIC_TOL = 1e-9

#: Methods whose sparse run must equal the dense run bit-for-bit: their
#: scans fold contributions in entry-stream order in both layouts.
BITEXACT_METHODS = ("bound", "bound+", "hybrid")


def sparse_problem(seed: int, n_sources: int = 30, n_items: int = 12):
    """A deterministic downsized Zipf-coverage world."""
    world = large_sparse_world(
        RandomChooser(random.Random(seed)),
        n_sources=n_sources,
        n_items=n_items,
    )
    return world.materialize()


# ----------------------------------------------------------------------
# Key codec
# ----------------------------------------------------------------------
class TestKeyCodec:
    def test_round_trip(self):
        s1 = np.array([0, 1, 3, 7])
        s2 = np.array([1, 2, 5, 8])
        keys = encode_pair_keys(s1, s2, 9)
        assert keys.dtype == np.int64
        d1, d2 = decode_pair_keys(keys, 9)
        np.testing.assert_array_equal(d1, s1)
        np.testing.assert_array_equal(d2, s2)

    def test_keys_stay_int64_beyond_two_pow_sixteen_sources(self):
        # At 70k sources the largest key is ~4.9e9 > 2**32: an int32
        # product would wrap.  The codec must widen whatever it is fed.
        n = 70_000
        s1 = np.array([0, 1, n - 2], dtype=np.int32)
        s2 = np.array([1, 2, n - 1], dtype=np.int32)
        keys = encode_pair_keys(s1, s2, n)
        assert keys.dtype == np.int64
        assert keys[-1] == (n - 2) * n + (n - 1)
        assert keys[-1] > 2**32
        d1, d2 = decode_pair_keys(keys, n)
        np.testing.assert_array_equal(d1, s1.astype(np.int64))
        np.testing.assert_array_equal(d2, s2.astype(np.int64))

    def test_python_int_inputs(self):
        keys = encode_pair_keys([2], [3], 5)
        assert keys.dtype == np.int64
        assert keys[0] == 13


# ----------------------------------------------------------------------
# Layout resolution
# ----------------------------------------------------------------------
class TestResolvePairLayout:
    def test_explicit_layouts_honoured_unconditionally(self):
        assert resolve_pair_layout("dense", 10**6, 4, "k") == "dense"
        assert resolve_pair_layout("sparse", 2, 4**9, "k") == "sparse"

    def test_auto_dense_below_limit(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.core.pairspace"):
            assert resolve_pair_layout("auto", 10, 100, "k") == "dense"
        assert not caplog.records

    def test_auto_sparse_above_limit_warns(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.core.pairspace"):
            layout = resolve_pair_layout("auto", 11, 100, "some.kernel")
        assert layout == "sparse"
        [record] = caplog.records
        assert "some.kernel" in record.getMessage()
        assert "121" in record.getMessage()
        assert "sparse" in record.getMessage()

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="pair_layout"):
            resolve_pair_layout("columnar", 10, 100, "k")

    def test_params_reject_unknown_layout(self):
        with pytest.raises(ValueError, match="pair_layout"):
            CopyParams(pair_layout="columnar")


# ----------------------------------------------------------------------
# PairSpace
# ----------------------------------------------------------------------
class TestPairSpace:
    def test_dense_identity(self):
        space = PairSpace.dense(4)
        assert len(space) == 16
        keys = np.array([3, 7, 11])
        np.testing.assert_array_equal(space.slots(keys), keys)
        np.testing.assert_array_equal(space.slot_keys(keys), keys)
        s1, s2 = space.decode(np.array([7]))
        assert (s1[0], s2[0]) == (1, 3)

    def test_sparse_collapses_duplicates_and_sorts(self):
        space = PairSpace.from_keys(6, np.array([13, 7, 13, 31, 7]))
        assert space.layout == "sparse"
        np.testing.assert_array_equal(space.keys, [7, 13, 31])
        assert len(space) == 3
        np.testing.assert_array_equal(
            space.slots(np.array([7, 31, 13, 13])), [0, 2, 1, 1]
        )
        np.testing.assert_array_equal(
            space.slot_keys(np.array([2, 0])), [31, 7]
        )

    def test_from_pairs_matches_from_keys(self):
        pairs = [(1, 3), (0, 2), (1, 3)]
        a = PairSpace.from_pairs(5, pairs)
        b = PairSpace.from_keys(5, np.array([8, 2, 8]))
        np.testing.assert_array_equal(a.keys, b.keys)

    def test_empty_sparse_space(self):
        space = PairSpace.from_pairs(100, [])
        assert len(space) == 0
        assert space.zeros().shape == (0,)
        assert space.slots(np.array([], dtype=np.int64)).shape == (0,)

    def test_single_observed_pair(self):
        space = PairSpace.from_pairs(50_000, [(17, 40_123)])
        assert len(space) == 1
        slot = space.slots(encode_pair_keys([17], [40_123], 50_000))
        assert slot[0] == 0
        s1, s2 = space.decode(slot)
        assert (s1[0], s2[0]) == (17, 40_123)

    def test_zeros_dtype(self):
        space = PairSpace.from_keys(4, np.array([5]))
        assert space.zeros(dtype=np.int8).dtype == np.int8
        assert space.zeros().dtype == np.float64

    def test_invalid_constructions(self):
        with pytest.raises(ValueError, match="observed keys"):
            PairSpace(4, "sparse")
        with pytest.raises(ValueError, match="layout"):
            PairSpace(4, "auto")

    def test_sparse_slots_monotone_in_key(self):
        # The bit-exactness of the sparse bound scan rests on this:
        # slot order == key order, so key-sorted iteration is identical
        # in both layouts.
        rng = np.random.default_rng(3)
        keys = rng.choice(10_000, size=200, replace=False)
        space = PairSpace.from_keys(100, keys)
        slots = space.slots(np.sort(keys.astype(np.int64)))
        np.testing.assert_array_equal(slots, np.arange(len(keys)))


# ----------------------------------------------------------------------
# reduce_by_key
# ----------------------------------------------------------------------
class TestReduceByKey:
    def test_layouts_agree_bit_for_bit(self):
        rng = np.random.default_rng(11)
        n_sources = 40
        keys = rng.integers(0, n_sources * n_sources, size=500).astype(np.int64)
        cols = [rng.standard_normal(500), rng.standard_normal(500)]
        uniq_d, sums_d = reduce_by_key(n_sources, keys, cols, "dense")
        uniq_s, sums_s = reduce_by_key(n_sources, keys, cols, "sparse")
        np.testing.assert_array_equal(uniq_d, uniq_s)
        for dense_col, sparse_col in zip(sums_d, sums_s):
            np.testing.assert_array_equal(dense_col, sparse_col)

    def test_duplicate_incidences_collapse(self):
        keys = np.array([5, 5, 5, 2], dtype=np.int64)
        col = np.array([1.0, 2.0, 4.0, 8.0])
        for layout in ("dense", "sparse"):
            uniq, (sums,) = reduce_by_key(3, keys, [col], layout)
            np.testing.assert_array_equal(uniq, [2, 5])
            np.testing.assert_array_equal(sums, [8.0, 7.0])

    def test_zero_weight_rows_survive(self):
        # Presence comes from key occurrence, not weight: a pair whose
        # contributions sum to zero must still be reported.
        keys = np.array([4, 4], dtype=np.int64)
        col = np.array([1.0, -1.0])
        for layout in ("dense", "sparse"):
            uniq, (sums,) = reduce_by_key(3, keys, [col], layout)
            np.testing.assert_array_equal(uniq, [4])
            np.testing.assert_array_equal(sums, [0.0])


# ----------------------------------------------------------------------
# PairValueMap
# ----------------------------------------------------------------------
class TestPairValueMap:
    def test_gather_hits_and_misses(self):
        table = PairValueMap.from_items(
            10, [((1, 2), 0.25), ((2, 1), 0.5), ((7, 3), 0.125)]
        )
        got = table.gather(
            np.array([1, 2, 7, 3, 0]), np.array([2, 1, 3, 7, 0])
        )
        np.testing.assert_array_equal(got, [0.25, 0.5, 0.125, 0.0, 0.0])

    def test_empty_map_returns_default(self):
        table = PairValueMap.from_items(10, [], default=0.75)
        got = table.gather(np.array([[1, 2]]), np.array([[3, 4]]))
        np.testing.assert_array_equal(got, [[0.75, 0.75]])

    def test_broadcast_gather_matches_dense_matrix(self):
        rng = np.random.default_rng(7)
        n = 30
        items = []
        matrix = np.zeros((n, n))
        for _ in range(40):
            src, dst = rng.integers(0, n, size=2)
            value = float(rng.random())
            matrix[src, dst] = value
            items.append(((int(src), int(dst)), value))
        # Later duplicates overwrite in the matrix; drop them from the
        # sparse build the same way.
        last = {pair: value for pair, value in items}
        table = PairValueMap.from_items(n, last.items())
        ranked = rng.integers(0, n, size=(5, 4))
        dense = matrix[ranked[:, :, None], ranked[:, None, :]]
        sparse = table.gather(ranked[:, :, None], ranked[:, None, :])
        np.testing.assert_array_equal(dense, sparse)


# ----------------------------------------------------------------------
# Dense/sparse parity across the detection methods
# ----------------------------------------------------------------------
class TestLayoutParity:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_forced_layouts_agree(self, method, seed):
        dataset, probs, accs = sparse_problem(seed)
        params = CopyParams(backend="numpy")
        dense = detect(dataset, probs, accs, params, method=method,
                       pair_layout="dense")
        sparse = detect(dataset, probs, accs, params, method=method,
                        pair_layout="sparse")
        assert set(dense.decisions) == set(sparse.decisions)
        if method in BITEXACT_METHODS:
            assert dense.decisions == sparse.decisions
            assert dense.cost.computations == sparse.cost.computations
            return
        for pair, dense_decision in dense.decisions.items():
            sparse_decision = sparse.decisions[pair]
            assert sparse_decision.copying == dense_decision.copying
            assert sparse_decision.c_fwd == pytest.approx(
                dense_decision.c_fwd, abs=NUMERIC_TOL
            )
            assert sparse_decision.c_bwd == pytest.approx(
                dense_decision.c_bwd, abs=NUMERIC_TOL
            )

    def test_incremental_rounds_agree(self):
        dataset, probs, accs = sparse_problem(9)
        runs = {}
        for layout in ("dense", "sparse"):
            detector = IncrementalDetector(
                CopyParams(backend="numpy", pair_layout=layout)
            )
            runs[layout] = [
                detector.run_round(round_no, dataset, probs, accs).decisions
                for round_no in (1, 2, 3)
            ]
        assert runs["dense"] == runs["sparse"]

    def test_accucopy_fusion_round_agrees(self):
        import repro.fusion.accu_kernel as ak

        dataset, probs, accs = sparse_problem(4)
        detection = detect(
            dataset, probs, accs, CopyParams(backend="numpy"), method="index"
        )
        cols = ak.FusionColumns.from_dataset(dataset)
        out = {}
        for layout in ("dense", "sparse"):
            params = CopyParams(backend="numpy", pair_layout=layout)
            out[layout] = ak.value_probabilities_columnar(
                cols, np.asarray(accs), params, detection
            )
        np.testing.assert_allclose(
            out["sparse"], out["dense"], atol=NUMERIC_TOL, rtol=0.0
        )

    def test_empty_world_all_methods(self):
        builder = DatasetBuilder()
        for source_id in range(5):
            builder.ensure_source(f"S{source_id}")
        dataset = builder.build()
        for method in METHODS:
            for layout in ("dense", "sparse"):
                result = detect(
                    dataset, [], [0.8] * 5,
                    CopyParams(backend="numpy", pair_layout=layout),
                    method=method,
                )
                assert result.decisions == {}

    def test_single_observed_pair_world(self):
        builder = DatasetBuilder()
        for source_id in range(40):
            builder.ensure_source(f"S{source_id}")
        builder.add("S3", "item0", "v0")
        builder.add("S27", "item0", "v0")
        dataset = builder.build()
        probs = [0.4] * dataset.n_values
        accs = [0.8] * 40
        for method in METHODS:
            reference = detect(
                dataset, probs, accs, CopyParams(backend="python"),
                method=method,
            )
            result = detect(
                dataset, probs, accs,
                CopyParams(backend="numpy", pair_layout="sparse"),
                method=method,
            )
            # The python reference decides the same pairs (pairwise sees
            # the shared item; the index methods agree either way).
            assert set(result.decisions) == set(reference.decisions)
        pairwise = detect(
            dataset, probs, accs,
            CopyParams(backend="numpy", pair_layout="sparse"),
            method="pairwise",
        )
        assert set(pairwise.decisions) == {(3, 27)}


# ----------------------------------------------------------------------
# int64 keys end-to-end past 2**16 sources
# ----------------------------------------------------------------------
class TestHugeSourceIds:
    def test_detect_beyond_two_pow_sixteen_sources(self):
        # 70k sources: the pair key space is ~4.9e9 (> 2**32), so any
        # int32 arithmetic in the keying would wrap and alias pairs.
        # Auto must pick the sparse layout and the numpy scans must
        # match the python reference on the handful of observed pairs.
        n = 70_000
        builder = DatasetBuilder()
        for source_id in range(n):
            builder.ensure_source(f"S{source_id}")
        claimants = [0, 1, 2, n - 3, n - 2, n - 1]
        for source_id in claimants:
            builder.add(f"S{source_id}", "item0", "v0")
            builder.add(f"S{source_id}", "item1", f"v{source_id % 2}")
        dataset = builder.build()
        probs = [0.3] * dataset.n_values
        accs = [0.8] * n

        reference = detect(
            dataset, probs, accs, CopyParams(backend="python"), method="bound+"
        )
        for method in ("index", "bound+"):
            result = detect(
                dataset, probs, accs, CopyParams(backend="numpy"),
                method=method,
            )
            assert set(result.decisions) == set(reference.decisions)
            # Every decided pair must involve the actual claimants —
            # an int32 wrap would alias keys into other source ids.
            for s1, s2 in result.decisions:
                assert s1 in claimants and s2 in claimants
        numpy_result = detect(
            dataset, probs, accs, CopyParams(backend="numpy"), method="bound+"
        )
        assert numpy_result.decisions == reference.decisions
