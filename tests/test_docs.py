"""The docs gate (tools/check_docs.py) runs green in the tier-1 suite.

CI has a dedicated ``docs`` job, but running the same checks here keeps
them enforceable locally with nothing but ``pytest``: broken relative
links in README/ROADMAP/docs and undocumented public surface in the
serving/streaming packages fail this test with the script's own
per-finding report.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_docs_gate_passes():
    completed = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "docs gate: passed" in completed.stdout


def test_gate_covers_the_streaming_surface():
    """The coverage gate actually looks at both product-surface packages."""
    completed = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert "src/repro/serving" in completed.stdout
    assert "src/repro/streaming" in completed.stdout
    # A zero-definition run would pass vacuously; require real coverage.
    checked = int(
        completed.stdout.split("docstrings: ", 1)[1].split(" public", 1)[0]
    )
    assert checked > 50
