"""CLI subcommands exercised through main(argv)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli_ds")
    code = main(
        ["generate", "book_cs", "--scale", "0.08", "--seed", "3", "-o", str(out)]
    )
    assert code == 0
    return out


class TestGenerate:
    def test_writes_files(self, dataset_dir):
        assert (dataset_dir / "claims.csv").exists()
        assert (dataset_dir / "gold.csv").exists()

    def test_output_mentions_profile(self, dataset_dir, capsys):
        main(["generate", "book_cs", "--scale", "0.05", "-o", str(dataset_dir)])
        captured = capsys.readouterr().out
        assert "book_cs" in captured
        assert "planted copying pairs" in captured


class TestStats:
    def test_prints_counts(self, dataset_dir, capsys):
        assert main(["stats", str(dataset_dir / "claims.csv")]) == 0
        out = capsys.readouterr().out
        assert "sources" in out
        assert "index-entries" in out


class TestDetect:
    @pytest.mark.parametrize("method", ["pairwise", "index", "hybrid"])
    def test_methods_run(self, dataset_dir, capsys, method):
        code = main(
            ["detect", str(dataset_dir / "claims.csv"), "--method", method]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Copying detected" in out
        assert "computations" in out

    @pytest.mark.parametrize("method", ["bound", "bound+", "hybrid"])
    def test_numpy_backend_with_epoch_size(self, dataset_dir, capsys, method):
        """The epoch-batched bound backend is reachable from the CLI."""
        pytest.importorskip("numpy")
        claims = str(dataset_dir / "claims.csv")
        code = main(
            [
                "detect", claims, "--method", method,
                "--backend", "numpy", "--epoch-size", "32",
            ]
        )
        assert code == 0
        numpy_out = capsys.readouterr().out
        assert main(["detect", claims, "--method", method]) == 0
        python_out = capsys.readouterr().out

        def table_rows(text):
            return [
                line for line in text.splitlines() if line.count("|") >= 4
            ]

        # Identical verdict tables (timing in the header differs).
        assert table_rows(numpy_out) == table_rows(python_out)


class TestDetectParallel:
    """--n-partitions/--executor/--reduce/--partition-by round-trips."""

    def _rows(self, text):
        return [line for line in text.splitlines() if line.count("|") >= 4]

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_hybrid_processes_matches_sequential(
        self, dataset_dir, capsys, backend
    ):
        """detect_hybrid_parallel on a real process pool, via the CLI."""
        if backend == "numpy":
            pytest.importorskip("numpy")
        claims = str(dataset_dir / "claims.csv")
        code = main(
            [
                "detect", claims, "--method", "hybrid", "--backend", backend,
                "--n-partitions", "4", "--executor", "processes",
                "--reduce", "tree", "--partition-by", "work",
            ]
        )
        assert code == 0
        parallel_out = capsys.readouterr().out
        assert main(["detect", claims, "--method", "hybrid"]) == 0
        sequential_out = capsys.readouterr().out
        assert self._rows(parallel_out) == self._rows(sequential_out)

    @pytest.mark.parametrize("reduce", ["flat", "tree"])
    @pytest.mark.parametrize("partition_by", ["entries", "work"])
    def test_index_flag_grid(self, dataset_dir, capsys, reduce, partition_by):
        claims = str(dataset_dir / "claims.csv")
        code = main(
            [
                "detect", claims, "--method", "index",
                "--n-partitions", "3", "--reduce", reduce,
                "--partition-by", partition_by,
            ]
        )
        assert code == 0
        parallel_out = capsys.readouterr().out
        assert main(["detect", claims, "--method", "index"]) == 0
        sequential_out = capsys.readouterr().out
        assert self._rows(parallel_out) == self._rows(sequential_out)

    def test_single_partition_ignores_executor(self, dataset_dir, capsys):
        """--n-partitions 1 keeps the sequential path."""
        claims = str(dataset_dir / "claims.csv")
        code = main(
            ["detect", claims, "--method", "hybrid", "--n-partitions", "1"]
        )
        assert code == 0
        assert "Copying detected" in capsys.readouterr().out

    def test_partitioning_rejected_for_bound_methods(self, dataset_dir):
        claims = str(dataset_dir / "claims.csv")
        with pytest.raises(SystemExit):
            main(["detect", claims, "--method", "bound", "--n-partitions", "2"])

    def test_bad_reduce_rejected(self, dataset_dir):
        claims = str(dataset_dir / "claims.csv")
        with pytest.raises(SystemExit):
            main(["detect", claims, "--reduce", "sum"])


class TestFuseParallel:
    """--n-partitions/--executor/--reduce/--partition-by on fuse."""

    def _stable_lines(self, text):
        """Output lines unaffected by timing (pairs, accuracy, truths)."""
        return [
            line
            for line in text.splitlines()
            if line.startswith(("copying pairs", "fusion accuracy"))
            or line.count("|") >= 2
        ]

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("reduce", ["flat", "tree"])
    def test_index_round_trip(self, dataset_dir, capsys, backend, reduce):
        if backend == "numpy":
            pytest.importorskip("numpy")
        claims = str(dataset_dir / "claims.csv")
        gold = str(dataset_dir / "gold.csv")
        base = ["fuse", claims, "--gold", gold, "--method", "index",
                "--backend", backend, "--truths", "5"]
        code = main(
            base + ["--n-partitions", "3", "--reduce", reduce,
                    "--partition-by", "work", "--executor", "threads"]
        )
        assert code == 0
        parallel_out = capsys.readouterr().out
        assert main(base) == 0
        sequential_out = capsys.readouterr().out
        assert self._stable_lines(parallel_out) == self._stable_lines(
            sequential_out
        )

    def test_hybrid_processes_round_trip(self, dataset_dir, capsys):
        """fuse on a real process pool (persistent across rounds)."""
        pytest.importorskip("numpy")
        claims = str(dataset_dir / "claims.csv")
        base = ["fuse", claims, "--method", "hybrid", "--backend", "numpy"]
        code = main(
            base + ["--n-partitions", "4", "--executor", "processes",
                    "--reduce", "tree"]
        )
        assert code == 0
        parallel_out = capsys.readouterr().out
        assert main(base) == 0
        sequential_out = capsys.readouterr().out
        assert self._stable_lines(parallel_out) == self._stable_lines(
            sequential_out
        )

    @pytest.mark.parametrize("method", ["incremental", "none", "pairwise"])
    def test_partitioning_rejected_for_non_parallel_methods(
        self, dataset_dir, method
    ):
        claims = str(dataset_dir / "claims.csv")
        with pytest.raises(SystemExit):
            main(["fuse", claims, "--method", method, "--n-partitions", "2"])

    def test_bad_reduce_rejected(self, dataset_dir):
        claims = str(dataset_dir / "claims.csv")
        with pytest.raises(SystemExit):
            main(["fuse", claims, "--reduce", "sum"])

    def test_executor_without_partitions_rejected(self, dataset_dir):
        """A pool request with a single partition would silently run
        sequentially; fuse refuses instead."""
        claims = str(dataset_dir / "claims.csv")
        with pytest.raises(SystemExit):
            main(["fuse", claims, "--method", "index", "--executor", "processes"])


class TestFuse:
    def test_numpy_fusion_backend_matches_python(self, dataset_dir, capsys):
        """--backend numpy routes the ACCU/ACCUCOPY updates through the
        columnar kernel; fused truths and verdicts match the reference."""
        pytest.importorskip("numpy")
        claims = str(dataset_dir / "claims.csv")
        gold = str(dataset_dir / "gold.csv")
        base = ["fuse", claims, "--gold", gold, "--method", "incremental",
                "--truths", "5"]
        assert main(base + ["--backend", "numpy"]) == 0
        numpy_out = capsys.readouterr().out
        assert main(base) == 0
        python_out = capsys.readouterr().out

        def stable(text):
            return [
                line
                for line in text.splitlines()
                if line.startswith(("copying pairs", "fusion accuracy"))
                or line.count("|") >= 2
            ]

        assert stable(numpy_out) == stable(python_out)

    def test_incremental_with_gold(self, dataset_dir, capsys):
        code = main(
            [
                "fuse",
                str(dataset_dir / "claims.csv"),
                "--gold",
                str(dataset_dir / "gold.csv"),
                "--method",
                "incremental",
                "--truths",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fusion accuracy" in out
        assert "copying pairs" in out
        assert "Fused truths" in out

    def test_no_detector(self, dataset_dir, capsys):
        code = main(["fuse", str(dataset_dir / "claims.csv"), "--method", "none"])
        assert code == 0
        assert "rounds=" in capsys.readouterr().out


class TestConformance:
    def test_smoke_run_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "sub" / "report.json"
        code = main(
            [
                "conformance", "--smoke", "--cases", "26", "--seed", "19",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zero divergences" in out
        assert "contract" in out
        import json

        payload = json.loads(report_path.read_text())
        assert payload["version"] == 1
        assert payload["ok"] is True
        assert payload["cases"] == 26

    def test_divergence_sets_exit_code_and_corpus(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.fusion.accu_kernel as accu_kernel

        true_update = accu_kernel.update_accuracies_columnar
        monkeypatch.setattr(
            accu_kernel,
            "update_accuracies_columnar",
            lambda cols, probabilities, params: true_update(
                cols, probabilities, params
            )
            * 0.999,
        )
        # A tiny grid that hits the corrupted numpy fusion path: case
        # indices cycle configs, so a pure-fusion sweep is guaranteed to
        # run the broken kernel.
        from repro.conformance import CaseConfig

        monkeypatch.setattr(
            "repro.conformance.engine.GRIDS",
            {"smoke": lambda: [CaseConfig("fusion", "none", rounds=2)]},
        )
        code = main(
            [
                "conformance", "--smoke", "--cases", "2", "--seed", "13",
                "--corpus", str(tmp_path / "corpus"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert list((tmp_path / "corpus").glob("*.json"))

    def test_unknown_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["conformance", "--grid", "nope"])

    def test_parser_build_never_imports_heavy_modules(self):
        """Every subcommand pays build_parser's cost: it must not pull
        in the conformance engine or hypothesis (a slow test-only dep)."""
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; "
                "from repro.cli import build_parser; build_parser(); "
                "assert 'hypothesis' not in sys.modules; "
                "assert 'repro.conformance' not in sys.modules",
            ],
            env={"PYTHONPATH": str(src)},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_grid_choices_stay_in_sync_with_engine(self):
        """build_parser hardcodes --grid choices (so the parser never
        imports the conformance engine); this pins them to GRIDS."""
        from repro.cli import build_parser
        from repro.conformance.engine import GRIDS

        parser = build_parser()
        conf = next(
            action
            for action in parser._subparsers._group_actions[0].choices[
                "conformance"
            ]._actions
            if action.dest == "grid"
        )
        assert sorted(conf.choices) == sorted(GRIDS)


class TestParsing:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "nope"])
