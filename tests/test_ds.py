"""Dempster-Shafer fusion: the combination math, credibility priors,
conflict surfacing, and the config-validation side-effect contract."""

import json
from dataclasses import replace

import pytest

from repro.conformance import generate_world
from repro.conformance.engine import CaseConfig, run_case
from repro.core import CopyParams, IncrementalDetector, SingleRoundDetector
from repro.core.explain import explain_pair
from repro.data import ClaimDelta, DatasetBuilder, motivating_example
from repro.fusion import (
    CredibilityModel,
    FusionConfig,
    TotalConflictError,
    choose_values,
    ds_value_probabilities,
    run_fusion,
    value_probabilities,
    vote,
    vote_probabilities,
)
from repro.fusion.accu_kernel import FusionColumns
from repro.fusion.ds import MAX_SUPPORT, ds_value_probabilities_columnar, support_masses
from repro.streaming import StreamEngine


def _world_dataset(case_index: int, seed: int = 977):
    dataset, _, accuracies = generate_world(case_index, seed).materialize()
    return dataset, accuracies


class TestSupportMasses:
    def test_bounded_and_monotone_in_accuracy(self, params):
        masses = support_masses([0.2, 0.5, 0.8, 0.95], params)
        assert all(0.0 <= w <= MAX_SUPPORT for w in masses)
        assert masses == sorted(masses)

    def test_uncertainty_shrinks_support(self, params):
        base = support_masses([0.8], params)[0]
        reserved = support_masses([0.8], params, uncertainty=0.5)[0]
        assert reserved == pytest.approx(base * 0.5)

    def test_credibility_scales_and_clamps(self, params):
        base = support_masses([0.8], params)[0]
        half = support_masses([0.8], params, credibility=[0.5])[0]
        assert half == pytest.approx(base * 0.5)
        boosted = support_masses([0.8], params, credibility=[1e9])[0]
        assert boosted == MAX_SUPPORT

    def test_odds_below_one_supports_nothing(self):
        # With n = 1, accuracy 0.4 gives odds 2/3 < 1: no support.
        params = CopyParams(n=1)
        assert support_masses([0.4], params) == [0.0]


class TestDSCombination:
    @pytest.mark.parametrize("case_index", range(8))
    def test_mass_normalization_and_conflict_range(self, params, case_index):
        dataset, accuracies = _world_dataset(case_index)
        round_ = ds_value_probabilities(dataset, accuracies, params)
        for item_id, values in enumerate(dataset.item_value_table()):
            if not values:
                continue
            total = sum(round_.probabilities[v] for v in values)
            assert 0.0 < total <= 1.0 + 1e-12
            assert 0.0 <= round_.conflict[item_id] <= 1.0
        assert set(round_.conflict) == {
            i for i, vs in enumerate(dataset.item_value_table()) if vs
        }

    @pytest.mark.parametrize("case_index", range(8))
    def test_columnar_lockstep(self, params, case_index):
        dataset, accuracies = _world_dataset(case_index)
        reference = ds_value_probabilities(dataset, accuracies, params)
        columnar = ds_value_probabilities_columnar(
            FusionColumns.from_dataset(dataset), accuracies, params
        )
        assert set(reference.conflict) == set(columnar.conflict)
        for item_id, k in reference.conflict.items():
            assert columnar.conflict[item_id] == pytest.approx(k, abs=1e-9)
        for ref, col in zip(reference.probabilities, columnar.probabilities):
            assert float(col) == pytest.approx(ref, abs=1e-9)
        assert choose_values(dataset, reference.probabilities) == choose_values(
            dataset, [float(p) for p in columnar.probabilities]
        )

    @pytest.mark.parametrize("case_index", range(8))
    def test_flat_ds_ranks_values_like_accu(self, params, case_index):
        # The parity construction the docs promise: flat credibility,
        # zero uncertainty, no detection -> per-item value ranking
        # identical to ACCU's (and therefore the same fused truths).
        dataset, accuracies = _world_dataset(case_index)
        ds = ds_value_probabilities(dataset, accuracies, params)
        accu = value_probabilities(dataset, accuracies, params)
        for values in dataset.item_value_table():
            ds_rank = sorted(values, key=lambda v: (ds.probabilities[v], -v))
            accu_rank = sorted(values, key=lambda v: (accu[v], -v))
            assert ds_rank == accu_rank

    def test_copier_discount_reduces_copied_support(self, params):
        # Two sources claiming the same value: with a detection result
        # the later provider's mass is deflated, so the value's pooled
        # probability drops below the independent combination.
        dataset = motivating_example()
        accuracies = [0.8] * dataset.n_sources
        detection = SingleRoundDetector(params, "pairwise").run_round(
            1, dataset, vote_probabilities(dataset), accuracies
        )
        independent = ds_value_probabilities(dataset, accuracies, params)
        discounted = ds_value_probabilities(
            dataset, accuracies, params, detection=detection
        )
        assert any(
            d < i - 1e-12
            for d, i in zip(discounted.probabilities, independent.probabilities)
        )

    def test_total_conflict_raises_in_both_implementations(self, params):
        # Dozens of maximally-boosted witnesses split over two values:
        # each side's support clamps to MAX_SUPPORT, the combined mass
        # underflows to exact float zero, and both implementations must
        # refuse rather than renormalise noise.
        b = DatasetBuilder()
        for s in range(40):
            b.add(f"x{s}", "D", "x")
        for s in range(40):
            b.add(f"y{s}", "D", "y")
        dataset = b.build()
        accuracies = [0.99] * 80
        credibility = [100.0] * 80
        with pytest.raises(TotalConflictError) as exc:
            ds_value_probabilities(
                dataset, accuracies, params, credibility=credibility
            )
        assert exc.value.item_id == 0
        assert exc.value.total_mass == 0.0
        with pytest.raises(TotalConflictError) as exc_np:
            ds_value_probabilities_columnar(
                FusionColumns.from_dataset(dataset),
                accuracies,
                params,
                credibility=credibility,
            )
        assert exc_np.value.item_id == 0
        assert exc_np.value.total_mass == 0.0

    def test_dense_conflict_is_diagnosed_not_raised(self, params):
        # Zadeh's observation: a dozen confident providers split across
        # two values push K within ~1e-19 of 1 while the mass ratios
        # stay perfectly well-conditioned — that must NOT raise.
        b = DatasetBuilder()
        for s in range(7):
            b.add(f"x{s}", "D", "x")
        for s in range(6):
            b.add(f"y{s}", "D", "y")
        dataset = b.build()
        round_ = ds_value_probabilities(
            dataset, [0.97] * 13, params, credibility=[2.0] * 13
        )
        assert round_.conflict[0] > 0.999
        x_id, y_id = 0, 1
        assert round_.probabilities[x_id] > round_.probabilities[y_id]


class TestRunFusionDS:
    def test_end_to_end_matches_accu_truths_and_surfaces_conflict(self, params):
        dataset, _ = _world_dataset(2)
        detector = SingleRoundDetector(params, "pairwise")
        accu = run_fusion(dataset, params, detector, FusionConfig(max_rounds=4))
        ds = run_fusion(
            dataset,
            params,
            SingleRoundDetector(params, "pairwise"),
            FusionConfig(max_rounds=4, fusion_method="ds"),
        )
        assert ds.chosen == accu.chosen
        assert accu.final_conflict() is None and accu.credibility is None
        conflict = ds.final_conflict()
        assert conflict and all(0.0 <= k <= 1.0 for k in conflict.values())
        assert ds.credibility == [1.0] * dataset.n_sources
        for record in ds.rounds:
            assert record.conflict is not None

    def test_python_and_numpy_backends_agree(self):
        dataset, _ = _world_dataset(3)
        cfg = FusionConfig(max_rounds=4, fusion_method="ds")
        py = run_fusion(
            dataset, CopyParams(backend="python"), config=cfg
        )
        np_ = run_fusion(dataset, CopyParams(backend="numpy"), config=cfg)
        assert py.chosen == np_.chosen
        for a, b in zip(py.accuracies, np_.accuracies):
            assert b == pytest.approx(a, abs=1e-9)
        for item, k in py.final_conflict().items():
            assert np_.final_conflict()[item] == pytest.approx(k, abs=1e-9)

    def test_invalid_config_leaves_store_untouched(self, params, tmp_path):
        # The regression this PR fixes: every config check must run
        # before the snapshot publisher mkdirs the store directory.
        dataset = motivating_example()
        store = tmp_path / "store"
        bad = FusionConfig(initial_accuracies=[0.8])  # wrong length
        with pytest.raises(ValueError):
            run_fusion(dataset, params, config=bad, snapshot_store=store)
        assert not store.exists()
        with pytest.raises(ValueError):
            run_fusion(
                dataset,
                params,
                config=FusionConfig(credibility=CredibilityModel.flat()),
                snapshot_store=store,
            )
        assert not store.exists()
        with pytest.raises(ValueError):
            run_fusion(
                dataset,
                params,
                config=FusionConfig(ds_uncertainty=0.2),
                snapshot_store=store,
            )
        assert not store.exists()
        with pytest.raises(ValueError):
            run_fusion(
                dataset,
                params,
                config=FusionConfig(fusion_method="votes"),
                snapshot_store=store,
            )
        assert not store.exists()

    def test_ds_uncertainty_out_of_range_rejected(self, params):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError):
                run_fusion(
                    motivating_example(),
                    params,
                    config=FusionConfig(fusion_method="ds", ds_uncertainty=bad),
                )


class TestConformanceDSAxis:
    @pytest.mark.parametrize("case_index", range(4))
    def test_lockstep_grid_cases_conform(self, case_index):
        world = generate_world(case_index, seed=20260808)
        outcome = run_case(
            world,
            CaseConfig("fusion", "none", fusion_method="ds", rounds=3),
        )
        assert not outcome.diverged, outcome.divergences

    def test_python_candidate_against_reference(self):
        world = generate_world(1, seed=20260808)
        outcome = run_case(
            world,
            CaseConfig(
                "fusion",
                "none",
                backend="python",
                fusion_backend="python",
                fusion_method="ds",
                rounds=3,
            ),
        )
        assert not outcome.diverged, outcome.divergences


class TestCredibilityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CredibilityModel(priors={"a": 0.0})
        with pytest.raises(ValueError):
            CredibilityModel(priors={"a": float("nan")})
        with pytest.raises(ValueError):
            CredibilityModel(default=-1.0)
        with pytest.raises(ValueError):
            CredibilityModel(decay=-0.5)

    def test_flat_is_flat_and_neutral(self):
        model = CredibilityModel.flat()
        assert model.is_flat
        assert model.effective(["a", "b"], [0.5, 0.9]) == [1.0, 1.0]
        assert not CredibilityModel(priors={"a": 2.0}).is_flat

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "priors.json"
        path.write_text(json.dumps({"wire": 3.0, "*": 0.5}), encoding="utf-8")
        model = CredibilityModel.from_file(path)
        assert model.prior_for(name="wire") == 3.0
        assert model.prior_for(name="blog") == 0.5

    def test_from_file_csv(self, tmp_path):
        path = tmp_path / "priors.csv"
        path.write_text(
            "# trusted feeds\nwire,3.0\n*,0.25\n", encoding="utf-8"
        )
        model = CredibilityModel.from_file(path, decay=0.1)
        assert model.prior_for(name="wire") == 3.0
        assert model.default == 0.25
        assert model.decay == 0.1

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(ValueError):
            CredibilityModel.from_file(tmp_path / "missing.json")
        bad_rows = tmp_path / "bad.csv"
        bad_rows.write_text("just-a-name\n", encoding="utf-8")
        with pytest.raises(ValueError):
            CredibilityModel.from_file(bad_rows)
        bad_json = tmp_path / "list.json"
        bad_json.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValueError):
            CredibilityModel.from_file(bad_json)
        bad_weight = tmp_path / "weight.csv"
        bad_weight.write_text("wire,lots\n", encoding="utf-8")
        with pytest.raises(ValueError):
            CredibilityModel.from_file(bad_weight)

    def test_decay_penalises_observed_error(self):
        model = CredibilityModel(priors={"a": 2.0}, decay=1.0)
        sharp, sloppy = model.effective(["a", "a2"], [1.0, 0.5])
        assert sharp == pytest.approx(2.0)
        assert sloppy < 1.0

    def test_initial_accuracy_identity_at_prior_one(self):
        base = 0.8125
        assert CredibilityModel.flat().initial_accuracy_for(base) == base
        scaled = CredibilityModel(priors={"s": 0.5}).initial_accuracy_for(
            base, name="s"
        )
        assert scaled == pytest.approx(base * 0.5)
        clamped = CredibilityModel(priors={"s": 100.0}).initial_accuracy_for(
            base, name="s"
        )
        assert clamped < 1.0


class TestVoteContract:
    def test_zero_provider_value_cannot_win(self):
        from repro.data import ClaimLedger

        ledger = ClaimLedger()
        ledger.apply(
            [
                ClaimDelta("a", "D", "x"),
                ClaimDelta("b", "D", "y"),
                ClaimDelta("c", "D", "y"),
            ]
        )
        # "a" re-reports: value "x" loses its only provider.
        ledger.apply([ClaimDelta("a", "D", "y")])
        dataset = ledger.snapshot()
        chosen = vote(dataset)
        item = dataset.item_names.index("D")
        assert dataset.value_label[chosen[item]] == "y"
        probs = vote_probabilities(dataset)
        x_id = next(
            v
            for v in dataset.values_of_item(item)
            if dataset.value_label[v] == "x"
        )
        assert probs[x_id] == 0.0

    def test_tie_breaks_to_first_claimed_value(self):
        b = DatasetBuilder()
        b.add("s1", "D", "later-alphabetically-z")
        b.add("s2", "D", "a-but-claimed-second")
        dataset = b.build()
        chosen = vote(dataset)
        item = dataset.item_names.index("D")
        assert dataset.value_label[chosen[item]] == "later-alphabetically-z"


class TestStreamingDS:
    def _seed_deltas(self):
        # A small planted-copying world: C0 clones S0 verbatim, so the
        # (S0, C0) pair is always observed by the epoch's detector.
        import random

        rng = random.Random(11)
        deltas = []
        claims_of_s0 = {}
        for s in range(4):
            for i in range(10):
                item = f"I{i:02d}"
                value = (
                    f"true-{i}"
                    if rng.random() < 0.7
                    else f"wrong-{i}-{rng.randint(0, 1)}"
                )
                deltas.append(ClaimDelta(f"S{s}", item, value))
                if s == 0:
                    claims_of_s0[item] = value
        for i in range(10):
            item = f"I{i:02d}"
            deltas.append(ClaimDelta("C0", item, claims_of_s0[item]))
        return deltas

    def test_grown_source_pads_through_credibility(self):
        # A source appearing mid-stream must warm-start from the same
        # prior-scaled accuracy a cold run would give it.
        cred = CredibilityModel(priors={"late": 0.6})
        cfg = FusionConfig(fusion_method="ds", credibility=cred, max_rounds=4)
        params = CopyParams(backend="python")
        engine = StreamEngine(params=params, config=cfg)
        engine.run_epoch(self._seed_deltas())
        previous = list(engine.state.accuracies)
        engine.run_epoch([ClaimDelta("late", "I00", "true-0")])
        dataset = engine.ledger.snapshot()

        pad = cred.initial_accuracy_for(
            cfg.initial_accuracy, source_id=len(previous), name="late"
        )
        assert pad == pytest.approx(cfg.initial_accuracy * 0.6)
        manual = run_fusion(
            dataset,
            params,
            IncrementalDetector(params, prepare_round=1),
            replace(cfg, initial_accuracies=previous + [pad]),
        )
        assert engine.state.accuracies == tuple(manual.accuracies)
        assert engine.state.chosen == manual.chosen
        assert engine.state.conflict == manual.final_conflict()

    def test_epoch_state_carries_conflict_and_credibility(self):
        cfg = FusionConfig(fusion_method="ds", max_rounds=4)
        engine = StreamEngine(params=CopyParams(backend="python"), config=cfg)
        engine.run_epoch(self._seed_deltas())
        state = engine.state
        assert state.conflict and all(
            0.0 <= k <= 1.0 for k in state.conflict.values()
        )
        assert state.credibility == (1.0,) * state.dataset.n_sources
        explanation = state.explain(0, 4)  # S0 and its verbatim copier C0
        assert explanation.credibility_a == 1.0
        assert explanation.credibility_b == 1.0
        assert "credibility:" in explanation.render()

    def test_accu_epoch_state_has_no_ds_surface(self):
        engine = StreamEngine(params=CopyParams(backend="python"))
        engine.run_epoch(self._seed_deltas())
        assert engine.state.conflict is None
        assert engine.state.credibility is None


class TestExplainDS:
    def test_conflict_and_credibility_annotations(self, params):
        dataset = motivating_example()
        result = run_fusion(
            dataset,
            params,
            SingleRoundDetector(params, "pairwise"),
            FusionConfig(max_rounds=4, fusion_method="ds"),
        )
        explanation = explain_pair(
            dataset,
            0,
            1,
            result.probabilities,
            result.accuracies,
            params,
            result=result.final_detection(),
            credibility=result.credibility,
            conflict=result.final_conflict(),
        )
        assert explanation.credibility_a == 1.0
        assert explanation.credibility_b == 1.0
        assert all(ev.conflict is not None for ev in explanation.items)
        rendered = explanation.render()
        assert "credibility:" in rendered
        assert "[K=" in rendered

    def test_without_ds_inputs_stays_clean(self, params):
        dataset = motivating_example()
        result = run_fusion(dataset, params, SingleRoundDetector(params, "pairwise"))
        explanation = explain_pair(
            dataset, 0, 1, result.probabilities, result.accuracies, params
        )
        assert explanation.credibility_a is None
        assert all(ev.conflict is None for ev in explanation.items)
        assert "[K=" not in explanation.render()


class TestCLIFusionDS:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        from repro.cli import main

        out = tmp_path_factory.mktemp("cli_ds_fusion")
        assert (
            main(
                [
                    "generate",
                    "book_cs",
                    "--scale",
                    "0.06",
                    "--seed",
                    "9",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        return out

    def test_fuse_ds_reports_conflict(self, dataset_dir, capsys):
        from repro.cli import main

        code = main(
            [
                "fuse",
                str(dataset_dir / "claims.csv"),
                "--fusion",
                "ds",
                "--max-rounds",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DS conflict:" in out
        assert "mean K" in out

    def test_fuse_ds_with_credibility_file(self, dataset_dir, tmp_path, capsys):
        from repro.cli import main

        priors = tmp_path / "priors.json"
        priors.write_text(json.dumps({"*": 0.9}), encoding="utf-8")
        code = main(
            [
                "fuse",
                str(dataset_dir / "claims.csv"),
                "--fusion",
                "ds",
                "--credibility-file",
                str(priors),
                "--ds-uncertainty",
                "0.1",
                "--max-rounds",
                "4",
            ]
        )
        assert code == 0
        assert "DS conflict:" in capsys.readouterr().out

    def test_ds_flags_require_fusion_ds(self, dataset_dir, tmp_path):
        from repro.cli import main

        priors = tmp_path / "priors.json"
        priors.write_text("{}", encoding="utf-8")
        claims = str(dataset_dir / "claims.csv")
        with pytest.raises(SystemExit):
            main(["fuse", claims, "--credibility-file", str(priors)])
        with pytest.raises(SystemExit):
            main(["fuse", claims, "--ds-uncertainty", "0.1"])

    def test_unreadable_credibility_file_is_a_clean_exit(self, dataset_dir):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "fuse",
                    str(dataset_dir / "claims.csv"),
                    "--fusion",
                    "ds",
                    "--credibility-file",
                    "/nonexistent/priors.json",
                ]
            )
