"""Remote-worker execution: wire codec, scheduler, parity, faults, stats.

The parity and fault tests spawn real worker interpreters
(:class:`repro.cluster.LocalCluster`) and talk to them over localhost
TCP — exactly the simulated-cluster setup of ``benchmarks/bench_cluster``
— so they carry the ``cluster`` marker for selective runs
(``pytest -m "not cluster"`` skips every subprocess-spawning test).
"""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.cli import main
from repro.cluster import (
    ClusterError,
    ClusterExecutor,
    LocalCluster,
    parse_worker_spec,
    resolve_cluster,
)
from repro.cluster.wire import (
    MAGIC,
    WIRE_VERSION,
    encode_message,
    recv_message,
    send_message,
)
from repro.core import CopyParams, InvertedIndex
from repro.parallel import detect_hybrid_parallel, detect_index_parallel
from repro.parallel.partition import (
    assign_buckets_lpt,
    partition_entries,
    partition_weights,
)


# ----------------------------------------------------------------------
# Wire codec (no subprocesses: socketpair + raw frames)
# ----------------------------------------------------------------------
class TestWire:
    def _roundtrip(self, kind, meta, arrays):
        left, right = socket.socketpair()
        try:
            send_message(left, kind, meta, arrays)
            return recv_message(right)
        finally:
            left.close()
            right.close()

    def test_roundtrip_arrays_and_meta(self):
        arrays = {
            "probs": np.array([0.25, 0.5, 1.0 / 3.0]),
            "main": np.array([1, 0, 1], dtype=np.uint8),
            "offsets": np.array([0, 2, 5], dtype=np.int64),
        }
        kind, meta, got = self._roundtrip("world", {"session": "s1"}, arrays)
        assert kind == "world"
        assert meta["session"] == "s1"
        assert set(got) == set(arrays)
        for name, arr in arrays.items():
            assert got[name].dtype == arr.dtype
            assert np.array_equal(got[name], arr)
        # Raw-buffer transport: floats come back bit-identical.
        assert got["probs"].tobytes() == arrays["probs"].tobytes()

    def test_roundtrip_no_arrays(self):
        kind, meta, arrays = self._roundtrip("ping", {"n": 7}, None)
        assert kind == "ping" and meta == {"n": 7} and arrays == {}

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right, eof_ok=True) is None
        finally:
            right.close()

    def test_truncated_frame_raises(self):
        frame = encode_message("task", {"x": 1}, {"a": np.arange(4)})
        left, right = socket.socketpair()
        try:
            left.sendall(frame[: len(frame) - 3])
            left.close()
            with pytest.raises(ClusterError, match="closed mid-frame"):
                recv_message(right)
        finally:
            right.close()

    def test_bad_magic_raises(self):
        frame = bytearray(encode_message("ping", {}))
        frame[:4] = b"XXXX"
        left, right = socket.socketpair()
        try:
            left.sendall(bytes(frame))
            left.close()
            with pytest.raises(ClusterError, match="magic"):
                recv_message(right)
        finally:
            right.close()

    def test_newer_version_raises(self):
        frame = bytearray(encode_message("ping", {}))
        frame[4:8] = struct.pack("<I", WIRE_VERSION + 1)
        left, right = socket.socketpair()
        try:
            left.sendall(bytes(frame))
            left.close()
            with pytest.raises(ClusterError, match="version"):
                recv_message(right)
        finally:
            right.close()

    def test_corrupted_payload_fails_crc(self):
        frame = bytearray(encode_message("task", {}, {"a": np.arange(8)}))
        frame[-1] ^= 0xFF
        left, right = socket.socketpair()
        try:
            left.sendall(bytes(frame))
            left.close()
            with pytest.raises(ClusterError, match="checksum"):
                recv_message(right)
        finally:
            right.close()

    def test_magic_constant(self):
        assert MAGIC == b"RCLW" and len(MAGIC) == 4


# ----------------------------------------------------------------------
# The scheduler and the worker-spec parser (pure functions)
# ----------------------------------------------------------------------
class TestScheduler:
    def test_covers_every_task_once(self):
        buckets = assign_buckets_lpt([5, 1, 4, 1, 1], 2)
        assert sorted(t for b in buckets for t in b) == [0, 1, 2, 3, 4]

    def test_balances_heaviest_first(self):
        buckets = assign_buckets_lpt([10, 1, 1, 1], 2)
        # LPT: the heavy task gets a bucket to itself.
        assert [0] in buckets
        assert sorted(t for b in buckets for t in b) == [0, 1, 2, 3]

    def test_deterministic(self):
        weights = [3, 7, 3, 1, 9, 2]
        assert assign_buckets_lpt(weights, 3) == assign_buckets_lpt(weights, 3)

    def test_single_bucket_gets_everything(self):
        assert assign_buckets_lpt([2, 2, 2], 1) == [[0, 1, 2]]

    def test_more_buckets_than_tasks(self):
        buckets = assign_buckets_lpt([1, 1], 4)
        assert sorted(t for b in buckets for t in b) == [0, 1]
        assert len(buckets) == 4

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            assign_buckets_lpt([1], 0)


class TestWorkerSpec:
    def test_string_spec(self):
        assert parse_worker_spec("a:1,b:2") == [("a", 1), ("b", 2)]

    def test_sequence_spec(self):
        assert parse_worker_spec(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]

    def test_ipv6_style_uses_last_colon(self):
        assert parse_worker_spec("::1:9000") == [("::1", 9000)]

    @pytest.mark.parametrize("bad", ["", "hostonly", "h:notaport", []])
    def test_malformed_raises(self, bad):
        with pytest.raises(ClusterError):
            parse_worker_spec(bad)

    def test_resolve_passthrough_not_owned(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_WORKERS", raising=False)
        with pytest.raises(ClusterError, match="REPRO_CLUSTER_WORKERS"):
            resolve_cluster(None)


# ----------------------------------------------------------------------
# Live-cluster tests (subprocess workers over localhost TCP)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster():
    """One 2-worker cluster shared by every non-destructive test."""
    with LocalCluster(2) as lc:
        yield lc


@pytest.fixture(scope="module")
def executor(cluster):
    return cluster.executor()


def _index(example, example_probabilities, example_accuracies, params):
    return InvertedIndex.build(
        example, example_probabilities, example_accuracies, params
    )


def _assert_bit_identical(ref, got):
    assert ref.decisions.keys() == got.decisions.keys()
    for pair in ref.decisions:
        assert got.decisions[pair] == ref.decisions[pair], pair
    assert got.cost.values_examined == ref.cost.values_examined
    assert got.cost.pairs_considered == ref.cost.pairs_considered


@pytest.mark.cluster
class TestRemoteParity:
    @pytest.mark.parametrize("reduce_mode", ["flat", "tree"])
    def test_index_matches_serial(
        self,
        executor,
        example,
        example_probabilities,
        example_accuracies,
        params,
        reduce_mode,
    ):
        kwargs = dict(
            n_partitions=3, strategy="work", reduce=reduce_mode
        )
        ref = detect_index_parallel(
            example, example_probabilities, example_accuracies, params,
            executor="serial", **kwargs,
        )
        got = detect_index_parallel(
            example, example_probabilities, example_accuracies, params,
            executor="remote", cluster=executor, **kwargs,
        )
        _assert_bit_identical(ref, got)

    @pytest.mark.parametrize("reduce_mode", ["flat", "tree"])
    def test_hybrid_matches_serial(
        self,
        executor,
        example,
        example_probabilities,
        example_accuracies,
        params,
        reduce_mode,
    ):
        kwargs = dict(n_partitions=3, partition_by="work", reduce=reduce_mode)
        ref = detect_hybrid_parallel(
            example, example_probabilities, example_accuracies, params,
            executor="serial", **kwargs,
        )
        got = detect_hybrid_parallel(
            example, example_probabilities, example_accuracies, params,
            executor="remote", cluster=executor, **kwargs,
        )
        _assert_bit_identical(ref, got)

    def test_more_partitions_than_workers(
        self, executor, example, example_probabilities, example_accuracies,
        params,
    ):
        ref = detect_index_parallel(
            example, example_probabilities, example_accuracies, params,
            n_partitions=7, executor="serial", reduce="tree",
        )
        got = detect_index_parallel(
            example, example_probabilities, example_accuracies, params,
            n_partitions=7, executor="remote", reduce="tree", cluster=executor,
        )
        _assert_bit_identical(ref, got)

    def test_single_worker_matches_sequential(
        self, example, example_probabilities, example_accuracies, params
    ):
        ref = detect_index_parallel(
            example, example_probabilities, example_accuracies, params,
            n_partitions=3, executor="serial", reduce="tree",
        )
        with LocalCluster(1) as lc, lc.executor() as ex:
            got = detect_index_parallel(
                example, example_probabilities, example_accuracies, params,
                n_partitions=3, executor="remote", reduce="tree", cluster=ex,
            )
        _assert_bit_identical(ref, got)

    def test_remote_requires_numpy_backend(
        self, example, example_probabilities, example_accuracies
    ):
        with pytest.raises(ValueError, match="backend"):
            detect_index_parallel(
                example,
                example_probabilities,
                example_accuracies,
                CopyParams(backend="python"),
                n_partitions=2,
                executor="remote",
            )


@pytest.mark.cluster
class TestStats:
    def test_wire_and_timing_stats_populate(
        self, executor, example, example_probabilities, example_accuracies,
        params,
    ):
        detect_index_parallel(
            example, example_probabilities, example_accuracies, params,
            n_partitions=3, executor="remote", reduce="tree", cluster=executor,
        )
        stats = executor.stats
        assert stats.rounds >= 1
        assert stats.broadcast_bytes > 0
        assert stats.task_bytes > 0
        assert stats.result_bytes > 0
        assert sum(w.tasks for w in stats.workers.values()) >= 3
        assert sum(w.busy_seconds for w in stats.workers.values()) > 0
        payload = stats.as_dict()
        assert payload["rounds"] == stats.rounds
        assert "cluster:" in stats.summary()

    def test_broadcast_once_across_fusion_rounds(
        self, cluster, example, params
    ):
        from repro.core import SingleRoundDetector
        from repro.fusion import run_fusion
        from repro.fusion.pipeline import FusionConfig
        from repro.fusion.workspace import FusionWorkspace

        spec = ",".join(cluster.addresses)
        with FusionWorkspace(example, params) as ws:
            detector = SingleRoundDetector(
                params, method="index", n_partitions=3, executor="remote",
                reduce="tree", cluster=spec,
            )
            run_fusion(
                example, params, detector=detector,
                config=FusionConfig(max_rounds=3, min_rounds=3), workspace=ws,
            )
            ex = ws.cluster(parse_worker_spec(spec))
            assert ex.stats.rounds >= 3
            for label, worker in ex.stats.workers.items():
                # One full world frame per worker per session; later
                # rounds ship only the diff.
                assert worker.worlds == 1, label
                assert worker.updates >= 1, label
            assert ex.stats.update_bytes > 0

    def test_workspace_reuses_and_closes_executor(self, cluster, example, params):
        from repro.fusion.workspace import FusionWorkspace

        addresses = parse_worker_spec(",".join(cluster.addresses))
        ws = FusionWorkspace(example, params)
        first = ws.cluster(addresses)
        assert ws.cluster(addresses) is first
        ws.close()
        assert first.closed
        with pytest.raises(RuntimeError):
            ws.cluster(addresses)


@pytest.mark.cluster
class TestFaults:
    def _broadcast(self, ex, example, example_probabilities,
                   example_accuracies, params):
        index = _index(
            example, example_probabilities, example_accuracies, params
        )
        ex.broadcast(
            index.columnar_entries(),
            list(example_accuracies),
            example.n_sources,
        )
        parts = [
            p for p in partition_entries(index, 4, strategy="work")
            if p.positions
        ]
        positions = [np.asarray(p.positions, dtype=np.int64) for p in parts]
        weights = [partition_weights(index, p) for p in parts]
        return positions, weights

    def test_round_retries_on_surviving_worker(
        self, example, example_probabilities, example_accuracies, params
    ):
        with LocalCluster(2) as lc, lc.executor() as ex:
            positions, weights = self._broadcast(
                ex, example, example_probabilities, example_accuracies, params
            )
            baseline = ex.map_reduce(positions, weights, params, "tree")
            lc.kill_worker(0)
            retried = ex.map_reduce(positions, weights, params, "tree")
            assert ex.stats.retries >= 1
            assert retried.keys.tobytes() == baseline.keys.tobytes()
            assert retried.c_fwd.tobytes() == baseline.c_fwd.tobytes()
            assert retried.c_bwd.tobytes() == baseline.c_bwd.tobytes()

    def test_all_workers_dead_is_one_clear_error(
        self, example, example_probabilities, example_accuracies, params
    ):
        with LocalCluster(2) as lc, lc.executor() as ex:
            positions, weights = self._broadcast(
                ex, example, example_probabilities, example_accuracies, params
            )
            lc.kill_worker(0)
            lc.kill_worker(1)
            with pytest.raises(ClusterError) as excinfo:
                ex.map_reduce(positions, weights, params, "tree")
            # Transport failures surface as ClusterError, never as a raw
            # socket exception.
            assert not isinstance(excinfo.value, ConnectionError)

    def test_connect_to_nothing_raises_cluster_error(self):
        # Grab a port that is certainly not listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ClusterError, match="cannot connect"):
            ClusterExecutor([("127.0.0.1", port)], timeout=2.0)


@pytest.mark.cluster
class TestCli:
    @pytest.fixture(scope="class")
    def claims_csv(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cluster_cli")
        assert main(
            ["generate", "book_cs", "--scale", "0.05", "--seed", "5",
             "-o", str(out)]
        ) == 0
        return str(out / "claims.csv")

    def test_detect_remote_prints_cluster_stats(
        self, cluster, claims_csv, capsys
    ):
        code = main(
            ["detect", claims_csv, "--method", "index",
             "--n-partitions", "3", "--executor", "remote",
             "--workers", ",".join(cluster.addresses)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Copying detected" in out
        assert "cluster: 2 worker(s)" in out

    def test_fuse_remote_prints_cluster_stats(
        self, cluster, claims_csv, capsys
    ):
        code = main(
            ["fuse", claims_csv, "--method", "index", "--max-rounds", "3",
             "--n-partitions", "3", "--executor", "remote",
             "--workers", ",".join(cluster.addresses)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster: 2 worker(s)" in out

    def test_workers_from_environment(
        self, cluster, claims_csv, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_CLUSTER_WORKERS", ",".join(cluster.addresses)
        )
        code = main(
            ["detect", claims_csv, "--method", "index",
             "--n-partitions", "2", "--executor", "remote"]
        )
        assert code == 0
        assert "cluster:" in capsys.readouterr().out

    def test_remote_without_workers_fails_cleanly(
        self, claims_csv, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CLUSTER_WORKERS", raising=False)
        with pytest.raises(SystemExit):
            main(
                ["detect", claims_csv, "--method", "index",
                 "--n-partitions", "2", "--executor", "remote"]
            )
