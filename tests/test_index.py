"""Inverted index: Definition 3.2 invariants, tail, orderings, rescoring."""

import random

import pytest
from hypothesis import given

from repro.core import CopyParams, EntryOrdering, InvertedIndex
from tests.strategies import worlds


def _build(example, example_probabilities, example_accuracies, params, **kw):
    return InvertedIndex.build(
        example, example_probabilities, example_accuracies, params, **kw
    )


class TestConstruction:
    def test_entry_count_matches_table_iii(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _build(example, example_probabilities, example_accuracies, params)
        assert index.n_entries == 13

    def test_singleton_values_excluded(
        self, example, example_probabilities, example_accuracies, params
    ):
        """No entries for NJ.Union, AZ.Tucson, TX.Arlington (Example 3.3)."""
        index = _build(example, example_probabilities, example_accuracies, params)
        labels = {example.value_label[e.value_id] for e in index.entries}
        assert {"Union", "Tucson", "Arlington"}.isdisjoint(labels)

    def test_every_entry_has_two_providers(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _build(example, example_probabilities, example_accuracies, params)
        assert all(len(e.providers) >= 2 for e in index.entries)

    def test_tail_is_albany_and_austin(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Example 3.6: E-bar = {NY.Albany, TX.Austin} (.43 + .43 < 1.39)."""
        index = _build(example, example_probabilities, example_accuracies, params)
        tail_labels = {
            example.value_label[e.value_id] for e in index.entries[index.tail_start :]
        }
        assert tail_labels == {"Albany", "Austin"}

    def test_vector_length_validation(
        self, example, example_probabilities, example_accuracies, params
    ):
        with pytest.raises(ValueError):
            InvertedIndex.build(
                example, example_probabilities[:-1], example_accuracies, params
            )
        with pytest.raises(ValueError):
            InvertedIndex.build(
                example, example_probabilities, example_accuracies[:-1], params
            )

    def test_shared_item_counts(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _build(example, example_probabilities, example_accuracies, params)
        ids = {name: i for i, name in enumerate(example.source_names)}
        s2s3 = tuple(sorted((ids["S2"], ids["S3"])))
        assert index.shared_items[s2s3] == 5
        # S0: NJ, AZ, NY, TX; S9: NJ, FL, TX -> they share NJ and TX.
        s0s9 = tuple(sorted((ids["S0"], ids["S9"])))
        assert index.shared_items[s0s9] == 2


class TestOrdering:
    def test_by_contribution_descending(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _build(example, example_probabilities, example_accuracies, params)
        main = index.entries[: index.tail_start]
        scores = [e.score for e in main]
        assert scores == sorted(scores, reverse=True)

    def test_by_provider_ascending(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _build(
            example,
            example_probabilities,
            example_accuracies,
            params,
            ordering=EntryOrdering.BY_PROVIDER,
        )
        main = index.entries[: index.tail_start]
        counts = [len(e.providers) for e in main]
        assert counts == sorted(counts)

    def test_random_is_seeded(
        self, example, example_probabilities, example_accuracies, params
    ):
        a = _build(
            example,
            example_probabilities,
            example_accuracies,
            params,
            ordering=EntryOrdering.RANDOM,
            rng=random.Random(42),
        )
        b = _build(
            example,
            example_probabilities,
            example_accuracies,
            params,
            ordering=EntryOrdering.RANDOM,
            rng=random.Random(42),
        )
        assert [e.value_id for e in a.entries] == [e.value_id for e in b.entries]

    def test_orderings_share_tail(
        self, example, example_probabilities, example_accuracies, params
    ):
        """The tail is score-defined, independent of the processing order."""
        tails = []
        for ordering in EntryOrdering:
            index = _build(
                example,
                example_probabilities,
                example_accuracies,
                params,
                ordering=ordering,
            )
            tails.append(
                {e.value_id for e in index.entries[index.tail_start :]}
            )
        assert tails[0] == tails[1] == tails[2]


class TestSuffixMax:
    @given(world=worlds())
    def test_suffix_max_invariant(self, world):
        dataset, probs, accs = world
        params = CopyParams()
        index = InvertedIndex.build(dataset, probs, accs, params)
        for pos in range(index.n_entries):
            remaining = [e.score for e in index.entries[pos:]]
            assert index.suffix_max[pos] == pytest.approx(max(remaining))
        assert index.suffix_max[index.n_entries] == 0.0

    def test_m_is_next_entry_score_under_by_contribution(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Proposition 3.4: with score ordering, M = the next entry's score."""
        index = _build(example, example_probabilities, example_accuracies, params)
        main = index.entries[: index.tail_start]
        for pos in range(len(main) - 1):
            assert index.suffix_max[pos + 1] == pytest.approx(main[pos + 1].score)


class TestRescore:
    def test_rescore_matches_fresh_build(
        self, example, example_probabilities, example_accuracies, params
    ):
        index = _build(example, example_probabilities, example_accuracies, params)
        new_probs = [min(p + 0.01, 0.99) for p in example_probabilities]
        scores = index.rescore(new_probs, example_accuracies, params)
        fresh = InvertedIndex.build(example, new_probs, example_accuracies, params)
        fresh_by_value = {e.value_id: e.score for e in fresh.entries}
        for entry, score in zip(index.entries, scores):
            assert score == pytest.approx(fresh_by_value[entry.value_id])

    def test_pairs_in_main(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Example 3.6: 26 pairs occur in entries outside E-bar."""
        index = _build(example, example_probabilities, example_accuracies, params)
        assert len(index.pairs_in_main()) == 26
