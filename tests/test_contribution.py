"""Contribution scores (Eqs. 3-8) and the copying posterior (Eq. 2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    CopyParams,
    different_value_score,
    no_copy_probability,
    posterior,
    pr_independent,
    pr_single,
    same_value_score,
    same_value_scores_both,
)
from tests.strategies import accuracies, probabilities


class TestEquation3:
    def test_known_value_from_example_2_1(self):
        """Example 2.1 denominator: .01*.2*.2 + .99*.8*.8/50."""
        value = pr_independent(0.01, 0.2, 0.2, 50)
        assert value == pytest.approx(0.01 * 0.04 + 0.99 * 0.64 / 50)

    @given(p=probabilities, a1=accuracies, a2=accuracies)
    def test_is_probability(self, p, a1, a2):
        value = pr_independent(p, a1, a2, 50)
        assert 0.0 < value < 1.0

    @given(p=probabilities, a1=accuracies, a2=accuracies)
    def test_symmetric(self, p, a1, a2):
        assert pr_independent(p, a1, a2, 50) == pytest.approx(
            pr_independent(p, a2, a1, 50)
        )


class TestEquation4:
    def test_known_value(self):
        assert pr_single(0.01, 0.2) == pytest.approx(0.01 * 0.2 + 0.99 * 0.8)

    @given(p=probabilities, a=accuracies)
    def test_is_probability(self, p, a):
        assert 0.0 < pr_single(p, a) < 1.0


class TestSameValueScore:
    def test_example_2_1(self, params):
        """Sharing NJ.Atlantic (P=.01) between two .2-accuracy sources: 3.89."""
        assert same_value_score(0.01, 0.2, 0.2, params) == pytest.approx(3.89, abs=0.01)

    def test_example_3_3_table_iii(self, params):
        """NJ.Atlantic's index score 4.12 comes from the (S4, S3) pair."""
        assert same_value_score(0.01, 0.4, 0.2, params) == pytest.approx(4.12, abs=0.01)

    @given(p=probabilities, a1=accuracies, a2=accuracies)
    def test_nonnegative(self, p, a1, a2):
        """Sharing a value is never evidence against copying (Section II)."""
        params = CopyParams()
        assert same_value_score(p, a1, a2, params) >= 0.0

    @given(
        a1=st.floats(min_value=0.05, max_value=0.95),
        a2=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_decreasing_in_probability(self, a1, a2):
        """Sharing a *false* value is stronger evidence ([6], restated in II-A).

        The claim needs non-degenerate accuracies: below ``1/(n+1)`` a
        source is so error-prone that sharing a *true* value becomes the
        stronger signal, flipping the monotonicity (hypothesis found the
        counterexample at accuracy 0.016 with n = 50).
        """
        params = CopyParams()
        low = same_value_score(0.05, a1, a2, params)
        high = same_value_score(0.95, a1, a2, params)
        assert low >= high

    @given(p=probabilities, a1=accuracies, a2=accuracies)
    def test_both_matches_single(self, p, a1, a2):
        params = CopyParams()
        fwd, bwd = same_value_scores_both(p, a1, a2, params)
        assert fwd == pytest.approx(same_value_score(p, a1, a2, params))
        assert bwd == pytest.approx(same_value_score(p, a2, a1, params))


class TestDifferentValueScore:
    def test_is_ln_one_minus_s(self, params):
        assert different_value_score(params) == pytest.approx(math.log(0.2))

    def test_negative(self, params):
        assert different_value_score(params) < 0.0


class TestPosterior:
    def test_example_2_1_copying(self, params):
        """C-> = C<- = 11.58 gives Pr(indep) = .00004."""
        assert no_copy_probability(11.58, 11.58, params) == pytest.approx(
            0.00004, abs=1e-5
        )

    def test_example_2_1_independent(self, params):
        """C-> = C<- = .04 gives Pr(indep) = .79."""
        assert no_copy_probability(0.04, 0.04, params) == pytest.approx(0.79, abs=0.01)

    def test_zero_scores_give_prior(self, params):
        """With no evidence the posterior equals the prior beta/(beta+2 alpha)."""
        expected = params.beta / (params.beta + 2 * params.alpha)
        assert no_copy_probability(0.0, 0.0, params) == pytest.approx(expected)

    def test_overflow_safe(self, params):
        """Eq. (2) must survive scores far beyond exp overflow (~709)."""
        post = posterior(5000.0, 4000.0, params)
        assert post.independent == pytest.approx(0.0, abs=1e-12)
        assert post.forward == pytest.approx(1.0, abs=1e-12)

    def test_overflow_safe_negative(self, params):
        post = posterior(-5000.0, -5000.0, params)
        assert post.independent == pytest.approx(1.0, abs=1e-12)

    @given(
        c_fwd=st.floats(min_value=-200, max_value=200),
        c_bwd=st.floats(min_value=-200, max_value=200),
    )
    def test_sums_to_one(self, c_fwd, c_bwd):
        params = CopyParams()
        post = posterior(c_fwd, c_bwd, params)
        assert post.independent + post.forward + post.backward == pytest.approx(1.0)
        assert post.independent >= 0 and post.forward >= 0 and post.backward >= 0

    def test_copying_decision_boundary(self, params):
        """Copying iff Pr(indep) <= .5; theta_cp on one side forces it."""
        post = posterior(params.theta_cp, -100.0, params)
        assert post.independent <= 0.5 + 1e-12
        assert post.copying

    def test_monotone_in_scores(self, params):
        low = no_copy_probability(1.0, 1.0, params)
        high = no_copy_probability(2.0, 2.0, params)
        assert high < low
