"""Golden-fixture builder for the bound scans (and its regen entry point).

``tests/data/golden_bound.json`` freezes the *complete* observable
outcome — verdicts, exact scores (as ``float.hex`` strings, so the round
trip is bit-exact), posteriors, cost counters, and the HYBRID
preparation round's INCREMENTAL bookkeeping — of every bound-family
method on a small deterministic synthetic world.  The companion test in
``tests/test_bound_backend.py`` diffs both backends against the fixture,
catching *any* silent behaviour drift during the numpy-backend soak.

Regenerate (only after an intentional behaviour change)::

    PYTHONPATH=src:. python tests/make_golden_bound.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import CopyParams, detect, detect_hybrid
from repro.fusion import vote_probabilities
from repro.synth.generator import GeneratorConfig, generate

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_bound.json"

WORLD_CONFIG = GeneratorConfig(
    n_items=40,
    n_independent_sources=12,
    n_copier_groups=2,
    copiers_per_group=2,
    seed=7,
)

METHODS = ("bound", "bound+", "hybrid")


def golden_world():
    """The fixture's deterministic detection problem."""
    world = generate(WORLD_CONFIG)
    dataset = world.dataset
    probabilities = vote_probabilities(dataset)
    # Deterministic, non-uniform accuracies: exercises the per-source
    # clamped terms without relying on fusion state.
    accuracies = [0.55 + 0.1 * (source % 4) for source in range(dataset.n_sources)]
    return dataset, probabilities, accuracies


def _decision_row(pair, decision) -> dict:
    return {
        "pair": list(pair),
        "c_fwd": decision.c_fwd.hex(),
        "c_bwd": decision.c_bwd.hex(),
        "independent": decision.posterior.independent.hex(),
        "forward": decision.posterior.forward.hex(),
        "backward": decision.posterior.backward.hex(),
        "copying": decision.copying,
        "early": decision.early,
    }


def golden_payload(backend: str) -> dict:
    """Full bound-family outcome for one backend, JSON-ready."""
    dataset, probabilities, accuracies = golden_world()
    params = CopyParams(backend=backend)
    payload: dict = {"backend": backend, "methods": {}}
    for method in METHODS:
        result = detect(dataset, probabilities, accuracies, params, method=method)
        payload["methods"][method] = {
            "decisions": [
                _decision_row(pair, decision)
                for pair, decision in sorted(result.decisions.items())
            ],
            "cost": {
                "computations": result.cost.computations,
                "values_examined": result.cost.values_examined,
                "pairs_considered": result.cost.pairs_considered,
            },
        }
    outcome = detect_hybrid(
        dataset, probabilities, accuracies, params, track_bookkeeping=True
    )
    payload["hybrid_bookkeeping"] = [
        {
            "pair": list(pair),
            "copying": book.copying,
            "early": book.early,
            "c_base_fwd": book.c_base_fwd.hex(),
            "c_base_bwd": book.c_base_bwd.hex(),
            "decision_pos": book.decision_pos,
            "n_before": book.n_before,
            "n_after": book.n_after,
            "l": book.l,
        }
        for pair, book in sorted(outcome.bookkeeping.items())
    ]
    return payload


def main() -> int:
    payload = golden_payload("python")
    del payload["backend"]  # the fixture is backend-agnostic: both must match
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=None, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    n_pairs = len(payload["methods"]["bound"]["decisions"])
    print(f"wrote {GOLDEN_PATH} ({n_pairs} pairs per method)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
