"""Text fingerprinting: sketch properties and the structured-data gap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fingerprint import (
    brin_chunks,
    detect_document_copies,
    mod_k_sketch,
    qgram_fingerprints,
    serialize_source,
    sketch_containment,
    sketch_resemblance,
    winnow,
)

tokens = st.lists(st.sampled_from("abcdefgh"), min_size=0, max_size=60)


class TestQGrams:
    def test_count(self):
        assert len(qgram_fingerprints(list("abcdef"), 3)) == 4

    def test_short_input_empty(self):
        assert qgram_fingerprints(["a"], 3) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgram_fingerprints(["a"], 0)

    def test_deterministic(self):
        assert qgram_fingerprints(list("abcd"), 2) == qgram_fingerprints(
            list("abcd"), 2
        )

    @given(toks=tokens)
    def test_identical_inputs_identical_grams(self, toks):
        assert qgram_fingerprints(toks, 3) == qgram_fingerprints(list(toks), 3)


class TestSketches:
    @given(toks=tokens)
    def test_mod_k_subset_of_full(self, toks):
        full = set(qgram_fingerprints(toks, 3))
        assert mod_k_sketch(toks, 3, 4) <= full

    def test_mod_k_invalid(self):
        with pytest.raises(ValueError):
            mod_k_sketch(list("abc"), 2, 0)

    @given(toks=tokens)
    def test_winnow_subset_of_full(self, toks):
        full = set(qgram_fingerprints(toks, 3))
        assert winnow(toks, 3, 4) <= full

    def test_winnow_invalid_window(self):
        with pytest.raises(ValueError):
            winnow(list("abc"), 2, 0)

    def test_winnow_guarantee(self):
        """A shared run of >= window + q - 1 tokens yields a shared print."""
        q, window = 3, 4
        shared = list("commonfragment")  # 14 tokens >= 4 + 3 - 1
        doc_a = list("xxxx") + shared + list("yyyy")
        doc_b = list("pqrs") + shared + list("tuvw")
        assert winnow(doc_a, q, window) & winnow(doc_b, q, window)

    @given(toks=tokens)
    def test_brin_chunks_cover_document(self, toks):
        sketch = brin_chunks(toks, 3)
        if toks:
            assert sketch
        else:
            assert sketch == set()


class TestSimilarity:
    def test_resemblance_identical(self):
        assert sketch_resemblance({1, 2}, {1, 2}) == 1.0

    def test_resemblance_disjoint(self):
        assert sketch_resemblance({1}, {2}) == 0.0

    def test_resemblance_empty(self):
        assert sketch_resemblance(set(), set()) == 0.0

    def test_containment_asymmetric(self):
        assert sketch_containment({1}, {1, 2, 3}) == 1.0
        assert sketch_containment({1, 2, 3}, {1}) == pytest.approx(1 / 3)

    def test_containment_empty(self):
        assert sketch_containment(set(), {1}) == 0.0


class TestDocumentCopies:
    def test_finds_verbatim_copy(self):
        base = list("thequickbrownfoxjumpsoverthelazydog")
        docs = [base, list(base), list("completelydifferentcontenthere!!")]
        matches = detect_document_copies(docs, q=3, window=3, threshold=0.5)
        assert any({m.doc_a, m.doc_b} == {0, 1} for m in matches)
        assert not any(2 in {m.doc_a, m.doc_b} for m in matches)

    def test_empty_documents(self):
        assert detect_document_copies([[], []]) == []


class TestStructuredSerialization:
    def test_aligned_order_sorted_by_item(self, example):
        toks = serialize_source(example, 0, order="aligned")
        items = [t.split("=")[0] for t in toks]
        assert items == sorted(items, key=example.item_names.index)

    def test_native_order_deterministic(self, example):
        a = serialize_source(example, 2, order="native", seed=1)
        b = serialize_source(example, 2, order="native", seed=1)
        assert a == b

    def test_native_orders_differ_across_sources(self):
        """With enough items, two sources' native orders disagree."""
        from repro.synth import stock_1day

        world = stock_1day(scale=0.01)
        ds = world.dataset
        a = [t.split("=")[0] for t in serialize_source(ds, 0, order="native")]
        b = [t.split("=")[0] for t in serialize_source(ds, 1, order="native")]
        common = [x for x in a if x in set(b)]
        common_b = [x for x in b if x in set(a)]
        assert common != common_b  # different relative order

    def test_paper_motivation_alignment_matters(self):
        """Winnowing sees the copier when sources serialise in the same
        order, and (the paper's point) loses most of the signal when each
        source uses its own order."""
        from repro.synth import GeneratorConfig, generate

        world = generate(
            GeneratorConfig(
                n_items=300,
                n_independent_sources=4,
                coverage_range=(0.9, 1.0),
                n_copier_groups=1,
                copiers_per_group=1,
                copy_selectivity=0.9,
                seed=3,
            )
        )
        ds = world.dataset
        names = ds.source_names
        copier, original = next(iter(world.copy_pairs))
        c_id, o_id = names.index(copier), names.index(original)

        def containment(order):
            doc_c = winnow(serialize_source(ds, c_id, order=order), 4, 4)
            doc_o = winnow(serialize_source(ds, o_id, order=order), 4, 4)
            return sketch_containment(doc_c, doc_o)

        assert containment("aligned") > 3 * containment("native")
