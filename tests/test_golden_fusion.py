"""Golden fusion fixtures: the reference loop is frozen byte-for-byte.

Companion to ``tests/make_golden_fusion.py``.  The fixture is computed
with the reference backend pinned explicitly, so these tests prove two
things at once: the pure-Python fusion loop has not drifted, and the
library's *default* backend (now ``"numpy"``) cannot leak into code that
asks for the reference — the flip is inert for ``backend="python"``.
"""

import json

import pytest

from repro.core import CopyParams
from repro.fusion import FusionConfig, run_fusion

from tests.make_golden_fusion import (
    GOLDEN_PATH,
    METHODS,
    ROUNDS,
    _detector,
    golden_payload,
    golden_world,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenFusion:
    def test_reference_matches_fixture_exactly(self, golden):
        """Regenerating under backend='python' reproduces the committed
        fixture byte-for-byte (float.hex round trip included)."""
        assert golden_payload() == golden

    def test_fixture_is_nontrivial(self, golden):
        assert set(golden["methods"]) == set(METHODS)
        for method, payload in golden["methods"].items():
            assert payload["n_rounds"] == 5
            assert payload["chosen"]
            assert len(payload["accuracies"]) == 16
            if method != "none":
                # Detection ran: the planted copiers must be caught in
                # at least one round.
                assert any(pairs for pairs in payload["round_copying"])

    @pytest.mark.parametrize("method", METHODS)
    def test_numpy_backend_agrees_on_the_golden_world(self, golden, method):
        """The vectorized stack reproduces the frozen truths and verdicts
        (scores within the kernels' 1e-9 re-association bound)."""
        pytest.importorskip("numpy")
        dataset = golden_world()
        params = CopyParams(backend="numpy")
        result = run_fusion(
            dataset,
            params,
            detector=_detector(method, params),
            config=ROUNDS,
            fusion_backend="numpy",
        )
        frozen = golden["methods"][method]
        assert [[i, v] for i, v in sorted(result.chosen.items())] == frozen["chosen"]
        assert result.converged == frozen["converged"]
        # End-state accuracies are compared at 1e-6, not the kernels'
        # per-step 1e-9: five rounds of feedback through the detectors
        # amplify re-association error (measured ~9e-8 on this world for
        # the bound-family methods).  Per-step 1e-9 conformance along
        # real trajectories is enforced by the conformance engine's
        # lockstep fusion mode; truths and verdicts stay exact here.
        for got, frozen_hex in zip(result.accuracies, frozen["accuracies"]):
            assert got == pytest.approx(float.fromhex(frozen_hex), abs=1e-6)
        got_rounds = [
            sorted(list(pair) for pair in (
                record.detection.copying_pairs() if record.detection else set()
            ))
            for record in result.rounds
        ]
        assert got_rounds == frozen["round_copying"]

    def test_pinned_rounds_never_converge(self):
        """The fixture's schedule assumption: tolerance 0 pins 5 rounds."""
        assert ROUNDS.max_rounds == ROUNDS.min_rounds == 5
        assert ROUNDS.tolerance == 0.0
        assert isinstance(ROUNDS, FusionConfig)
