"""The verdict-serving layer: codec robustness, store lifecycle, reader API.

Covers the tentpole's guarantees end to end:

* every way a snapshot file can be bad (truncation, corruption, foreign
  bytes, a newer format version) surfaces as ``ServingError`` — never a
  raw codec traceback;
* full + delta publishing round-trips through ``VerdictStore`` and the
  chain resolver;
* the ``VerdictReader`` API semantics (unobserved pairs, label lookups,
  self-pair/out-of-range errors, LRU behaviour across ``refresh()``);
* reads stay consistent — verified per ``snapshot_id`` — while a writer
  republishes concurrently;
* INCREMENTAL delta snapshots rewrite exactly the re-opened/rebuilt
  pairs reported by the bookkeeping;
* dense and sparse ``pair_layout`` detections serialize to identical
  store rows;
* the ``run_fusion(snapshot_store=)`` hook and the
  ``serve-snapshot`` / ``query`` CLI round trip.
"""

from __future__ import annotations

import json
import random
import struct
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core import CopyParams, IncrementalDetector, detect, posterior
from repro.core.result import DetectionResult, PairDecision
from repro.data import save_claims
from repro.fusion import FusionConfig, run_fusion, vote_probabilities
from repro.serving import (
    FLAG_COPYING,
    FORMAT_VERSION,
    ItemRows,
    PairRows,
    ServingError,
    SnapshotPublisher,
    VerdictReader,
    VerdictStore,
    decode_snapshot,
    encode_snapshot,
    read_snapshot_file,
)
from repro.synth import make_profile


def _decision(params: CopyParams, c_fwd: float, c_bwd: float) -> PairDecision:
    post = posterior(c_fwd, c_bwd, params)
    return PairDecision(
        c_fwd=c_fwd, c_bwd=c_bwd, posterior=post, copying=post.copying, early=False
    )


def _result(decisions: dict, n_sources: int) -> DetectionResult:
    return DetectionResult(
        method="test", n_sources=n_sources, decisions=dict(decisions)
    )


@pytest.fixture(scope="module")
def world():
    return make_profile("book_cs", scale=0.05, seed=11)


# ----------------------------------------------------------------------
# Codec robustness (satellite: truncated/corrupted/newer all ServingError)
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.fixture(scope="class")
    def sample(self) -> bytes:
        return encode_snapshot(
            {"snapshot_id": 3, "kind": "full", "n_sources": 4},
            {
                "keys": np.arange(5, dtype=np.int64),
                "scores": np.linspace(0.0, 1.0, 3),
                "flags": np.array([1, 0, 2], dtype=np.uint8),
            },
        )

    def test_roundtrip(self, sample):
        meta, arrays = decode_snapshot(sample)
        assert meta["snapshot_id"] == 3
        assert np.array_equal(arrays["keys"], np.arange(5))
        assert np.allclose(arrays["scores"], [0.0, 0.5, 1.0])
        assert arrays["flags"].dtype == np.uint8

    def test_decoded_arrays_are_read_only(self, sample):
        _, arrays = decode_snapshot(sample)
        with pytest.raises(ValueError):
            arrays["keys"][0] = 99

    def test_every_truncation_is_a_serving_error(self, sample):
        # No prefix of a valid snapshot may decode — and none may leak a
        # struct/json/numpy traceback.
        for cut in range(len(sample)):
            with pytest.raises(ServingError):
                decode_snapshot(sample[:cut])

    def test_bad_magic(self, sample):
        with pytest.raises(ServingError, match="not a verdict snapshot"):
            decode_snapshot(b"ZZZZ" + sample[4:])

    def test_newer_format_version_refused(self, sample):
        _, _, header_len = struct.unpack_from("<4sII", sample)
        doctored = (
            struct.pack("<4sII", b"RVSS", FORMAT_VERSION + 1, header_len)
            + sample[12:]
        )
        with pytest.raises(ServingError, match="newer than this build"):
            decode_snapshot(doctored)

    def test_corrupted_header_is_a_serving_error(self, sample):
        corrupted = bytearray(sample)
        corrupted[14] ^= 0xFF  # inside the JSON header
        with pytest.raises(ServingError):
            decode_snapshot(bytes(corrupted))

    def test_corrupted_payload_fails_checksum(self, sample):
        corrupted = bytearray(sample)
        corrupted[-1] ^= 0xFF
        with pytest.raises(ServingError, match="checksum"):
            decode_snapshot(bytes(corrupted))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ServingError, match="cannot read"):
            read_snapshot_file(tmp_path / "nope.rvs")


# ----------------------------------------------------------------------
# Store lifecycle: full + delta publishing, chain resolution, robustness
# ----------------------------------------------------------------------
class TestStore:
    def test_missing_store_directory(self, tmp_path):
        with pytest.raises(ServingError, match="not found"):
            VerdictStore(tmp_path / "absent", create=False)

    def test_empty_store_has_no_current(self, tmp_path):
        store = VerdictStore(tmp_path)
        assert store.current_id() is None
        with pytest.raises(ServingError, match="no published snapshot"):
            VerdictReader(store)

    def test_corrupted_current_pointer(self, tmp_path):
        store = VerdictStore(tmp_path)
        (tmp_path / "CURRENT").write_text("not json")
        with pytest.raises(ServingError, match="CURRENT"):
            store.current_id()

    def test_full_snapshot_roundtrip(self, tmp_path, params):
        store = VerdictStore(tmp_path)
        decisions = {(0, 1): _decision(params, 5.0, 4.0)}
        pairs = PairRows.from_decisions(decisions, 3)
        sid = store.write_full(pairs, ItemRows.empty(), n_sources=3, method="t")
        assert store.current_id() == sid
        meta, arrays = store.load(sid)
        assert meta["kind"] == "full"
        assert meta["n_sources"] == 3
        back = PairRows.from_arrays(arrays)
        assert back.keys.tolist() == [1]  # 0 * 3 + 1
        assert back.c_fwd[0] == 5.0

    def test_truncated_store_file_is_a_serving_error(self, tmp_path, params):
        store = VerdictStore(tmp_path)
        pairs = PairRows.from_decisions({(0, 1): _decision(params, 5.0, 4.0)}, 3)
        sid = store.write_full(pairs, ItemRows.empty(), n_sources=3)
        path = store.snapshot_path(sid)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ServingError, match="truncated"):
            VerdictReader(store)

    def test_newer_versioned_snapshot_in_store(self, tmp_path, params):
        store = VerdictStore(tmp_path)
        pairs = PairRows.from_decisions({(0, 1): _decision(params, 5.0, 4.0)}, 3)
        sid = store.write_full(pairs, ItemRows.empty(), n_sources=3)
        path = store.snapshot_path(sid)
        data = path.read_bytes()
        _, _, header_len = struct.unpack_from("<4sII", data)
        path.write_bytes(
            struct.pack("<4sII", b"RVSS", FORMAT_VERSION + 7, header_len)
            + data[12:]
        )
        with pytest.raises(ServingError, match="newer than this build"):
            VerdictReader(store)

    def test_delta_chain_with_missing_base(self, tmp_path, example, params):
        pub = SnapshotPublisher(tmp_path, example)
        probs = [0.9] * len(example.value_item)
        decisions = {
            (s1, s2): _decision(params, 5.0 - s2, 4.0 - s1)
            for s1 in range(3)
            for s2 in range(s1 + 1, 5)
        }
        sid1 = pub.publish_round(1, _result(decisions, example.n_sources), probs)
        decisions[(0, 1)] = _decision(params, 6.0, 4.0)
        sid2 = pub.publish_round(2, _result(decisions, example.n_sources), probs)
        store = VerdictStore(tmp_path)
        assert store.load(sid2)[0]["kind"] == "delta"
        store.snapshot_path(sid1).unlink()
        with pytest.raises(ServingError, match="not found"):
            VerdictReader(store)


# ----------------------------------------------------------------------
# Reader API semantics + LRU behaviour across refresh
# ----------------------------------------------------------------------
class TestReader:
    @pytest.fixture()
    def published(self, tmp_path, example, params):
        probs = [0.9] * len(example.value_item)
        decisions = {
            (0, 1): _decision(params, 5.0, 4.0),
            (2, 5): _decision(params, -3.0, -4.0),
        }
        pub = SnapshotPublisher(tmp_path, example)
        pub.publish_round(1, _result(decisions, example.n_sources), probs)
        return tmp_path, pub, decisions, probs

    def test_get_verdict_matches_decisions(self, published, params):
        path, _, decisions, _ = published
        reader = VerdictReader(path)
        for (s1, s2), dec in decisions.items():
            for a, b in ((s1, s2), (s2, s1)):  # any order
                v = reader.get_verdict(a, b)
                assert (v.source_1, v.source_2) == (s1, s2)
                assert v.copying == dec.copying
                assert v.c_fwd == dec.c_fwd
                assert v.forward == dec.posterior.forward
                assert v.snapshot_id == reader.snapshot_id

    def test_unobserved_pair_is_none(self, published):
        reader = VerdictReader(published[0])
        assert reader.get_verdict(3, 4) is None

    def test_self_pair_and_out_of_range(self, published):
        reader = VerdictReader(published[0])
        with pytest.raises(ValueError, match="distinct"):
            reader.get_verdict(2, 2)
        with pytest.raises(ValueError, match="out of range"):
            reader.get_verdict(0, reader.n_sources)
        with pytest.raises(ValueError, match="out of range"):
            reader.get_verdict(-1, 1)

    def test_get_truth_by_id_and_name(self, published, example):
        reader = VerdictReader(published[0])
        truth = reader.get_truth(0)
        assert truth.item == 0
        assert truth.item_name == example.item_names[0]
        assert truth.value_label == example.value_label[truth.value]
        assert truth.supporters  # provenance present
        assert reader.get_truth(example.item_names[0]) == truth
        assert reader.get_truth("no-such-item") is None

    def test_top_copiers_sorted_descending(self, published):
        reader = VerdictReader(published[0])
        top = reader.top_copiers(10)
        scores = [c.score for c in top]
        assert scores == sorted(scores, reverse=True)
        assert all(c.score > 0 for c in top)

    def test_lru_cache_hits_and_refresh_invalidation(
        self, published, example, params
    ):
        path, pub, decisions, probs = published
        reader = VerdictReader(path)
        first = reader.get_verdict(0, 1)
        again = reader.get_verdict(0, 1)
        assert again is first  # served from the view's LRU
        assert reader.cache_info()["verdict_cache"].hits >= 1

        changed = dict(decisions)
        changed[(0, 1)] = _decision(params, 9.0, 4.0)
        pub.publish_round(2, _result(changed, example.n_sources), probs)
        assert reader.refresh() is True
        assert reader.refresh() is False  # already current
        after = reader.get_verdict(0, 1)
        assert after.c_fwd == 9.0  # not the cached pre-refresh entry
        assert after.snapshot_id != first.snapshot_id


# ----------------------------------------------------------------------
# Concurrent refresh: every read consistent with its snapshot version
# ----------------------------------------------------------------------
class TestConcurrentRefresh:
    def _rounds(self, params, n_sources, n_rounds=8, seed=5):
        rng = random.Random(seed)
        all_keys = [
            (i, j) for i in range(n_sources) for j in range(i + 1, n_sources)
        ]
        current = {
            key: _decision(params, rng.uniform(-5, 8), rng.uniform(-5, 8))
            for key in rng.sample(all_keys, 20)
        }
        rounds = [dict(current)]
        for _ in range(n_rounds - 1):
            for key in rng.sample(sorted(current), 5):
                current[key] = _decision(
                    params, rng.uniform(-5, 8), rng.uniform(-5, 8)
                )
            rounds.append(dict(current))
        return all_keys, rounds

    def test_reads_verify_against_their_snapshot(
        self, tmp_path, example, params
    ):
        probs = [0.9] * len(example.value_item)
        n = example.n_sources
        all_keys, rounds = self._rounds(params, n)

        # Dry run into a scratch store to learn the exact per-snapshot
        # state (ids are sequential, so the live store reproduces them).
        scratch = SnapshotPublisher(tmp_path / "scratch", example)
        states: dict[int, dict[int, tuple[bool, float]]] = {}
        for round_no, decisions in enumerate(rounds):
            sid = scratch.publish_round(round_no, _result(decisions, n), probs)
            prev = scratch.prev_pairs
            states[sid] = {
                int(k): (bool(f & FLAG_COPYING), float(cf))
                for k, f, cf in zip(prev.keys, prev.flags, prev.c_fwd)
            }
        last_sid = max(states)

        live = SnapshotPublisher(tmp_path / "live", example)
        live.publish_round(0, _result(rounds[0], n), probs)
        reader = VerdictReader(tmp_path / "live")
        errors: list[str] = []
        seen_ids: set[int] = set()

        def writer():
            for round_no, decisions in enumerate(rounds[1:], start=1):
                time.sleep(0.003)
                live.publish_round(round_no, _result(decisions, n), probs)

        def read_loop():
            i = 0
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if i % 7 == 0:
                    reader.refresh()
                s1, s2 = all_keys[i % len(all_keys)]
                i += 1
                verdict = reader.get_verdict(s1, s2)
                key = s1 * n + s2
                if verdict is None:
                    if key in states[last_sid]:
                        errors.append(f"missing verdict for observed pair {key}")
                        return
                    continue
                seen_ids.add(verdict.snapshot_id)
                expected = states[verdict.snapshot_id].get(key)
                if expected is None:
                    errors.append(
                        f"pair {key} served but absent from snapshot "
                        f"{verdict.snapshot_id}"
                    )
                    return
                if (verdict.copying, verdict.c_fwd) != expected:
                    errors.append(
                        f"inconsistent read of pair {key} at snapshot "
                        f"{verdict.snapshot_id}: got "
                        f"{(verdict.copying, verdict.c_fwd)}, expected {expected}"
                    )
                    return
                if reader.snapshot_id == last_sid and i > 3 * len(all_keys):
                    return

        write_thread = threading.Thread(target=writer)
        read_thread = threading.Thread(target=read_loop)
        write_thread.start()
        read_thread.start()
        write_thread.join()
        read_thread.join()
        assert errors == []
        assert reader.refresh() is False or reader.snapshot_id == last_sid
        reader.refresh()
        assert reader.snapshot_id == last_sid


# ----------------------------------------------------------------------
# INCREMENTAL deltas rewrite exactly the re-opened/rebuilt pairs
# ----------------------------------------------------------------------
class TestIncrementalDeltas:
    def test_delta_rows_equal_changed_pairs(self, tmp_path, world):
        params = CopyParams()
        detector = IncrementalDetector(params)
        result = run_fusion(
            world.dataset,
            params,
            detector=detector,
            config=FusionConfig(max_rounds=6),
            snapshot_store=tmp_path,
        )
        assert result.snapshot_ids  # one per round
        store = VerdictStore(tmp_path)
        n = world.dataset.n_sources
        previous = None
        for record, sid in zip(result.rounds, result.snapshot_ids):
            meta, arrays = store.load(sid)
            if meta["kind"] == "delta":
                delta = record.detection.decision_delta(previous)
                expected = sorted(
                    s1 * n + s2 for s1, s2 in delta.changed
                )
                assert arrays["pair_keys"].tolist() == expected
            previous = record.detection
        # Later rounds change few pairs, so real deltas must appear.
        kinds = [store.load(sid)[0]["kind"] for sid in result.snapshot_ids]
        assert "delta" in kinds

    def test_changed_pairs_excludes_pass1_confirmations(self, world):
        params = CopyParams()
        detector = IncrementalDetector(params)
        result = run_fusion(
            world.dataset,
            params,
            detector=detector,
            config=FusionConfig(max_rounds=6),
        )
        last = result.rounds[-1].detection
        assert last.changed_pairs is not None
        assert set(last.changed_pairs) <= set(last.decisions)
        # The whole point: most pairs re-confirm in pass 1 and stay out.
        assert len(last.changed_pairs) < len(last.decisions)


# ----------------------------------------------------------------------
# Dense and sparse pair_layout serialize to the same store rows
# ----------------------------------------------------------------------
class TestLayoutParity:
    def test_dense_and_sparse_store_identically(self, tmp_path, world):
        dataset = world.dataset
        probs = vote_probabilities(dataset)
        accs = [0.8] * dataset.n_sources
        stores = {}
        for layout in ("dense", "sparse"):
            params = CopyParams(backend="numpy", pair_layout=layout)
            detection = detect(
                dataset, probs, accs, params, method="hybrid"
            )
            pub = SnapshotPublisher(tmp_path / layout, dataset)
            sid = pub.publish_round(1, detection, probs)
            stores[layout] = VerdictStore(tmp_path / layout).load(sid)
        meta_dense, arrays_dense = stores["dense"]
        meta_sparse, arrays_sparse = stores["sparse"]
        assert meta_dense["n_pairs"] == meta_sparse["n_pairs"] > 0
        assert set(arrays_dense) == set(arrays_sparse)
        for name, arr in arrays_dense.items():
            assert np.array_equal(arr, arrays_sparse[name]), name


# ----------------------------------------------------------------------
# Pipeline hook + CLI round trip
# ----------------------------------------------------------------------
class TestPipelineHook:
    def test_run_fusion_publishes_servable_snapshots(self, tmp_path, world):
        params = CopyParams()
        result = run_fusion(
            world.dataset,
            params,
            detector=IncrementalDetector(params),
            config=FusionConfig(max_rounds=5),
            snapshot_store=tmp_path,
        )
        assert len(result.snapshot_ids) == result.n_rounds
        reader = VerdictReader(tmp_path)
        final = result.final_detection()
        served_pairs = 0
        for (s1, s2), decision in final.decisions.items():
            verdict = reader.get_verdict(s1, s2)
            assert verdict is not None
            assert verdict.copying == decision.copying
            served_pairs += 1
        assert served_pairs == reader.cache_info()["n_pairs"]
        # Fused truths match the run's chosen values.
        for item, value in result.chosen.items():
            truth = reader.get_truth(item)
            assert truth.value == value
            assert truth.probability == pytest.approx(
                result.probabilities[value]
            )

    def test_decision_positions_served(self, tmp_path, world):
        params = CopyParams()
        run_fusion(
            world.dataset,
            params,
            detector=IncrementalDetector(params),
            config=FusionConfig(max_rounds=3),
            snapshot_store=tmp_path,
        )
        # Round 1 runs HYBRID without bookkeeping (all positions -1);
        # the prepare round (2) builds PairBookkeeping, and its decision
        # positions must reach the published rows.
        _, round1 = VerdictStore(tmp_path).load(1)
        assert (round1["pair_decision_pos"] == -1).all()
        _, round2 = VerdictStore(tmp_path).load(2)
        assert (round2["pair_decision_pos"] >= 0).any()
        reader = VerdictReader(tmp_path)
        pairs = reader._view.pairs
        assert (pairs.decision_pos >= 0).any()


class TestCliServe:
    @pytest.fixture(scope="class")
    def claims_path(self, tmp_path_factory, world):
        path = tmp_path_factory.mktemp("serve") / "claims.csv"
        save_claims(world.dataset, path)
        return path

    def test_serve_snapshot_then_query(
        self, claims_path, tmp_path, capsys, world
    ):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "serve-snapshot",
                    str(claims_path),
                    "--store",
                    str(store),
                    "--method",
                    "incremental",
                    "--max-rounds",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Published" in out and "full" in out

        assert main(["query", str(store), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Top copiers" in out

        source_a = world.dataset.source_names[0]
        source_b = world.dataset.source_names[1]
        assert main(["query", str(store), "--pair", source_a, source_b]) == 0
        out = capsys.readouterr().out
        assert "Verdict" in out or "never observed" in out

        item = world.dataset.item_names[0]
        assert main(["query", str(store), "--item", item]) == 0
        out = capsys.readouterr().out
        assert "Truth" in out

        assert main(["query", str(store)]) == 0
        out = capsys.readouterr().out
        assert "pair rows" in out

    def test_query_empty_store_fails_cleanly(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["query", str(empty)])

    def test_query_unknown_source_label(self, claims_path, tmp_path, capsys):
        store = tmp_path / "store2"
        main(
            [
                "serve-snapshot",
                str(claims_path),
                "--store",
                str(store),
                "--method",
                "none",
                "--max-rounds",
                "3",
            ]
        )
        capsys.readouterr()
        with pytest.raises(SystemExit, match="unknown source"):
            main(["query", str(store), "--pair", "definitely-not-a-source", "0"])


class TestCurrentPointerAtomicity:
    def test_current_never_points_at_a_partial_file(self, tmp_path, params):
        # The snapshot file is fully written and renamed before CURRENT
        # moves, so a reader opening mid-publish always sees a complete
        # file for whatever CURRENT names.
        store = VerdictStore(tmp_path)
        decisions = {(0, 1): _decision(params, 5.0, 4.0)}
        for round_no in range(4):
            pairs = PairRows.from_decisions(decisions, 3)
            store.write_full(pairs, ItemRows.empty(), n_sources=3)
            current = store.current_id()
            pointer = json.loads((tmp_path / "CURRENT").read_text())
            assert pointer["snapshot_id"] == current
            meta, _ = store.load(current)  # decodes cleanly, CRC included
            assert meta["snapshot_id"] == current
