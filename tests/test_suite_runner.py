"""The one-call experiment suite and its CLI subcommand."""

import pytest

from repro.core import CopyParams
from repro.eval import DEFAULT_METHODS, run_suite
from repro.synth import make_profile


@pytest.fixture(scope="module")
def world():
    return make_profile("book_cs", scale=0.08, seed=13)


@pytest.fixture(scope="module")
def suite(world):
    return run_suite(world.dataset, CopyParams(), seed=3)


class TestSuite:
    def test_runs_all_default_methods(self, suite):
        assert set(suite.runs) == set(DEFAULT_METHODS)

    def test_quality_rows_reference_pairwise(self, suite, world):
        rows = suite.quality_rows(world.dataset, world.gold)
        by_method = {row[0]: row for row in rows}
        assert by_method["pairwise"][3] == 1.0  # F vs itself
        assert by_method["index"][3] == 1.0  # INDEX == PAIRWISE

    def test_time_rows_complete(self, suite):
        rows = suite.time_rows()
        assert len(rows) == len(DEFAULT_METHODS)
        for _, seconds, computations, rounds, _ in rows:
            assert seconds >= 0.0
            assert computations > 0
            assert rounds >= 1

    def test_render(self, suite, world):
        text = suite.render(world.dataset, world.gold)
        assert "Copy-detection quality" in text
        assert "Detection cost" in text
        assert "incremental" in text

    def test_quality_requires_pairwise(self, world):
        partial = run_suite(world.dataset, CopyParams(), methods=("index",))
        with pytest.raises(ValueError, match="pairwise"):
            partial.quality_rows(world.dataset, world.gold)

    def test_custom_method_subset(self, world):
        suite = run_suite(
            world.dataset, CopyParams(), methods=("pairwise", "hybrid")
        )
        assert set(suite.runs) == {"pairwise", "hybrid"}


class TestCliBench:
    def test_bench_subcommand(self, tmp_path, capsys, world):
        from repro.cli import main
        from repro.data import save_claims, save_gold

        claims = tmp_path / "claims.csv"
        gold = tmp_path / "gold.csv"
        save_claims(world.dataset, claims)
        save_gold(world.gold, gold)
        code = main(
            [
                "bench",
                str(claims),
                "--gold",
                str(gold),
                "--methods",
                "pairwise,index,incremental",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Detection cost" in out
        assert "total wall time" in out
