"""Evaluation harness: metrics, the method runner, report rendering."""

import math

import pytest

from repro.core import CopyParams
from repro.eval import (
    RUNNER_METHODS,
    accuracy_variance,
    fusion_difference,
    improvement,
    pair_quality,
    quality_vs_reference,
    render_table,
    run_method,
)
from repro.synth import make_profile


class TestPairQuality:
    def test_perfect(self):
        pairs = {(0, 1), (2, 3)}
        q = pair_quality(pairs, pairs)
        assert q.precision == q.recall == q.f_measure == 1.0

    def test_half_recall(self):
        q = pair_quality({(0, 1), (2, 3)}, {(0, 1)})
        assert q.precision == 1.0
        assert q.recall == 0.5
        assert q.f_measure == pytest.approx(2 / 3)

    def test_empty_candidate(self):
        q = pair_quality({(0, 1)}, set())
        assert q.precision == 1.0
        assert q.recall == 0.0
        assert q.f_measure == 0.0

    def test_empty_reference(self):
        q = pair_quality(set(), {(0, 1)})
        assert q.recall == 1.0
        assert q.precision == 0.0


class TestFusionDifference:
    def test_identical(self):
        assert fusion_difference({1: 2}, {1: 2}) == 0.0

    def test_disjoint_items_count(self):
        assert fusion_difference({1: 2}, {3: 4}) == 1.0

    def test_partial(self):
        assert fusion_difference({1: 2, 3: 4}, {1: 2, 3: 9}) == 0.5

    def test_empty(self):
        assert fusion_difference({}, {}) == 0.0


class TestAccuracyVariance:
    def test_zero_for_identical(self):
        assert accuracy_variance([0.5, 0.7], [0.5, 0.7]) == 0.0

    def test_mean_absolute(self):
        assert accuracy_variance([0.5, 0.5], [0.6, 0.4]) == pytest.approx(0.1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_variance([0.5], [0.5, 0.6])

    def test_empty(self):
        assert accuracy_variance([], []) == 0.0


class TestReport:
    def test_render_basic(self):
        table = render_table("T", ["a", "bb"], [[1, 2.5], ["x", 10000.0]])
        assert "T" in table
        assert "a" in table and "bb" in table
        assert "2.500" in table
        assert "10,000" in table

    def test_improvement(self):
        assert improvement(100.0, 1.0) == pytest.approx(0.99)
        assert math.isnan(improvement(0.0, 1.0))


class TestRunner:
    @pytest.fixture(scope="class")
    def world(self):
        return make_profile("book_cs", scale=0.1)

    @pytest.fixture(scope="class")
    def reference(self, world):
        return run_method("pairwise", world.dataset, CopyParams())

    def test_unknown_method(self, world):
        with pytest.raises(ValueError):
            run_method("magic", world.dataset, CopyParams())

    @pytest.mark.parametrize("method", ["index", "hybrid", "incremental"])
    def test_exactish_methods_agree_with_pairwise(self, world, reference, method):
        run = run_method(method, world.dataset, CopyParams())
        q = quality_vs_reference(run, reference, world.dataset, world.gold)
        assert q.copy_quality.f_measure >= 0.9
        assert q.fusion_diff <= 0.1

    def test_sampled_method_records_sampling(self, world):
        run = run_method("scalesample", world.dataset, CopyParams(), seed=3)
        assert run.sampled_items is not None
        assert 0 < run.sampled_items <= world.dataset.n_items
        assert run.sampling_seconds >= 0.0

    def test_sampled_fusion_covers_full_items(self, world):
        """Sampled methods still fuse the *full* dataset."""
        run = run_method("sample1", world.dataset, CopyParams(), seed=1)
        full = run_method("index", world.dataset, CopyParams())
        assert len(run.fusion.chosen) == len(full.fusion.chosen)

    def test_fagininput_runs(self, world, reference):
        run = run_method("fagininput", world.dataset, CopyParams())
        q = quality_vs_reference(run, reference, world.dataset, world.gold)
        assert q.copy_quality.f_measure == 1.0  # exact by construction

    def test_all_methods_registered(self):
        assert set(RUNNER_METHODS) == {
            "pairwise",
            "sample1",
            "sample2",
            "index",
            "bound",
            "bound+",
            "hybrid",
            "incremental",
            "scalesample",
            "fagininput",
        }
