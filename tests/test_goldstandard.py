"""Gold standards: id resolution and fusion accuracy scoring."""

from repro.data import GoldStandard, motivating_example


class TestResolution:
    def test_resolves_known_values(self):
        ds = motivating_example()
        gold = GoldStandard(truths={"NJ": "Trenton"})
        resolved = gold.true_value_ids(ds)
        nj = ds.item_names.index("NJ")
        assert set(resolved) == {nj}
        assert ds.value_label[resolved[nj]] == "Trenton"

    def test_unclaimed_truth_resolves_to_none(self):
        ds = motivating_example()
        gold = GoldStandard(truths={"NJ": "Princeton"})  # nobody claims it
        nj = ds.item_names.index("NJ")
        assert gold.true_value_ids(ds)[nj] is None

    def test_unknown_item_ignored(self):
        ds = motivating_example()
        gold = GoldStandard(truths={"CA": "Sacramento"})
        assert gold.true_value_ids(ds) == {}


class TestAccuracy:
    def _value_id(self, ds, item, label):
        item_id = ds.item_names.index(item)
        for value_id in ds.values_of_item(item_id):
            if ds.value_label[value_id] == label:
                return value_id
        raise AssertionError(f"{item}.{label} not in dataset")

    def test_all_correct(self):
        ds = motivating_example()
        gold = GoldStandard(truths={"NJ": "Trenton", "AZ": "Phoenix"})
        chosen = {
            ds.item_names.index("NJ"): self._value_id(ds, "NJ", "Trenton"),
            ds.item_names.index("AZ"): self._value_id(ds, "AZ", "Phoenix"),
        }
        assert gold.accuracy_of(ds, chosen) == 1.0

    def test_half_correct(self):
        ds = motivating_example()
        gold = GoldStandard(truths={"NJ": "Trenton", "AZ": "Phoenix"})
        chosen = {
            ds.item_names.index("NJ"): self._value_id(ds, "NJ", "Atlantic"),
            ds.item_names.index("AZ"): self._value_id(ds, "AZ", "Phoenix"),
        }
        assert gold.accuracy_of(ds, chosen) == 0.5

    def test_missing_choice_counts_wrong(self):
        ds = motivating_example()
        gold = GoldStandard(truths={"NJ": "Trenton"})
        assert gold.accuracy_of(ds, {}) == 0.0

    def test_empty_gold(self):
        ds = motivating_example()
        assert GoldStandard(truths={}).accuracy_of(ds, {}) == 0.0

    def test_len_and_contains(self):
        gold = GoldStandard(truths={"NJ": "Trenton"})
        assert len(gold) == 1
        assert "NJ" in gold
        assert "AZ" not in gold
