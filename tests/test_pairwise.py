"""PAIRWISE baseline: Example 2.1 numbers and accounting conventions."""

import pytest

from repro.core import detect_pairwise
from repro.data import MOTIVATING_COPY_PAIRS


class TestMotivatingExample:
    @pytest.fixture(scope="class")
    def result(self, example, example_probabilities, example_accuracies, params):
        return detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )

    def test_finds_exactly_the_planted_pairs(self, result, example):
        found = {
            frozenset({example.source_names[a], example.source_names[b]})
            for a, b in result.copying_pairs()
        }
        assert found == set(MOTIVATING_COPY_PAIRS)

    def test_s2_s3_scores(self, result, example):
        """Example 2.1: C-> = C<- = 11.58, Pr(indep) = .00004."""
        ids = {name: i for i, name in enumerate(example.source_names)}
        decision = result.decision_for(ids["S2"], ids["S3"])
        assert decision.c_fwd == pytest.approx(11.58, abs=0.02)
        assert decision.c_bwd == pytest.approx(11.58, abs=0.02)
        assert decision.posterior.independent == pytest.approx(0.00004, abs=1e-5)
        assert decision.copying

    def test_s0_s1_scores(self, result, example):
        """Example 2.1: C ~ .04, Pr(indep) = .79 -> no copying."""
        ids = {name: i for i, name in enumerate(example.source_names)}
        decision = result.decision_for(ids["S0"], ids["S1"])
        assert decision.posterior.independent == pytest.approx(0.79, abs=0.02)
        assert not decision.copying

    def test_computation_count(self, result):
        """2 computations per shared item; the example has 181 shared items.

        (The paper's Example 3.6 quotes 183*2 = 366; summing per-item
        provider pairs over Table I gives 36+28+36+36+45 = 181, so we
        assert the arithmetic our data actually yields.)
        """
        assert result.cost.computations == 362
        assert result.cost.values_examined == 181

    def test_all_pairs_considered(self, result):
        assert result.cost.pairs_considered == 45

    def test_pairs_without_shared_items_not_decided(self, result, example):
        """S0 and S6 share no item (S0 lacks FL, S6 lacks NJ... they do share).

        S0 covers NJ, AZ, NY, TX; S6 covers AZ, NY, FL, TX — they share
        items, so they *are* decided; a truly disjoint pair needs S9 vs a
        source with only AZ+NY.  Instead verify the decided count: all 45
        pairs share at least one item in this dense example.
        """
        assert len(result.decisions) == 45

    def test_directed_copy_probability(self, result, example):
        ids = {name: i for i, name in enumerate(example.source_names)}
        p_fwd = result.copy_probability(ids["S2"], ids["S3"])
        p_bwd = result.copy_probability(ids["S3"], ids["S2"])
        ind = result.decision_for(ids["S2"], ids["S3"]).posterior.independent
        assert p_fwd + p_bwd + ind == pytest.approx(1.0)

    def test_copy_probability_unopened_pair_is_zero(
        self, example, example_probabilities, example_accuracies, params
    ):
        from repro.data import DatasetBuilder

        b = DatasetBuilder()
        b.add("A", "x", "1")
        b.add("B", "y", "2")
        ds = b.build()
        result = detect_pairwise(ds, [0.5, 0.5], [0.8, 0.8], params)
        assert result.copy_probability(0, 1) == 0.0

    def test_copy_probability_self_rejected(self, result):
        with pytest.raises(ValueError):
            result.copy_probability(1, 1)
