"""Input validation and failure-mode behaviour across the public API."""

import pytest

from repro.core import detect, detect_pairwise
from repro.data import DatasetBuilder
from repro.fusion import FusionConfig, run_fusion


def _tiny():
    b = DatasetBuilder()
    b.add("A", "D", "x")
    b.add("B", "D", "x")
    return b.build()


class TestDetectValidation:
    def test_unknown_method_raises_before_work(self, params):
        ds = _tiny()
        with pytest.raises(ValueError, match="unknown method"):
            detect(ds, [0.5], [0.8, 0.8], params, method="quantum")

    def test_probability_vector_length_checked_for_index_methods(self, params):
        ds = _tiny()
        with pytest.raises(ValueError):
            detect(ds, [0.5, 0.5], [0.8, 0.8], params, method="index")

    def test_accuracy_vector_length_checked_for_index_methods(self, params):
        ds = _tiny()
        with pytest.raises(ValueError):
            detect(ds, [0.5], [0.8], params, method="hybrid")


class TestDegenerateDatasets:
    def test_empty_dataset_all_methods(self, params):
        ds = DatasetBuilder().build()
        for method in ("pairwise", "index", "bound+", "hybrid"):
            result = detect(ds, [], [], params, method=method)
            assert result.decisions == {}

    def test_single_source(self, params):
        b = DatasetBuilder()
        b.add("only", "D", "x")
        ds = b.build()
        result = detect_pairwise(ds, [0.5], [0.8], params)
        assert result.decisions == {}

    def test_disjoint_sources(self, params):
        b = DatasetBuilder()
        b.add("A", "D1", "x")
        b.add("B", "D2", "y")
        ds = b.build()
        for method in ("pairwise", "index", "hybrid"):
            result = detect(ds, [0.5, 0.5], [0.8, 0.8], params, method=method)
            assert result.copying_pairs() == set()

    def test_fusion_on_empty_dataset(self, params):
        ds = DatasetBuilder().build()
        result = run_fusion(ds, params, detector=None, config=FusionConfig(max_rounds=2))
        assert result.chosen == {}
        assert result.accuracies == []

    def test_source_with_no_claims_survives_fusion(self, params):
        b = DatasetBuilder()
        b.ensure_source("ghost")
        b.add("A", "D", "x")
        b.add("B", "D", "x")
        ds = b.build()
        result = run_fusion(ds, params, detector=None)
        ghost = ds.source_names.index("ghost")
        assert result.accuracies[ghost] == 0.5  # neutral, untouched


class TestExtremeInputs:
    def test_probability_extremes(self, params):
        """P exactly at the strategy floor/ceiling must not blow up."""
        ds = _tiny()
        for p in (1e-9, 1.0 - 1e-9):
            result = detect_pairwise(ds, [p], [0.8, 0.8], params)
            decision = result.decision_for(0, 1)
            assert decision is not None
            assert decision.c_fwd == decision.c_fwd  # not NaN

    def test_accuracy_extremes_clamped(self, params):
        ds = _tiny()
        result = detect_pairwise(ds, [0.5], [0.0, 1.0], params)
        decision = result.decision_for(0, 1)
        assert abs(decision.c_fwd) < 1e6  # finite thanks to the clamp

    def test_band_validation(self, params):
        from repro.core import detect_bound_plus

        ds = _tiny()
        with pytest.raises(ValueError):
            detect_bound_plus(ds, [0.5], [0.8, 0.8], params, band=(0.9, 0.1))

    def test_theta_at_validation(self, params):
        with pytest.raises(ValueError):
            params.theta_cp_at(0.0)
        with pytest.raises(ValueError):
            params.theta_ind_at(1.0)

    def test_theta_at_reduces_to_defaults(self, params):
        assert params.theta_cp_at(0.5) == pytest.approx(params.theta_cp)
        assert params.theta_ind_at(0.5) == pytest.approx(params.theta_ind)

    def test_banded_conclusions_respect_band(
        self, example, example_probabilities, example_accuracies, params
    ):
        """Early copy conclusions under a (p_low, p_high) band guarantee
        the exact posterior is at most p_low (C^min is sound)."""
        from repro.core import detect_bound_plus

        exact = detect_pairwise(
            example, example_probabilities, example_accuracies, params
        )
        banded = detect_bound_plus(
            example,
            example_probabilities,
            example_accuracies,
            params,
            band=(0.1, 0.9),
        )
        for pair, decision in banded.decisions.items():
            if decision.early and decision.copying:
                reference = exact.decision_for(*pair)
                assert reference.posterior.independent <= 0.1 + 1e-9
