"""Hypothesis strategies shared across property-based tests.

Thin re-export shim: the generation logic lives in
:mod:`repro.conformance.generators` so the conformance engine's seeded
fuzzing and the test suite's hypothesis strategies share one
implementation.  Import from here in tests (stable address); import from
``repro.conformance`` in library code.
"""

from __future__ import annotations

from repro.conformance.generators import (  # noqa: F401
    ACCURACY_MENUS,
    EXTREME_PROBABILITIES,
    accuracies,
    adversarial_worlds,
    datasets,
    probabilities,
    shared_run_world,
    theta_edge_worlds,
    worlds,
)

__all__ = [
    "ACCURACY_MENUS",
    "EXTREME_PROBABILITIES",
    "accuracies",
    "adversarial_worlds",
    "datasets",
    "probabilities",
    "shared_run_world",
    "theta_edge_worlds",
    "worlds",
]
