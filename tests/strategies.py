"""Hypothesis strategies shared across property-based tests.

``small_world()`` draws complete random detection problems — a dataset
plus aligned probability and accuracy vectors — small enough that
exhaustive reference computations (PAIRWISE, brute-force maxima) stay
fast, but varied enough to exercise sparse/dense overlap, ties, missing
values, and extreme probabilities.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.data import Dataset, DatasetBuilder

probabilities = st.floats(min_value=0.001, max_value=0.999)
accuracies = st.floats(min_value=0.01, max_value=0.99)


@st.composite
def datasets(
    draw,
    max_sources: int = 8,
    max_items: int = 12,
    max_values_per_item: int = 4,
) -> Dataset:
    """Draw a random small dataset.

    Every source claims a random subset of items; each claim picks one of
    the item's candidate values, so shared values arise naturally.
    """
    n_sources = draw(st.integers(min_value=2, max_value=max_sources))
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    builder = DatasetBuilder()
    for source_id in range(n_sources):
        builder.ensure_source(f"S{source_id}")
    for source_id in range(n_sources):
        claimed = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_items - 1),
                unique=True,
                max_size=n_items,
            )
        )
        for item_id in claimed:
            value = draw(st.integers(min_value=0, max_value=max_values_per_item - 1))
            builder.add(f"S{source_id}", f"item{item_id}", f"v{value}")
    return builder.build()


@st.composite
def worlds(draw, max_sources: int = 8, max_items: int = 12):
    """Draw a (dataset, probabilities, accuracies) detection problem."""
    dataset = draw(datasets(max_sources=max_sources, max_items=max_items))
    probs = [draw(probabilities) for _ in range(dataset.n_values)]
    accs = [draw(accuracies) for _ in range(dataset.n_sources)]
    return dataset, probs, accs


# ----------------------------------------------------------------------
# Adversarial worlds for the early-terminating (BOUND-family) scans
# ----------------------------------------------------------------------

#: Probabilities that drive Eq. (6) contributions to their extremes:
#: sharing a near-certainly-false value (p -> 0) concludes *copying* on
#: the very first shared entry; near-certainly-true values (p -> 1)
#: contribute almost nothing, pushing pairs toward the no-copy bound or
#: all the way to an exact scan-end resolution.
_EXTREME_PROBABILITIES = st.sampled_from(
    [0.001, 0.002, 0.01, 0.2, 0.5, 0.9, 0.99, 0.998, 0.999]
)

#: Accuracy menus: a single shared value exercises tied per-provider
#: terms (and the numpy backend's grid-deduplicated log path); the
#: extremes exercise clamping.
_ACCURACY_MENUS = st.sampled_from(
    [(0.8,), (0.5,), (0.99,), (0.01, 0.99), (0.3, 0.8), (0.5, 0.75, 0.9)]
)


@st.composite
def adversarial_worlds(draw, max_sources: int = 6, max_items: int = 8):
    """Worlds engineered to sit on the bound scans' decision edges.

    Compared to :func:`worlds`: *clone* sources (identical claim sets —
    maximal overlap, copy conclusions on the earliest entries), extreme
    value probabilities (first-entry and last-entry conclusions), tiny
    accuracy menus (tied scores, timer milestones landing exactly on
    integer counts), and single-item datasets (the index degenerates to
    one entry, so every conclusion is simultaneously first- and
    last-entry).  Both backends must agree on every one of these.
    """
    n_sources = draw(st.integers(min_value=2, max_value=max_sources))
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    builder = DatasetBuilder()
    for source_id in range(n_sources):
        builder.ensure_source(f"S{source_id}")
    # Source 0 claims a contiguous prefix of items; clones repeat its
    # claims verbatim, other sources draw freely with few value choices
    # (ties everywhere).
    base_claims = {
        item_id: draw(st.integers(min_value=0, max_value=1))
        for item_id in range(draw(st.integers(min_value=1, max_value=n_items)))
    }
    for item_id, value in base_claims.items():
        builder.add("S0", f"item{item_id}", f"v{value}")
    for source_id in range(1, n_sources):
        if draw(st.booleans()):
            for item_id, value in base_claims.items():
                builder.add(f"S{source_id}", f"item{item_id}", f"v{value}")
        else:
            claimed = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_items - 1),
                    unique=True,
                    max_size=n_items,
                )
            )
            for item_id in claimed:
                value = draw(st.integers(min_value=0, max_value=1))
                builder.add(f"S{source_id}", f"item{item_id}", f"v{value}")
    dataset = builder.build()
    probs = [draw(_EXTREME_PROBABILITIES) for _ in range(dataset.n_values)]
    menu = draw(_ACCURACY_MENUS)
    accs = [
        menu[draw(st.integers(min_value=0, max_value=len(menu) - 1))]
        for _ in range(dataset.n_sources)
    ]
    return dataset, probs, accs


def shared_run_world(n_shared: int, p_true: float, accuracy: float = 0.8):
    """Two sources sharing ``n_shared`` identical claims at one probability.

    The scan sees ``n_shared`` equal-scored entries, each contributing
    the same amount to the (0, 1) pair — the cleanest dial for placing
    ``C^min`` relative to ``theta_cp``.
    """
    builder = DatasetBuilder()
    builder.ensure_source("S0")
    builder.ensure_source("S1")
    for item_id in range(n_shared):
        builder.add("S0", f"item{item_id}", "v0")
        builder.add("S1", f"item{item_id}", "v0")
    dataset = builder.build()
    return dataset, [p_true] * dataset.n_values, [accuracy, accuracy]


def theta_edge_worlds(params, n_shared: int = 3, accuracy: float = 0.8):
    """Worlds whose conclusion flips between adjacent probability floats.

    Bisects the value probability of :func:`shared_run_world` down to
    *neighbouring float64 values* ``p_lo``/``p_hi`` such that the scan
    concludes early at ``p_lo`` but not at ``p_hi`` — the accumulated
    ``C^min`` lands as exactly on ``theta_cp`` (and, with few shared
    entries, ``C^max`` on ``theta_ind``) as float worlds allow.  Both
    sides of every edge are returned; the two backends must agree on the
    ``>=`` / ``<`` tie-breaking at each one.
    """
    import math

    from repro.core import detect_bound

    def concludes_early(p: float) -> bool:
        dataset, probs, accs = shared_run_world(n_shared, p, accuracy)
        result = detect_bound(dataset, probs, accs, params)
        decision = result.decision_for(0, 1)
        return decision is not None and decision.early and decision.copying

    lo, hi = 0.001, 0.999
    if not concludes_early(lo):
        return [shared_run_world(n_shared, lo, accuracy)]
    if concludes_early(hi):
        return [shared_run_world(n_shared, hi, accuracy)]
    while math.nextafter(lo, hi) < hi:
        mid = (lo + hi) / 2.0
        if mid in (lo, hi):
            break
        if concludes_early(mid):
            lo = mid
        else:
            hi = mid
    return [
        shared_run_world(n_shared, lo, accuracy),
        shared_run_world(n_shared, hi, accuracy),
    ]
