"""Hypothesis strategies shared across property-based tests.

``small_world()`` draws complete random detection problems — a dataset
plus aligned probability and accuracy vectors — small enough that
exhaustive reference computations (PAIRWISE, brute-force maxima) stay
fast, but varied enough to exercise sparse/dense overlap, ties, missing
values, and extreme probabilities.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.data import Dataset, DatasetBuilder

probabilities = st.floats(min_value=0.001, max_value=0.999)
accuracies = st.floats(min_value=0.01, max_value=0.99)


@st.composite
def datasets(
    draw,
    max_sources: int = 8,
    max_items: int = 12,
    max_values_per_item: int = 4,
) -> Dataset:
    """Draw a random small dataset.

    Every source claims a random subset of items; each claim picks one of
    the item's candidate values, so shared values arise naturally.
    """
    n_sources = draw(st.integers(min_value=2, max_value=max_sources))
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    builder = DatasetBuilder()
    for source_id in range(n_sources):
        builder.ensure_source(f"S{source_id}")
    for source_id in range(n_sources):
        claimed = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_items - 1),
                unique=True,
                max_size=n_items,
            )
        )
        for item_id in claimed:
            value = draw(st.integers(min_value=0, max_value=max_values_per_item - 1))
            builder.add(f"S{source_id}", f"item{item_id}", f"v{value}")
    return builder.build()


@st.composite
def worlds(draw, max_sources: int = 8, max_items: int = 12):
    """Draw a (dataset, probabilities, accuracies) detection problem."""
    dataset = draw(datasets(max_sources=max_sources, max_items=max_items))
    probs = [draw(probabilities) for _ in range(dataset.n_values)]
    accs = [draw(accuracies) for _ in range(dataset.n_sources)]
    return dataset, probs, accs
