"""SharedWorld teardown: no /dev/shm leak, even when a worker dies.

The regression this pins down: a ``FusionWorkspace`` (or any other
parent-side owner) holds a persistent ``SharedWorld`` block; when a
process-pool worker dies mid-round the pool breaks, the round raises,
and sloppy teardown paths could leave the shm segment linked until
reboot.  The fixes under test:

* a module-level atexit safety net (``_cleanup_live_worlds`` over a
  WeakSet of live worlds) unlinks anything still owned at interpreter
  exit, with ``close()`` idempotent so double sweeps never warn;
* ``SharedWorld.__del__`` unlinks garbage-collected worlds;
* ``FusionWorkspace.pool()`` retires a broken process pool and builds a
  fresh one instead of resubmitting into the corpse.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import warnings
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import numpy as np
import pytest

from repro.core import CopyParams
from repro.core.kernel import ColumnarEntries
from repro.fusion.workspace import FusionWorkspace
from repro.parallel.shm import (
    _LIVE_WORLDS,
    SharedWorld,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no usable shared memory"
)


def _toy_columns() -> ColumnarEntries:
    return ColumnarEntries(
        probs=np.array([0.9, 0.4]),
        main=np.ones(2, dtype=bool),
        offsets=np.array([0, 2, 4], dtype=np.int64),
        providers=np.array([0, 1, 0, 2], dtype=np.int64),
    )


def _segment_exists(name: str) -> bool:
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        return (shm_dir / name).exists()
    from multiprocessing import shared_memory

    try:
        block = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    block.close()
    return True


class TestIdempotentClose:
    def test_double_close_never_warns(self):
        world = SharedWorld.create(_toy_columns(), [0.8, 0.8, 0.8], 3)
        name = world.handle.name
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            world.close()
            world.close()  # second close is a silent no-op
        assert not _segment_exists(name)

    def test_closed_world_leaves_registry(self):
        world = SharedWorld.create(_toy_columns(), [0.8, 0.8, 0.8], 3)
        assert world in _LIVE_WORLDS
        world.close()
        assert world not in _LIVE_WORLDS

    def test_garbage_collected_world_unlinks(self):
        world = SharedWorld.create(_toy_columns(), [0.8, 0.8, 0.8], 3)
        name = world.handle.name
        assert _segment_exists(name)
        del world
        gc.collect()
        assert not _segment_exists(name)


class TestAtexitSafetyNet:
    def test_unclosed_world_is_swept_at_interpreter_exit(self, tmp_path):
        # A child interpreter creates a world, *keeps a live reference*
        # (so __del__ can't save it) and exits without closing: only the
        # atexit sweep stands between it and a leaked segment.
        script = tmp_path / "leaker.py"
        script.write_text(
            "import sys\n"
            "import numpy as np\n"
            "from repro.core.kernel import ColumnarEntries\n"
            "from repro.parallel.shm import SharedWorld\n"
            "cols = ColumnarEntries(\n"
            "    probs=np.array([0.9, 0.4]),\n"
            "    main=np.ones(2, dtype=bool),\n"
            "    offsets=np.array([0, 2, 4], dtype=np.int64),\n"
            "    providers=np.array([0, 1, 0, 2], dtype=np.int64),\n"
            ")\n"
            "world = SharedWorld.create(cols, [0.8] * 3, 3)\n"
            "print(world.handle.name)\n"
            "sys.stdout.flush()\n"
            # exit with the reference still live; no close()
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip()
        assert name
        assert not _segment_exists(name)
        # No double-unlink / leaked-resource warnings on the way out.
        assert "leaked shared_memory" not in proc.stderr
        assert "FileNotFoundError" not in proc.stderr


class TestWorkerDeathMidRound:
    def test_worker_death_breaks_pool_but_leaks_nothing(self, example):
        workspace = FusionWorkspace(example, CopyParams())
        try:
            world = workspace.broadcast(
                _toy_columns(), [0.8] * example.n_sources, example.n_sources
            )
            name = world.handle.name
            pool = workspace.pool("processes")
            # Kill a worker mid-task: the pool breaks, the "round" raises.
            with pytest.raises(BrokenProcessPool):
                pool.submit(os._exit, 1).result(timeout=60)
            # The next round must get a *fresh, working* pool, not the corpse.
            fresh = workspace.pool("processes")
            assert fresh is not pool
            assert fresh.submit(os.getpid).result(timeout=60) > 0
        finally:
            workspace.close()
        assert not _segment_exists(name)
        # Idempotent re-close: no warnings, no double unlink.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            workspace.close()

    def test_broken_thread_pool_attr_missing_is_fine(self, example):
        # ThreadPoolExecutor has no _broken attribute on some versions;
        # pool() must not trip over it.
        workspace = FusionWorkspace(example, CopyParams())
        try:
            first = workspace.pool("threads")
            assert workspace.pool("threads") is first
        finally:
            workspace.close()
