"""Fagin's NRA and the FAGININPUT baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import detect_index
from repro.nra import build_fagin_input, nra_topk, top_k_copying


def _bruteforce_topk(lists, k, missing=0.0):
    totals = {}
    for lst in lists:
        for obj, score in lst:
            totals[obj] = totals.get(obj, 0.0) + score
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])
    return ranked[:k]


@st.composite
def sorted_lists(draw):
    """Random descending-sorted lists with unique objects per list."""
    n_objects = draw(st.integers(min_value=1, max_value=8))
    n_lists = draw(st.integers(min_value=1, max_value=5))
    lists = []
    for _ in range(n_lists):
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_objects - 1),
                unique=True,
                max_size=n_objects,
            )
        )
        scored = [
            (obj, draw(st.floats(min_value=-5, max_value=10)))
            for obj in members
        ]
        scored.sort(key=lambda pair: -pair[1])
        lists.append(scored)
    return lists


class TestNraTopK:
    def test_single_list(self):
        result = nra_topk([[("a", 3.0), ("b", 1.0)]], 1)
        assert result.items == [("a", 3.0)]
        assert result.resolved

    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            nra_topk([[("a", 1.0)]], 0)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            nra_topk([[("a", 1.0), ("b", 2.0)]], 1)

    def test_negative_scores(self):
        lists = [
            [("a", 5.0), ("b", 3.0), ("c", 1.0)],
            [("b", 4.0), ("a", 2.0)],
            [("a", -1.0), ("c", -3.0)],
        ]
        result = nra_topk(lists, 2)
        assert [obj for obj, _ in result.items] == ["b", "a"]
        assert result.items[0][1] == pytest.approx(7.0)
        assert result.items[1][1] == pytest.approx(6.0)

    def test_fewer_objects_than_k(self):
        result = nra_topk([[("a", 1.0)]], 5)
        assert [obj for obj, _ in result.items] == ["a"]

    @given(lists=sorted_lists(), k=st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_matches_bruteforce_set_and_scores(self, lists, k):
        expected = _bruteforce_topk(lists, k)
        result = nra_topk(lists, k)
        got = dict(result.items)
        # The returned top set must consist of objects whose true totals
        # are at least the k-th best total (ties make the exact set
        # ambiguous, so compare score multisets).
        expected_scores = sorted((round(s, 9) for _, s in expected), reverse=True)
        truth = dict(_bruteforce_topk(lists, 10**6))
        got_scores = sorted((round(truth[obj], 9) for obj in got), reverse=True)
        assert got_scores == expected_scores

    def test_early_termination_reads_less(self):
        lists = [
            [("top", 100.0)] + [(f"x{i}", 1.0 - i * 1e-3) for i in range(50)],
            [("top", 100.0)] + [(f"y{i}", 1.0 - i * 1e-3) for i in range(50)],
        ]
        result = nra_topk(lists, 1)
        assert result.items[0][0] == "top"
        assert result.sorted_accesses < 102


class TestFaginInput:
    def test_verdicts_match_index(
        self, example, example_probabilities, example_accuracies, params
    ):
        fagin = build_fagin_input(
            example, example_probabilities, example_accuracies, params
        )
        index_result = detect_index(
            example, example_probabilities, example_accuracies, params
        )
        assert fagin.result.copying_pairs() == index_result.copying_pairs()

    def test_value_lists_sorted(self, example, example_probabilities, example_accuracies, params):
        fagin = build_fagin_input(
            example, example_probabilities, example_accuracies, params
        )
        for lst in fagin.value_lists:
            scores = [score for _, score in lst]
            assert scores == sorted(scores, reverse=True)

    def test_both_directions_present(
        self, example, example_probabilities, example_accuracies, params
    ):
        fagin = build_fagin_input(
            example, example_probabilities, example_accuracies, params
        )
        directed = {pair for lst in fagin.value_lists for pair, _ in lst}
        assert all((b, a) in directed for a, b in directed)

    def test_top_k_finds_strongest_copiers(
        self, example, example_probabilities, example_accuracies, params
    ):
        """The NRA top pairs must be among the PAIRWISE copying pairs."""
        fagin = build_fagin_input(
            example, example_probabilities, example_accuracies, params
        )
        top = top_k_copying(fagin, 4)
        copying = fagin.result.copying_pairs()
        for (copier, original), _ in top.items:
            key = (min(copier, original), max(copier, original))
            assert key in copying

    def test_top_k_scores_match_decisions(
        self, example, example_probabilities, example_accuracies, params
    ):
        fagin = build_fagin_input(
            example, example_probabilities, example_accuracies, params
        )
        top = top_k_copying(fagin, 2)
        for (copier, original), score in top.items:
            key = (min(copier, original), max(copier, original))
            decision = fagin.result.decisions[key]
            expected = decision.c_fwd if copier < original else decision.c_bwd
            assert score == pytest.approx(expected, abs=1e-9)
