"""CSV persistence round-trips and error handling."""

import pytest

from repro.data import (
    GoldStandard,
    load_claims,
    load_gold,
    motivating_example,
    save_claims,
    save_gold,
)


class TestClaimsRoundTrip:
    def test_round_trip(self, tmp_path):
        original = motivating_example()
        path = tmp_path / "claims.csv"
        save_claims(original, path)
        loaded = load_claims(path)
        assert loaded.n_sources == original.n_sources
        assert loaded.n_items == original.n_items
        assert loaded.n_values == original.n_values
        for source_id, item_id, value_id in original.iter_claims():
            name = original.source_names[source_id]
            item = original.item_names[item_id]
            s2 = loaded.source_names.index(name)
            i2 = loaded.item_names.index(item)
            v2 = loaded.claims[s2][i2]
            assert loaded.value_label[v2] == original.value_label[value_id]

    def test_values_with_commas(self, tmp_path):
        from repro.data import DatasetBuilder

        b = DatasetBuilder()
        b.add("S0", "book1", "Knuth, Donald; Dijkstra, Edsger")
        path = tmp_path / "claims.csv"
        save_claims(b.build(), path)
        loaded = load_claims(path)
        assert loaded.value_label[0] == "Knuth, Donald; Dijkstra, Edsger"

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("S0,NJ,Trenton\n")
        with pytest.raises(ValueError, match="header"):
            load_claims(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("source,item,value\nS0,NJ\n")
        with pytest.raises(ValueError, match="columns"):
            load_claims(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "claims.csv"
        path.write_text("source,item,value\nS0,NJ,Trenton\n\n")
        assert load_claims(path).n_values == 1


class TestGoldRoundTrip:
    def test_round_trip(self, tmp_path):
        gold = GoldStandard(truths={"NJ": "Trenton", "AZ": "Phoenix"})
        path = tmp_path / "gold.csv"
        save_gold(gold, path)
        assert load_gold(path).truths == gold.truths

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("NJ,Trenton\n")
        with pytest.raises(ValueError, match="header"):
            load_gold(path)
