"""Record linkage: Fellegi-Sunter scoring on the indexed machinery."""

import pytest

from repro.linkage import LinkageConfig, link_records


def _customers():
    """A small CRM: records 0/1 and 3/4 are duplicates (they agree on
    name/email/phone/city and differ on zip); the rest are distinct
    filler giving the weights a realistic population to estimate
    chance-agreement from."""
    records = [
        {"name": "ada lovelace", "email": "ada@algo.org", "phone": "020-1", "city": "london", "zip": "EC1"},
        {"name": "ada lovelace", "email": "ada@algo.org", "phone": "020-1", "city": "london", "zip": "EC2"},
        {"name": "charles babbage", "email": "cb@engine.io", "phone": "020-2", "city": "london", "zip": "EC1"},
        {"name": "grace hopper", "email": "grace@navy.mil", "phone": "703-1", "city": "arlington", "zip": "22202"},
        {"name": "grace hopper", "email": "grace@navy.mil", "phone": "703-1", "city": "arlington", "zip": "22209"},
    ]
    for i in range(15):
        records.append(
            {
                "name": f"person {i}",
                "email": f"p{i}@mail.net",
                "phone": f"555-{i:04d}",
                "city": "london" if i % 3 == 0 else f"town{i}",
                "zip": f"Z{i:03d}",
            }
        )
    return records


class TestConfig:
    def test_defaults_valid(self):
        LinkageConfig()

    @pytest.mark.parametrize("m", [0.0, 1.0, -0.5])
    def test_invalid_m(self, m):
        with pytest.raises(ValueError):
            LinkageConfig(m=m)

    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            LinkageConfig(match_threshold=0.0, nonmatch_threshold=1.0)


class TestLinking:
    def test_finds_planted_duplicates(self):
        result = link_records(_customers())
        assert (0, 1) in result.matches()
        assert (3, 4) in result.matches()

    def test_distinct_records_not_matched(self):
        result = link_records(_customers())
        assert (0, 2) not in result.matches()
        assert (1, 2) not in result.matches()

    def test_records_sharing_nothing_never_compared(self):
        result = link_records(_customers())
        # Records 0 and 3 share no value at all.
        assert (0, 3) not in result.decisions

    def test_rare_value_agreement_outweighs_common(self):
        """Agreeing on a rare email is strong; on a common city, weak."""
        records = [
            {"email": "x@y.z", "city": "london"},
            {"email": "x@y.z", "city": "london"},
            {"email": "a@b.c", "city": "london"},
            {"email": "d@e.f", "city": "london"},
        ] + [{"email": f"u{i}@m.n", "city": "london"} for i in range(12)]
        result = link_records(
            records, LinkageConfig(match_threshold=1.5, nonmatch_threshold=0.0)
        )
        assert (0, 1) in result.matches()
        assert (2, 3) not in result.matches()

    def test_disagreements_push_toward_nonmatch(self):
        records = [
            {"a": "v", "b": "x1", "c": "y1", "d": "z1"},
            {"a": "v", "b": "x2", "c": "y2", "d": "z2"},
        ]
        result = link_records(
            records, LinkageConfig(match_threshold=3.0, nonmatch_threshold=0.0)
        )
        decision = result.decisions[(0, 1)]
        assert decision.verdict in ("nonmatch", "possible")

    def test_empty_input(self):
        result = link_records([])
        assert result.decisions == {}

    def test_single_record(self):
        result = link_records([{"a": "x"}])
        assert result.decisions == {}


class TestEarlyTermination:
    def test_same_verdicts_with_and_without(self):
        records = _customers() * 3  # replicate for more shared values
        with_early = link_records(records, LinkageConfig(early_termination=True))
        without = link_records(records, LinkageConfig(early_termination=False))
        assert with_early.matches() == without.matches()

    def test_early_skips_reduce_comparisons(self):
        # Many duplicate groups with many attributes: early termination
        # should conclude matches before touching every attribute.
        records = []
        for g in range(12):
            base = {f"attr{k}": f"g{g}v{k}" for k in range(10)}
            records.append(dict(base))
            records.append(dict(base))
        eager = link_records(records, LinkageConfig(early_termination=True))
        lazy = link_records(records, LinkageConfig(early_termination=False))
        assert eager.matches() == lazy.matches()
        assert eager.pairs_skipped_early > 0
        assert eager.comparisons < lazy.comparisons
