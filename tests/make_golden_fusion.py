"""Golden-fixture builder for the fusion loop (and its regen entry point).

``tests/data/golden_fusion.json`` freezes the *complete* observable
outcome of ``run_fusion`` — fused truths, ``float.hex``-exact final
accuracies and value probabilities, per-round copying verdicts and the
convergence flag — for every detector method (``none`` = plain ACCU
through ``incremental``) on the same deterministic synthetic world the
bound goldens use.  Everything is computed with the *reference* backend
pinned explicitly (``CopyParams(backend="python")``,
``fusion_backend="python"``), so the fixture is independent of the
library's default backend: flipping the default to ``"numpy"`` must
leave this file byte-identical, which ``tests/test_golden_fusion.py``
asserts on every run.

Regenerate (only after an intentional behaviour change of the
*reference*)::

    PYTHONPATH=src:. python tests/make_golden_fusion.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import CopyParams, IncrementalDetector, SingleRoundDetector
from repro.fusion import FusionConfig, run_fusion

from tests.make_golden_bound import WORLD_CONFIG  # the shared golden world

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_fusion.json"

METHODS = ("none", "pairwise", "index", "bound", "bound+", "hybrid", "incremental")

#: Pinned rounds: tolerance 0 never converges, so every method runs
#: exactly five rounds and the fixture is schedule-independent.
ROUNDS = FusionConfig(max_rounds=5, min_rounds=5, tolerance=0.0)


def golden_world():
    """The fixture's deterministic dataset (same world as golden_bound)."""
    from repro.synth.generator import generate

    return generate(WORLD_CONFIG).dataset


def _detector(method: str, params: CopyParams):
    if method == "none":
        return None
    if method == "incremental":
        return IncrementalDetector(params)
    return SingleRoundDetector(params, method=method)


def golden_payload() -> dict:
    """Full reference-backend fusion outcome for every method."""
    dataset = golden_world()
    params = CopyParams(backend="python")
    payload: dict = {"methods": {}}
    for method in METHODS:
        result = run_fusion(
            dataset,
            params,
            detector=_detector(method, params),
            config=ROUNDS,
            fusion_backend="python",
        )
        payload["methods"][method] = {
            "converged": result.converged,
            "n_rounds": result.n_rounds,
            "chosen": [
                [item, value] for item, value in sorted(result.chosen.items())
            ],
            "accuracies": [a.hex() for a in result.accuracies],
            "probabilities": [p.hex() for p in result.probabilities],
            "round_copying": [
                sorted(
                    list(pair)
                    for pair in (
                        record.detection.copying_pairs()
                        if record.detection
                        else set()
                    )
                )
                for record in result.rounds
            ],
        }
    return payload


def main() -> int:
    payload = golden_payload()
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=None, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    n_values = len(payload["methods"]["none"]["probabilities"])
    print(f"wrote {GOLDEN_PATH} ({len(METHODS)} methods, {n_values} values)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
