"""Documentation gate: markdown link check + docstring coverage.

Two checks, both stdlib-only so the CI docs job needs no installs:

* **Link check** — every relative markdown link in ``README.md``,
  ``ROADMAP.md`` and ``docs/*.md`` must point at a file that exists
  (anchors are stripped; ``http(s)``/``mailto`` targets are skipped so
  the gate stays offline-deterministic).
* **Doc coverage** — every *public* module, class, function and method
  in the product-surface packages (``src/repro/serving/`` and
  ``src/repro/streaming/``) must carry a docstring.  Parsed with
  :mod:`ast`, so nothing is imported and missing optional deps can't
  mask a gap.  Names with a leading underscore, ``__init__`` (the class
  docstring covers construction) and other dunders are exempt.

Run it locally::

    python tools/check_docs.py

Exit code 0 when both checks pass; 1 with a per-finding report
otherwise.  CI runs this as the ``docs`` job.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
MARKDOWN = ["README.md", "ROADMAP.md", "docs"]

#: Packages whose public surface must be fully docstringed.
DOC_COVERAGE_PACKAGES = [
    "src/repro/cluster",
    "src/repro/fusion",
    "src/repro/serving",
    "src/repro/streaming",
]

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no support for angle-bracket or reference-style links; add it when
#: a doc needs one).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files() -> list[Path]:
    files: list[Path] = []
    for entry in MARKDOWN:
        path = REPO / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.is_file():
            files.append(path)
    return files


def check_links() -> list[str]:
    """Return one finding per broken relative link."""
    findings: list[str] = []
    for md in iter_markdown_files():
        for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:  # pure in-page anchor
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    findings.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return findings


def _public_defs(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    """Yield (qualified name, node) for every public def/class."""
    out: list[tuple[str, ast.AST]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = child.name
                if name.startswith("_"):  # private or dunder: exempt
                    continue
                qualified = f"{prefix}{name}"
                out.append((qualified, child))
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{qualified}.")

    walk(tree, "")
    return out


def check_doc_coverage() -> tuple[list[str], int]:
    """Return (findings, number of public definitions checked)."""
    findings: list[str] = []
    checked = 0
    for package in DOC_COVERAGE_PACKAGES:
        for source in sorted((REPO / package).glob("*.py")):
            tree = ast.parse(
                source.read_text(encoding="utf-8"), filename=str(source)
            )
            rel = source.relative_to(REPO)
            if ast.get_docstring(tree) is None:
                findings.append(f"{rel}:1: module has no docstring")
            checked += 1
            for name, node in _public_defs(tree):
                checked += 1
                if ast.get_docstring(node) is None:
                    findings.append(
                        f"{rel}:{node.lineno}: public "
                        f"{'class' if isinstance(node, ast.ClassDef) else 'function'} "
                        f"{name!r} has no docstring"
                    )
    return findings, checked


def main() -> int:
    link_findings = check_links()
    doc_findings, checked = check_doc_coverage()
    for finding in link_findings + doc_findings:
        print(f"FAIL  {finding}")
    n_md = len(iter_markdown_files())
    print(
        f"links: {n_md} markdown files checked, "
        f"{len(link_findings)} broken"
    )
    print(
        f"docstrings: {checked} public definitions checked in "
        f"{', '.join(DOC_COVERAGE_PACKAGES)}, {len(doc_findings)} missing"
    )
    ok = not link_findings and not doc_findings
    print("docs gate:", "passed" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
