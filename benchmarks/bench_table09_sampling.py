"""Table IX — SCALESAMPLE vs matched-budget BYITEM and BYCELL.

The paper's fairness protocol: draw SCALESAMPLE at a 10% nominal rate,
then give BYITEM the same realised *item* fraction and BYCELL the same
realised *cell* fraction.  Quality is measured against INDEX on the full
dataset.  Shape: on Book-CS the per-source floor wins clearly (F .88 vs
.67/.78); on dense stock data the three tie.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalDetector
from repro.eval import pair_quality, render_table, run_method
from repro.fusion import FusionConfig, run_fusion
from repro.sampling import (
    sample_by_cell,
    sample_by_item,
    sampled_cell_fraction,
    scale_sample,
)

from conftest import emit_report

PROFILES = ("book_cs", "stock_1day")
_rows: dict[str, list[list[object]]] = {}


def _detect_on_sample(dataset, items, params):
    sample = dataset.project_items(items)
    fusion = run_fusion(
        sample, params, detector=IncrementalDetector(params), config=FusionConfig(max_rounds=8)
    )
    return fusion.final_detection().copying_pairs()


@pytest.mark.parametrize("profile", PROFILES)
def test_sampling_strategies(benchmark, worlds, bench_params, profile):
    world = worlds[profile]
    dataset = world.dataset

    def execute():
        reference = run_method("index", dataset, bench_params).copying_pairs()
        rng = random.Random(29)
        scale_items = scale_sample(dataset, 0.1, rng, min_items_per_source=4)
        item_fraction = len(scale_items) / dataset.n_items
        cell_fraction = sampled_cell_fraction(dataset, scale_items)
        byitem_items = sample_by_item(dataset, item_fraction, random.Random(31))
        bycell_items = sample_by_cell(dataset, cell_fraction, random.Random(37))

        rows = []
        for name, items in [
            ("scalesample", scale_items),
            ("byitem", byitem_items),
            ("bycell", bycell_items),
        ]:
            pairs = _detect_on_sample(dataset, items, bench_params)
            q = pair_quality(reference, pairs)
            rows.append(
                [
                    name,
                    len(items),
                    q.precision,
                    q.recall,
                    q.f_measure,
                ]
            )
        return rows

    _rows[profile] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_table09(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for profile, rows in _rows.items():
        emit_report(
            "bench_table09_sampling",
            render_table(
                f"Table IX (reproduced): sampling strategies on {profile}",
                ["strategy", "#items", "prec", "rec", "F"],
                rows,
            ),
        )
    # Shape: SCALESAMPLE's F at least matches the naive strategies on the
    # low-coverage book profile.
    book = {row[0]: row[4] for row in _rows["book_cs"]}
    assert book["scalesample"] >= book["byitem"] - 1e-9
    assert book["scalesample"] >= book["bycell"] - 1e-9
