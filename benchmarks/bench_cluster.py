"""Simulated-cluster benchmark: the remote executor on 1/2/4 workers.

Companion to ``bench_parallel_engine.py`` one layer out: instead of an
in-process pool this spawns **separate worker interpreters**
(:class:`repro.cluster.LocalCluster`) and drives them over real TCP
sockets — the same path a multi-host deployment takes, minus the
network.  Shared memory never enters the picture: the remote path ships
the world over the wire by construction, so the measurement is an
honest preview of multi-host behaviour (localhost loopback stands in
for the fabric).

Measured per world (a dense synthetic world and a 10k-source Zipf
sparse world):

* INDEX detection wall-clock at a fixed partition count on 1-, 2- and
  4-worker clusters, plus the serial in-process time for context;
* per-cluster wire accounting (world broadcast, task, result bytes);
* the broadcast-once property across a 3-round fusion run (one full
  world frame per worker per session, diff-only updates after).

Correctness is the hard gate recorded in ``check``: every cluster size
must reproduce the serial verdicts **bit-identically** (fixed partition
count + deterministic LPT scheduling make worker count invisible to the
merge), and the fusion run must not re-broadcast the world.  Wall-clock
*scaling* depends on physical cores — a 1-core container can't speed
anything up by adding workers — so the 4-worker >= 2x floor is recorded
in the artifact's ``floors`` section together with the core count it
needs (``min_cpus``), and ``check_regression.py`` applies it only on
machines that can express it.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
        [--output PATH]

``--smoke`` shrinks the worlds for CI budgets; ``--output`` redirects
the artifact so the committed baseline stays untouched.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import time
from pathlib import Path

from repro.cluster import LocalCluster, parse_worker_spec
from repro.conformance.generators import RandomChooser, large_sparse_world
from repro.core import CopyParams, InvertedIndex, SingleRoundDetector
from repro.fusion import run_fusion, vote_probabilities
from repro.fusion.pipeline import FusionConfig
from repro.fusion.workspace import FusionWorkspace
from repro.parallel import detect_hybrid_parallel, detect_index_parallel
from repro.synth.generator import GeneratorConfig, generate

DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_cluster.json"

#: The scaling floor ``check_regression.py`` enforces — and the minimum
#: physical core count on which enforcing it is meaningful.
FLOORS = {"speedup_4w_vs_1w": 2.0, "min_cpus": 4}

WORKER_COUNTS = (1, 2, 4)

#: Partition count is fixed well above the largest cluster so the merge
#: tree — and therefore every float — is identical at every size.
N_PARTITIONS = 8

DENSE_CONFIG = GeneratorConfig(
    n_items=400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)
SMOKE_DENSE_CONFIG = GeneratorConfig(
    n_items=150,
    n_independent_sources=90,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=3,
    copiers_per_group=2,
)

SPARSE_WORLD = ("zipf_10k", 10_000, 400, 0.8)
SMOKE_SPARSE_WORLD = ("zipf_2k", 2_000, 300, 0.8)


def _best_of(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bit_identical(result, reference) -> bool:
    return (
        result.decisions == reference.decisions
        and result.cost.values_examined == reference.cost.values_examined
        and result.cost.pairs_considered == reference.cost.pairs_considered
    )


def _dense_world(smoke: bool):
    world = generate(SMOKE_DENSE_CONFIG if smoke else DENSE_CONFIG)
    dataset = world.dataset
    return dataset, vote_probabilities(dataset), [0.8] * dataset.n_sources


def _sparse_world(smoke: bool):
    label, n_sources, n_items, exponent = (
        SMOKE_SPARSE_WORLD if smoke else SPARSE_WORLD
    )
    world = large_sparse_world(
        RandomChooser(random.Random(1205)),
        n_sources=n_sources,
        n_items=n_items,
        zipf_exponent=exponent,
        coverage=1.0,
    )
    dataset, _, _ = world.materialize()
    return label, dataset, vote_probabilities(dataset), [0.8] * dataset.n_sources


def _bench_world(dataset, probabilities, accuracies, params) -> dict:
    index = InvertedIndex.build(dataset, probabilities, accuracies, params)

    def run_remote(executor):
        return detect_index_parallel(
            dataset,
            probabilities,
            accuracies,
            params,
            n_partitions=N_PARTITIONS,
            strategy="work",
            executor="remote",
            reduce="tree",
            index=index,
            cluster=executor,
        )

    serial = detect_index_parallel(
        dataset,
        probabilities,
        accuracies,
        params,
        n_partitions=N_PARTITIONS,
        strategy="work",
        executor="serial",
        reduce="tree",
        index=index,
    )
    row: dict = {
        "world": {
            "n_sources": dataset.n_sources,
            "n_items": dataset.n_items,
            "index_entries": index.n_entries,
        },
        "serial_seconds": _best_of(
            lambda: detect_index_parallel(
                dataset,
                probabilities,
                accuracies,
                params,
                n_partitions=N_PARTITIONS,
                strategy="work",
                executor="serial",
                reduce="tree",
                index=index,
            )
        ),
        "workers": {},
        "bit_identical": True,
    }
    for n_workers in WORKER_COUNTS:
        with LocalCluster(n_workers) as cluster:
            with cluster.executor() as executor:
                # The untimed first run doubles as warmup (connection
                # setup, the one-time world broadcast) and as the
                # correctness probe.
                result = run_remote(executor)
                identical = _bit_identical(result, serial)
                row["bit_identical"] = row["bit_identical"] and identical
                seconds = _best_of(lambda: run_remote(executor))
                stats = executor.stats
                row["workers"][str(n_workers)] = {
                    "seconds": seconds,
                    "bit_identical": identical,
                    "wire_bytes": {
                        "world": stats.broadcast_bytes,
                        "updates": stats.update_bytes,
                        "tasks": stats.task_bytes,
                        "results": stats.result_bytes,
                    },
                    "busy_seconds": round(
                        sum(w.busy_seconds for w in stats.workers.values()), 4
                    ),
                }
    one = row["workers"]["1"]["seconds"]
    for n_workers in WORKER_COUNTS[1:]:
        key = str(n_workers)
        row[f"speedup_{key}w_vs_1w"] = one / row["workers"][key]["seconds"]
    return row


def _fusion_broadcast_once(dataset, params) -> dict:
    """3-round remote fusion: the world must ship in full exactly once."""
    with LocalCluster(2) as cluster:
        spec = ",".join(cluster.addresses)
        with FusionWorkspace(dataset, params) as workspace:
            detector = SingleRoundDetector(
                params,
                method="index",
                n_partitions=N_PARTITIONS,
                executor="remote",
                reduce="tree",
                partition_by="work",
                cluster=spec,
            )
            run_fusion(
                dataset,
                params,
                detector=detector,
                config=FusionConfig(max_rounds=3, min_rounds=3),
                workspace=workspace,
            )
            stats = workspace.cluster(parse_worker_spec(spec)).stats
            worlds = [w.worlds for w in stats.workers.values()]
            updates = [w.updates for w in stats.workers.values()]
            return {
                "rounds": stats.rounds,
                "world_frames_per_worker": worlds,
                "update_frames_per_worker": updates,
                "world_bytes": stats.broadcast_bytes,
                "update_bytes": stats.update_bytes,
                "passed": all(w == 1 for w in worlds)
                and all(u >= 1 for u in updates),
            }


def run(smoke: bool = False) -> dict:
    params = CopyParams(backend="numpy")
    dense_dataset, dense_probs, dense_accs = _dense_world(smoke)
    sparse_label, sparse_dataset, sparse_probs, sparse_accs = _sparse_world(
        smoke
    )

    worlds = {
        "dense": _bench_world(dense_dataset, dense_probs, dense_accs, params),
        sparse_label: _bench_world(
            sparse_dataset, sparse_probs, sparse_accs, params
        ),
    }

    # HYBRID parity rides along as a pure correctness probe: the suffix
    # partitions flow through the same remote map/merge path.
    with LocalCluster(2) as cluster, cluster.executor() as executor:
        hybrid_kwargs = dict(
            n_partitions=4, reduce="tree", partition_by="work"
        )
        hybrid_serial = detect_hybrid_parallel(
            dense_dataset, dense_probs, dense_accs, params, **hybrid_kwargs
        )
        hybrid_remote = detect_hybrid_parallel(
            dense_dataset,
            dense_probs,
            dense_accs,
            params,
            executor="remote",
            cluster=executor,
            **hybrid_kwargs,
        )
        hybrid_identical = hybrid_remote.decisions == hybrid_serial.decisions

    broadcast_once = _fusion_broadcast_once(dense_dataset, params)

    passed = (
        all(row["bit_identical"] for row in worlds.values())
        and hybrid_identical
        and broadcast_once["passed"]
    )
    return {
        "benchmark": "cluster",
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "floors": dict(FLOORS),
        "n_partitions": N_PARTITIONS,
        "worlds": worlds,
        "hybrid_bit_identical": hybrid_identical,
        "broadcast_once": broadcast_once,
        "check": {
            "target": (
                "every cluster size reproduces the serial verdicts "
                "bit-identically (INDEX and HYBRID) and a 3-round fusion "
                "run ships the full world exactly once per worker"
            ),
            "passed": passed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small worlds for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"cpu_count={report['platform']['cpu_count']} "
        f"(scaling floor applies from {report['floors']['min_cpus']} cores)"
    )
    for label, row in report["worlds"].items():
        world = row["world"]
        print(
            f"{label}: {world['n_sources']:,} sources, "
            f"{world['index_entries']:,} entries, "
            f"serial={row['serial_seconds']:.3f}s"
        )
        for n_workers, timing in row["workers"].items():
            wire = timing["wire_bytes"]
            print(
                f"  {n_workers} worker(s): {timing['seconds']:.3f}s "
                f"(world {wire['world']:,} B, tasks {wire['tasks']:,} B, "
                f"results {wire['results']:,} B)"
            )
        for key in sorted(k for k in row if k.startswith("speedup_")):
            print(f"  {key} = {row[key]:.2f}x")
    once = report["broadcast_once"]
    print(
        f"broadcast-once over {once['rounds']} fusion rounds: "
        f"world x{once['world_frames_per_worker']} + "
        f"{once['update_bytes']:,} B of updates -> passed={once['passed']}"
    )
    print(
        f"check: {report['check']['target']} -> "
        f"passed={report['check']['passed']}"
    )
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
