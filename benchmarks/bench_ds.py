"""Dempster-Shafer combination benchmark: reference loop vs columnar.

PR 10 added a second truth-finding update (:mod:`repro.fusion.ds`):
credibility-weighted mass functions combined by Dempster's rule with a
per-item conflict diagnostic.  This bench times one full DS combination
pass — support masses, per-value ``log1p`` sums, the shifted per-item
renormalisation and the conflict dict — on the fusion bench's dense
world, in both implementations:

* ``python`` — the reference loop (:func:`ds_value_probabilities`).
* ``numpy`` — the columnar kernel
  (:func:`ds_value_probabilities_columnar` over
  :class:`~repro.fusion.accu_kernel.FusionColumns`, layout pre-built —
  the steady-state shape inside ``run_fusion``'s workspace).

The ``check`` block self-verifies the lockstep contract the conformance
grid enforces: identical fused truths, probabilities and per-item ``K``
within 1e-9.  The acceptance bar is parity or better (``speedup >=
1.0x``) for the columnar kernel, gated by ``check_regression.py`` — the
kernel must never lose to the loop it replaces.  Run::

    PYTHONPATH=src python benchmarks/bench_ds.py [--smoke] [--output PATH]

``--smoke`` shrinks the world for CI; ``--output`` redirects the
artifact so the committed baseline stays untouched (baselines are
historical records — regenerate only solo on an idle machine).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import CopyParams
from repro.fusion import choose_values, ds_value_probabilities
from repro.fusion.accu_kernel import FusionColumns
from repro.fusion.ds import ds_value_probabilities_columnar
from repro.synth.generator import GeneratorConfig, generate

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_ds.json"

#: The fusion bench's dense world: >= 200 sources, uniform coverage.
WORLD_CONFIG = GeneratorConfig(
    n_items=400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)

#: CI smoke world: same dense shape at roughly a quarter the incidences.
SMOKE_WORLD_CONFIG = GeneratorConfig(
    n_items=250,
    n_independent_sources=130,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=3,
    copiers_per_group=2,
)

#: Combination passes per timed run — one pass is microseconds-scale on
#: the smoke world, so batching keeps the timer above clock resolution.
PASSES = 10

TOL = 1e-9


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(smoke: bool = False) -> dict:
    world = generate(SMOKE_WORLD_CONFIG if smoke else WORLD_CONFIG)
    dataset = world.dataset
    stats = dataset.stats()
    params = CopyParams()
    accuracies = [0.8] * dataset.n_sources
    cols = FusionColumns.from_dataset(dataset)

    def python_pass():
        for _ in range(PASSES):
            result = ds_value_probabilities(dataset, accuracies, params)
        return result

    def numpy_pass():
        for _ in range(PASSES):
            result = ds_value_probabilities_columnar(cols, accuracies, params)
        return result

    t_python, r_python = _best_of(python_pass)
    t_numpy, r_numpy = _best_of(numpy_pass)

    prob_drift = max(
        abs(float(a) - float(b))
        for a, b in zip(r_python.probabilities, r_numpy.probabilities)
    )
    conflict_drift = max(
        abs(r_python.conflict[item] - r_numpy.conflict[item])
        for item in r_python.conflict
    )
    truths_match = choose_values(dataset, r_python.probabilities) == choose_values(
        dataset, [float(p) for p in r_numpy.probabilities]
    )
    lockstep = (
        set(r_python.conflict) == set(r_numpy.conflict)
        and prob_drift <= TOL
        and conflict_drift <= TOL
    )

    timings = {
        "ds_combination": {
            "python": t_python,
            "numpy": t_numpy,
            "speedup": t_python / t_numpy,
        }
    }
    return {
        "benchmark": "ds",
        "smoke": smoke,
        "world": {
            "n_sources": stats.n_sources,
            "n_items": stats.n_items,
            "n_values": stats.n_distinct_values,
            "index_entries": stats.n_index_entries,
        },
        "passes": PASSES,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "timings_seconds": timings,
        "check": {
            "target": "lockstep probabilities/conflict within 1e-9, "
            "identical truths, columnar speedup >= 1.0x",
            "truths_match": truths_match,
            "lockstep": lockstep,
            "prob_drift": prob_drift,
            "conflict_drift": conflict_drift,
            "passed": bool(
                truths_match
                and lockstep
                and timings["ds_combination"]["speedup"] >= 1.0
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small world for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    pair = report["timings_seconds"]["ds_combination"]
    print(
        f"ds combination ({report['passes']} passes) "
        f"python={pair['python']:.4f}s numpy={pair['numpy']:.4f}s "
        f"speedup={pair['speedup']:.1f}x"
    )
    print(f"check: {report['check']['target']} -> passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
