"""Ablation — uniform vs popularity-aware false-value model (footnote 2).

Worlds with Zipf-skewed false values (stale prices, common misspellings)
violate the base model's uniformity assumption: independent sources
repeating the same popular falsehood look like copiers.  The
popularity-aware model (``repro.core.popularity``) discounts exactly
those collisions.  This ablation sweeps the skew and reports how many
pairs each model flags beyond the planted copiers.
"""

from __future__ import annotations

import pytest

from repro.core import detect_pairwise, detect_pairwise_popular
from repro.eval import pair_quality, render_table
from repro.fusion import run_fusion
from repro.synth import GeneratorConfig, generate

from conftest import emit_report

SKEWS = (0.0, 1.5, 3.0)
_rows: list[list[object]] = []


@pytest.mark.parametrize("skew", SKEWS)
def test_skew(benchmark, bench_params, skew):
    def execute():
        world = generate(
            GeneratorConfig(
                n_items=500,
                n_independent_sources=24,
                coverage_range=(0.7, 1.0),
                accuracy_range=(0.45, 0.8),
                n_copier_groups=3,
                copiers_per_group=2,
                false_value_skew=skew,
                seed=31,
            )
        )
        dataset = world.dataset
        fusion = run_fusion(dataset, bench_params, detector=None)
        probabilities, accuracies = fusion.probabilities, fusion.accuracies
        uniform = detect_pairwise(dataset, probabilities, accuracies, bench_params)
        popular = detect_pairwise_popular(
            dataset, probabilities, accuracies, bench_params
        )
        planted = world.copy_pair_ids()
        rows = []
        for name, result in (("uniform", uniform), ("popularity", popular)):
            q = pair_quality(planted, result.copying_pairs())
            rows.append(
                [
                    skew,
                    name,
                    len(result.copying_pairs()),
                    len(result.copying_pairs() - planted),
                    q.recall,
                ]
            )
        return rows

    _rows.extend(benchmark.pedantic(execute, rounds=1, iterations=1))


def test_report_popularity(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit_report(
        "bench_ablation_popularity",
        render_table(
            "Ablation: uniform vs popularity-aware model under false-value skew",
            ["skew", "model", "flagged", "beyond planted", "planted recall"],
            _rows,
        ),
    )
    # At every skew level the popularity model flags no more
    # beyond-planted pairs than the uniform model, without losing recall.
    by_key = {(row[0], row[1]): row for row in _rows}
    for skew in SKEWS:
        uniform = by_key[(skew, "uniform")]
        popular = by_key[(skew, "popularity")]
        assert popular[3] <= uniform[3]
        assert popular[4] >= uniform[4] - 0.2
