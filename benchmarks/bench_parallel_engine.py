"""Micro-benchmark: the parallel engine's scaling knobs.

Companion to ``bench_kernel_backend.py``/``bench_bound_backend.py``:
this module tracks the *execution layer* — process-pool scaling with the
shared-memory world broadcast, flat vs tree reduction, and entry-count
vs work-balanced partitioning — on a dense synthetic world at >= 8
partitions, and writes a ``BENCH_parallel.json`` artifact so every
subsequent PR can compare against this one.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_parallel_engine.py [--smoke]
        [--output PATH]

``--smoke`` shrinks the world for CI; ``--output`` redirects the
artifact (CI writes to a scratch directory so the committed baseline
stays untouched).

Wall-clock speedups from a process pool depend on the core count of the
machine (CI runners and the dev container may expose a single core, in
which case pool overhead dominates), so the recorded ``check`` gates
*correctness* — every configuration must reproduce the sequential
verdicts — plus the partition-balance property of the ``"work"``
strategy, while the timings document the scaling trajectory per
platform.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core import CopyParams, InvertedIndex, detect_index
from repro.fusion import vote_probabilities
from repro.parallel import (
    detect_hybrid_parallel,
    detect_index_parallel,
    partition_entries,
    partition_weights,
    shared_memory_available,
)
from repro.synth.generator import GeneratorConfig, generate

DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_parallel.json"

#: The kernel benchmark's dense 212-source recipe.
WORLD_CONFIG = GeneratorConfig(
    n_items=400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)

#: CI smoke world: same shape, small enough for a sub-minute job.
SMOKE_WORLD_CONFIG = GeneratorConfig(
    n_items=150,
    n_independent_sources=90,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=3,
    copiers_per_group=2,
)

PARTITION_COUNTS = (1, 4, 8, 16)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _same_verdicts(result, reference) -> bool:
    return (
        set(result.decisions) == set(reference.decisions)
        and result.copying_pairs() == reference.copying_pairs()
    )


def run(smoke: bool = False) -> dict:
    config = SMOKE_WORLD_CONFIG if smoke else WORLD_CONFIG
    world = generate(config)
    dataset = world.dataset
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    params = CopyParams(backend="numpy")
    index = InvertedIndex.build(dataset, probabilities, accuracies, params)
    incidences = sum(
        len(e.providers) * (len(e.providers) - 1) // 2 for e in index.entries
    )
    sequential = detect_index(
        dataset, probabilities, accuracies, params, index=index
    )
    all_match = True

    def timed(n_partitions, executor, reduce, strategy="stride"):
        nonlocal all_match
        result = detect_index_parallel(
            dataset,
            probabilities,
            accuracies,
            params,
            n_partitions=n_partitions,
            strategy=strategy,
            executor=executor,
            reduce=reduce,
            index=index,
        )
        all_match = all_match and _same_verdicts(result, sequential)
        return _best_of(
            lambda: detect_index_parallel(
                dataset,
                probabilities,
                accuracies,
                params,
                n_partitions=n_partitions,
                strategy=strategy,
                executor=executor,
                reduce=reduce,
                index=index,
            ),
            repeats=2 if executor == "processes" else 3,
        )

    # Process-pool scaling over the broadcast world, flat vs tree reduce.
    scaling: dict[str, dict] = {}
    for n_partitions in PARTITION_COUNTS:
        row = {
            "serial_flat": timed(n_partitions, "serial", "flat"),
            "processes_flat": timed(n_partitions, "processes", "flat"),
            "processes_tree": timed(n_partitions, "processes", "tree"),
        }
        scaling[str(n_partitions)] = row

    # Reduce topology at high partition counts, serial map so the merge
    # cost dominates the measurement.
    reduce_row = {
        "flat": timed(16, "serial", "flat"),
        "tree": timed(16, "serial", "tree"),
    }

    # Partition balance: stride vs work (max/min incidence load at 8).
    balance = {}
    for strategy in ("stride", "work"):
        parts = partition_entries(index, 8, strategy)
        weights = [partition_weights(index, p) for p in parts]
        balance[strategy] = {
            "min": min(weights),
            "max": max(weights),
            "spread": max(weights) - min(weights),
        }
    balanced = balance["work"]["spread"] <= balance["stride"]["spread"]

    # HYBRID with the suffix map/reduced through the same machinery.
    # Same configuration across executors must be *bit-identical* (the
    # shm broadcast ships the very same arrays); different reduce/
    # partition configurations re-associate float sums and are compared
    # at verdict level by the tests instead.
    hybrid_serial = detect_hybrid_parallel(
        dataset,
        probabilities,
        accuracies,
        params,
        n_partitions=8,
        reduce="tree",
        partition_by="work",
        index=index,
    )
    hybrid_processes = detect_hybrid_parallel(
        dataset,
        probabilities,
        accuracies,
        params,
        n_partitions=8,
        executor="processes",
        reduce="tree",
        partition_by="work",
        index=index,
    )
    hybrid_identical = hybrid_processes.decisions == hybrid_serial.decisions
    hybrid = {
        "serial": _best_of(
            lambda: detect_hybrid_parallel(
                dataset,
                probabilities,
                accuracies,
                params,
                n_partitions=8,
                index=index,
            ),
            repeats=2,
        ),
        "processes_tree_work": _best_of(
            lambda: detect_hybrid_parallel(
                dataset,
                probabilities,
                accuracies,
                params,
                n_partitions=8,
                executor="processes",
                reduce="tree",
                partition_by="work",
                index=index,
            ),
            repeats=2,
        ),
    }

    passed = all_match and hybrid_identical and balanced
    return {
        "benchmark": "parallel_engine",
        "smoke": smoke,
        "world": {
            "n_sources": dataset.n_sources,
            "n_items": dataset.n_items,
            "n_values": dataset.n_values,
            "index_entries": index.n_entries,
            "incidences": incidences,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "shared_memory": shared_memory_available(),
        },
        "timings_seconds": {
            "index_sequential": _best_of(
                lambda: detect_index(
                    dataset, probabilities, accuracies, params, index=index
                )
            ),
            "scaling_by_partitions": scaling,
            "reduce_at_16_partitions": reduce_row,
            "hybrid_at_8_partitions": hybrid,
        },
        "partition_balance_at_8": balance,
        "check": {
            "target": (
                "all partitioned configurations reproduce the sequential "
                "verdicts; 'work' partitioning balances no worse than "
                "'stride'"
            ),
            "passed": passed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small world for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    world = report["world"]
    print(
        f"world: {world['n_sources']} sources, {world['n_items']} items, "
        f"{world['incidences']:,} incidences "
        f"(cpu_count={report['platform']['cpu_count']}, "
        f"shm={report['platform']['shared_memory']})"
    )
    timings = report["timings_seconds"]
    print(f"sequential index scan: {timings['index_sequential']:.4f}s")
    for n_parts, row in timings["scaling_by_partitions"].items():
        print(
            f"  P={n_parts:>2s} serial={row['serial_flat']:.4f}s "
            f"processes(flat)={row['processes_flat']:.4f}s "
            f"processes(tree)={row['processes_tree']:.4f}s"
        )
    reduce_row = timings["reduce_at_16_partitions"]
    print(
        f"reduce at P=16: flat={reduce_row['flat']:.4f}s "
        f"tree={reduce_row['tree']:.4f}s"
    )
    for strategy, row in report["partition_balance_at_8"].items():
        print(
            f"balance[{strategy}]: min={row['min']:,} max={row['max']:,} "
            f"spread={row['spread']:,}"
        )
    hybrid = timings["hybrid_at_8_partitions"]
    print(
        f"hybrid P=8: serial={hybrid['serial']:.4f}s "
        f"processes(tree,work)={hybrid['processes_tree_work']:.4f}s"
    )
    print(f"check: {report['check']['target']} -> passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
