"""Serving benchmark: the verdict store's LRU read API vs recomputation.

The serving layer exists so that answering "is S1 copying from S2?"
after a fusion run does not mean holding the whole ``DetectionResult``
hot and re-deriving the three-way posterior on every request.  This
benchmark measures exactly that trade on a synthetic Zipf world:

* **read_api** — a skewed query workload (hot pairs dominate, a few
  never-observed pairs mixed in) served two ways: the baseline
  recomputes each reply from the in-memory ``DetectionResult``
  (``decision_for`` + ``posterior()`` + reply construction), the
  contender asks a :class:`~repro.serving.VerdictReader` whose per-view
  LRU answers hot pairs at C speed.  The recorded ``speedup`` is
  queries/sec served over queries/sec recomputed — gated at the 10x
  floor by ``check_regression.py``.
* **concurrent_refresh** — a writer thread republishes rounds into the
  store while a reader thread serves the same workload, calling
  ``refresh()`` periodically; every read is verified against the exact
  state of the snapshot it claims to come from (precomputed by a dry
  run — snapshot ids are sequential, so the live store reproduces
  them).  Recorded: queries/sec and p50/p99 latency *including* the
  refresh() calls, plus the verification verdict.
* **delta accounting** — the incremental fusion run that seeded the
  store must have published delta snapshots whose pair rows are exactly
  the pairs its bookkeeping re-opened or rebuilt that round
  (``DetectionResult.decision_delta``), not full rewrites.

``check.passed`` gates all three correctness claims (served replies
match recomputed ones, concurrent reads verify, deltas are minimal);
the speedup floor is applied separately by the regression gate.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
        [--output PATH]

``--smoke`` shrinks the world and the workload for CI; ``--output``
redirects the artifact so the committed baseline stays untouched.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.core import CopyParams, IncrementalDetector, posterior
from repro.core.result import DetectionResult, PairDecision
from repro.fusion import FusionConfig, run_fusion
from repro.serving import (
    FLAG_COPYING,
    SnapshotPublisher,
    Verdict,
    VerdictReader,
    VerdictStore,
)
from repro.synth import make_profile

DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_serve.json"

#: Queries per timing pass (the LRU warms up inside the first pass).
FULL_QUERIES = 200_000
SMOKE_QUERIES = 40_000

#: Synthetic republish rounds for the concurrent-refresh section.
FULL_ROUNDS = 12
SMOKE_ROUNDS = 6


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _decision(params: CopyParams, c_fwd: float, c_bwd: float) -> PairDecision:
    post = posterior(c_fwd, c_bwd, params)
    return PairDecision(
        c_fwd=c_fwd, c_bwd=c_bwd, posterior=post, copying=post.copying, early=False
    )


def _workload(
    detection: DetectionResult, n_sources: int, n_queries: int, seed: int
) -> list[tuple[int, int]]:
    """A skewed serving workload over one detection's pair space.

    Real query traffic concentrates on the suspicious pairs: 80% of the
    queries hit a "hot" tenth of the observed pairs, the rest spread
    over the full observed set plus a 5% sprinkle of never-observed
    pairs (which both contenders must answer with "no verdict").
    """
    rng = random.Random(seed)
    observed = sorted(detection.decisions)
    hot = observed[: max(1, len(observed) // 10)]
    unobserved: list[tuple[int, int]] = []
    while len(unobserved) < max(1, len(observed) // 5):
        s1, s2 = rng.randrange(n_sources), rng.randrange(n_sources)
        if s1 != s2 and (min(s1, s2), max(s1, s2)) not in detection.decisions:
            unobserved.append((s1, s2))
    queries: list[tuple[int, int]] = []
    for _ in range(n_queries):
        roll = rng.random()
        if roll < 0.80:
            pair = hot[rng.randrange(len(hot))]
        elif roll < 0.95:
            pair = observed[rng.randrange(len(observed))]
        else:
            pair = unobserved[rng.randrange(len(unobserved))]
        # Callers don't know the canonical order; flip half the queries.
        queries.append(pair if rng.random() < 0.5 else (pair[1], pair[0]))
    return queries


def _baseline_get_verdict(
    detection: DetectionResult,
    params: CopyParams,
    positions: dict[tuple[int, int], int],
    s1: int,
    s2: int,
) -> Verdict | None:
    """What serving a query costs *without* the store: recompute it.

    Mirrors ``VerdictReader.get_verdict`` reply-for-reply — normalize
    the pair, look the decision up on the live ``DetectionResult``,
    re-derive the three-way posterior and build the same reply tuple —
    so the measured gap is purely store-and-cache vs recompute.
    """
    if s2 < s1:
        s1, s2 = s2, s1
    decision = detection.decisions.get((s1, s2))
    if decision is None:
        return None
    post = posterior(decision.c_fwd, decision.c_bwd, params)
    return Verdict(
        source_1=s1,
        source_2=s2,
        copying=decision.copying,
        early=decision.early,
        independent=post.independent,
        forward=post.forward,
        backward=post.backward,
        c_fwd=decision.c_fwd,
        c_bwd=decision.c_bwd,
        decision_pos=positions.get((s1, s2), -1),
        snapshot_id=0,
    )


def _bench_read_api(
    store_dir: Path,
    detection: DetectionResult,
    params: CopyParams,
    n_sources: int,
    n_queries: int,
) -> tuple[dict, bool]:
    queries = _workload(detection, n_sources, n_queries, seed=17)
    positions: dict[tuple[int, int], int] = {}
    reader = VerdictReader(store_dir)

    # Replies must agree before timing means anything: the copying
    # verdict always; the score fields only where the final decision is
    # exact.  (For pairs a later incremental round merely re-confirmed
    # via bounds — ``early=True`` — the store deliberately keeps the
    # last exactly-computed scores instead of the pessimistic bound.)
    replies_match = True
    for s1, s2 in queries[:2000]:
        served = reader.get_verdict(s1, s2)
        computed = _baseline_get_verdict(detection, params, positions, s1, s2)
        if (served is None) != (computed is None):
            replies_match = False
            break
        if served is None:
            continue
        if served.copying != computed.copying:
            replies_match = False
            break
        if not computed.early and (
            abs(served.independent - computed.independent) > 1e-9
            or served.c_fwd != computed.c_fwd
        ):
            replies_match = False
            break

    def run_baseline():
        get = _baseline_get_verdict
        for s1, s2 in queries:
            get(detection, params, positions, s1, s2)

    def run_served():
        get = reader.get_verdict
        for s1, s2 in queries:
            get(s1, s2)

    run_served()  # warm the LRU once; steady-state serving is what ships
    baseline_s = _best_of(run_baseline)
    served_s = _best_of(run_served)
    row = {
        "n_queries": n_queries,
        "baseline": baseline_s,
        "served": served_s,
        "baseline_qps": n_queries / baseline_s,
        "served_qps": n_queries / served_s,
        "speedup": baseline_s / served_s,
        "cache": reader.cache_info()["verdict_cache"],
    }
    return row, replies_match


def _bench_concurrent_refresh(
    tmp: Path, dataset, params: CopyParams, n_rounds: int
) -> tuple[dict, bool]:
    """Serve while a writer republishes; verify every read's snapshot."""
    n = dataset.n_sources
    rng = random.Random(29)
    all_keys = [(i, j) for i in range(n) for j in range(i + 1, n)]
    base = {
        key: _decision(params, rng.uniform(-5, 8), rng.uniform(-5, 8))
        for key in rng.sample(all_keys, min(len(all_keys), 40))
    }
    rounds = [dict(base)]
    for _ in range(n_rounds - 1):
        for key in rng.sample(sorted(base), min(len(base), 8)):
            base[key] = _decision(params, rng.uniform(-5, 8), rng.uniform(-5, 8))
        rounds.append(dict(base))
    probs = [0.9] * len(dataset.value_item)

    def result_of(decisions) -> DetectionResult:
        return DetectionResult(
            method="hybrid", decisions=dict(decisions), n_sources=n
        )

    # Dry run: learn each snapshot's exact state before any thread starts.
    scratch = SnapshotPublisher(tmp / "scratch", dataset)
    states: dict[int, dict[int, tuple[bool, float]]] = {}
    for round_no, decisions in enumerate(rounds):
        sid = scratch.publish_round(round_no, result_of(decisions), probs)
        prev = scratch.prev_pairs
        states[sid] = {
            int(k): (bool(f & FLAG_COPYING), float(cf))
            for k, f, cf in zip(prev.keys, prev.flags, prev.c_fwd)
        }
    last_sid = max(states)

    live = SnapshotPublisher(tmp / "live", dataset)
    live.publish_round(0, result_of(rounds[0]), probs)
    reader = VerdictReader(tmp / "live")
    errors: list[str] = []
    latencies_ns: list[int] = []
    refreshes = 0
    verified = 0

    def writer():
        for round_no, decisions in enumerate(rounds[1:], start=1):
            time.sleep(0.005)
            live.publish_round(round_no, result_of(decisions), probs)

    def read_loop():
        nonlocal refreshes, verified
        i = 0
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            start = time.perf_counter_ns()
            if i % 16 == 0:
                refreshes += reader.refresh()
            s1, s2 = all_keys[i % len(all_keys)]
            verdict = reader.get_verdict(s1, s2)
            latencies_ns.append(time.perf_counter_ns() - start)
            i += 1
            key = s1 * n + s2
            if verdict is None:
                if key in states[last_sid]:
                    errors.append(f"missing verdict for observed pair {key}")
                    return
                continue
            expected = states[verdict.snapshot_id].get(key)
            if expected is None:
                errors.append(
                    f"pair {key} served but absent from snapshot "
                    f"{verdict.snapshot_id}"
                )
                return
            if (verdict.copying, verdict.c_fwd) != expected:
                errors.append(
                    f"inconsistent read of pair {key} at snapshot "
                    f"{verdict.snapshot_id}"
                )
                return
            verified += 1
            if reader.snapshot_id == last_sid and i > 4 * len(all_keys):
                return

    write_thread = threading.Thread(target=writer)
    read_thread = threading.Thread(target=read_loop)
    write_thread.start()
    read_thread.start()
    write_thread.join()
    read_thread.join()

    latencies_ns.sort()
    total_s = sum(latencies_ns) / 1e9
    n_reads = len(latencies_ns)

    def pct(p: float) -> float:
        return latencies_ns[min(n_reads - 1, int(p * n_reads))] / 1000.0

    row = {
        "rounds_published": n_rounds,
        "reads": n_reads,
        "reads_verified": verified,
        "refreshes_observed": refreshes,
        "qps": n_reads / total_s if total_s else 0.0,
        "p50_us": pct(0.50),
        "p99_us": pct(0.99),
        "errors": errors[:3],
    }
    ok = not errors and verified > 0 and reader.snapshot_id == last_sid
    return row, ok


def _check_delta_accounting(store: VerdictStore, fusion_rounds) -> tuple[dict, bool]:
    """Delta snapshots must rewrite exactly the re-opened pairs."""
    detections = [record.detection for record in fusion_rounds]
    kinds: list[str] = []
    minimal = True
    delta_rows = 0
    for idx, sid in enumerate(store.snapshot_ids()):
        meta, arrays = store.load(sid)
        kinds.append(meta["kind"])
        if meta["kind"] != "delta":
            continue
        delta_rows += int(meta["n_pairs"])
        delta = detections[idx].decision_delta(detections[idx - 1])
        n = detections[idx].n_sources
        expected = {s1 * n + s2 for s1, s2 in delta.changed}
        expected_removed = {s1 * n + s2 for s1, s2 in delta.removed}
        if set(int(k) for k in arrays["pair_keys"]) != expected:
            minimal = False
        if set(int(k) for k in arrays["removed_pair_keys"]) != expected_removed:
            minimal = False
    row = {
        "kinds": kinds,
        "delta_snapshots": kinds.count("delta"),
        "delta_pair_rows_total": delta_rows,
    }
    return row, minimal and "delta" in kinds


def run(smoke: bool = False) -> dict:
    world = make_profile("book_cs", scale=0.04 if smoke else 0.12, seed=7)
    dataset = world.dataset
    params = CopyParams(backend="numpy")
    n_queries = SMOKE_QUERIES if smoke else FULL_QUERIES

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp_name:
        tmp = Path(tmp_name)
        store_dir = tmp / "store"
        result = run_fusion(
            dataset,
            params,
            detector=IncrementalDetector(params),
            config=FusionConfig(max_rounds=8),
            snapshot_store=store_dir,
        )
        store = VerdictStore(store_dir, create=False)
        detection = result.final_detection()

        read_api, replies_match = _bench_read_api(
            store_dir, detection, params, dataset.n_sources, n_queries
        )
        deltas, deltas_minimal = _check_delta_accounting(store, result.rounds)
        concurrent, concurrent_ok = _bench_concurrent_refresh(
            tmp, dataset, params, SMOKE_ROUNDS if smoke else FULL_ROUNDS
        )

    passed = replies_match and deltas_minimal and concurrent_ok
    return {
        "benchmark": "serve",
        "smoke": smoke,
        "world": {
            "profile": "book_cs",
            "n_sources": dataset.n_sources,
            "n_items": dataset.n_items,
            "n_values": dataset.n_values,
            "observed_pairs": len(detection.decisions),
            "fusion_rounds": len(result.rounds),
            "snapshots": result.snapshot_ids,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "timings_seconds": {
            "read_api": read_api,
            "concurrent_refresh": concurrent,
        },
        "delta_accounting": deltas,
        "check": {
            "target": (
                "served replies match recomputed ones; every concurrent "
                "read verifies against its snapshot; delta snapshots "
                "rewrite exactly the re-opened pairs"
            ),
            "replies_match": replies_match,
            "concurrent_reads_verified": concurrent_ok,
            "deltas_minimal": deltas_minimal,
            "passed": passed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small world for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    world = report["world"]
    print(
        f"world: {world['n_sources']} sources, {world['n_items']} items, "
        f"{world['observed_pairs']} observed pairs, "
        f"{world['fusion_rounds']} fusion rounds"
    )
    read_api = report["timings_seconds"]["read_api"]
    print(
        f"read API: baseline {read_api['baseline_qps']:,.0f} q/s, "
        f"served {read_api['served_qps']:,.0f} q/s "
        f"-> {read_api['speedup']:.1f}x"
    )
    concurrent = report["timings_seconds"]["concurrent_refresh"]
    print(
        f"concurrent refresh: {concurrent['reads']:,} reads "
        f"({concurrent['reads_verified']:,} verified) at "
        f"{concurrent['qps']:,.0f} q/s, p50={concurrent['p50_us']:.1f}us "
        f"p99={concurrent['p99_us']:.1f}us across "
        f"{concurrent['rounds_published']} republishes"
    )
    deltas = report["delta_accounting"]
    print(
        f"deltas: {deltas['delta_snapshots']} delta snapshots, "
        f"{deltas['delta_pair_rows_total']} rewritten pair rows "
        f"(kinds: {', '.join(deltas['kinds'])})"
    )
    print(f"check: passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
