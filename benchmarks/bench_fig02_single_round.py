"""Figure 2 — computations and time of the single-round algorithms.

Paper shape, per dataset, across INDEX / BOUND / BOUND+ / HYBRID:

* BOUND does *more* computations than INDEX on three of four datasets
  (bound upkeep outweighs the values it skips);
* BOUND+ cuts BOUND's computations roughly in half (55% avg);
* HYBRID matches BOUND+ on stock data (every pair is high-overlap) and
  improves another ~20% on the book data.
"""

from __future__ import annotations

import pytest

from repro.eval import render_table, run_method

from conftest import BENCH_SCALES, emit_report

PROFILES = tuple(BENCH_SCALES)
METHODS = ("index", "bound", "bound+", "hybrid")
_runs: dict[tuple[str, str], object] = {}


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("method", METHODS)
def test_single_round_method(benchmark, worlds, bench_params, profile, method):
    world = worlds[profile]

    def execute():
        return run_method(method, world.dataset, bench_params)

    _runs[(profile, method)] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_fig02(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for measure, attr in (
        ("computations (all rounds)", "computations"),
        ("detection seconds (all rounds)", "detection_seconds"),
    ):
        rows = []
        for profile in PROFILES:
            rows.append(
                [profile]
                + [getattr(_runs[(profile, m)], attr) for m in METHODS]
            )
        emit_report(
            "bench_fig02_single_round",
            render_table(
                f"Figure 2 (reproduced): {measure}",
                ["dataset"] + list(METHODS),
                rows,
            ),
        )

    # Shape assertions.
    for profile in PROFILES:
        bound = _runs[(profile, "bound")]
        bound_plus = _runs[(profile, "bound+")]
        hybrid = _runs[(profile, "hybrid")]
        assert bound_plus.computations < bound.computations, profile
        # HYBRID ~ BOUND+ everywhere; the footnote-16 threshold trade is
        # cost-model dependent, so allow a modest excess (our book_full
        # regime lets BOUND+ conclude tiny pairs at first sight, which
        # exact mode cannot — see EXPERIMENTS.md).
        assert hybrid.computations <= bound_plus.computations * 1.2, profile
    hybrid_cs = _runs[("book_cs", "hybrid")]
    bplus_cs = _runs[("book_cs", "bound+")]
    assert hybrid_cs.computations <= bplus_cs.computations
    # Stock data: every pair shares a lot, so HYBRID ~ BOUND+ (paper VI-C).
    stock_hybrid = _runs[("stock_1day", "hybrid")]
    stock_bplus = _runs[("stock_1day", "bound+")]
    assert stock_hybrid.computations == pytest.approx(
        stock_bplus.computations, rel=0.05
    )
