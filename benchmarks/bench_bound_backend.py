"""Micro-benchmark: python vs numpy backend on the BOUND-family scans.

Companion to ``bench_kernel_backend.py`` (which tracks the exhaustive
scans): this module times BOUND, BOUND+ and HYBRID under both backends
on a dense 212-source synthetic world, sweeps the numpy backend's epoch
size, verifies the backends' decisions and INCREMENTAL bookkeeping are
**bit-identical** (the epoch-batched backend's contract — stronger than
the kernel's 1e-9), and writes a ``BENCH_bound.json`` artifact so every
subsequent PR can compare against this one.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_bound_backend.py [--smoke]
        [--output PATH]

``--smoke`` keeps the full primary world (BOUND+ only clears the 3x
floor at scale) but drops the epoch sweep and the small-world data
point — about a quarter of the full runtime; ``--output`` redirects the
artifact so the committed baseline stays untouched.

The world keeps ``bench_kernel_backend``'s 212-source dense recipe but
at 2400 items — the regime the epoch batching targets: pairs share
enough items that the scan is long, early terminations still prune ~60%
of the incidences, and the paper's Fig. 2 overhead trade-off is in full
effect.  The 400-item kernel-bench world is timed too, as a small-world
reference point.  The acceptance bar recorded by ``check`` is a >= 3x
speedup for BOUND and BOUND+ on the large world at the default epoch
size, with bit-identical outcomes.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import CopyParams, InvertedIndex, detect_hybrid
from repro.core.bound import detect_bound, detect_bound_plus
from repro.core.bound_kernel import DEFAULT_EPOCH_SIZE
from repro.fusion import vote_probabilities
from repro.synth.generator import GeneratorConfig, generate

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_bound.json"

#: 212 sources (200 independents + 4 planted copier groups of 3), dense
#: uniform coverage over 2400 items — the primary world.
WORLD_CONFIG = GeneratorConfig(
    n_items=2400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)

#: The kernel benchmark's 400-item world, for the small-world data point.
SMALL_WORLD_CONFIG = GeneratorConfig(
    n_items=400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)


EPOCH_SWEEP = (32, 64, 128, 256, 512)

METHODS = (
    ("bound", detect_bound),
    ("bound+", detect_bound_plus),
)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_world(config: GeneratorConfig, sweep=EPOCH_SWEEP) -> dict:
    world = generate(config)
    dataset = world.dataset
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    params_python = CopyParams(backend="python")
    params_numpy = CopyParams(backend="numpy")
    index = InvertedIndex.build(dataset, probabilities, accuracies, params_python)
    incidences = sum(
        len(e.providers) * (len(e.providers) - 1) // 2 for e in index.entries
    )

    timings: dict[str, dict] = {}
    identical = True
    for name, fn in METHODS:
        python_result = fn(
            dataset, probabilities, accuracies, params_python, index=index
        )
        row: dict = {
            "python": _best_of(
                lambda: fn(
                    dataset, probabilities, accuracies, params_python, index=index
                )
            ),
            "numpy_by_epoch": {},
            "values_examined": python_result.cost.values_examined,
            "early_pairs": sum(
                1 for d in python_result.decisions.values() if d.early
            ),
            "pairs": len(python_result.decisions),
        }
        for epoch_size in sweep:
            numpy_result = fn(
                dataset,
                probabilities,
                accuracies,
                params_numpy,
                index=index,
                epoch_size=epoch_size,
            )
            identical = identical and (
                numpy_result.decisions == python_result.decisions
            )
            row["numpy_by_epoch"][str(epoch_size)] = _best_of(
                lambda: fn(
                    dataset,
                    probabilities,
                    accuracies,
                    params_numpy,
                    index=index,
                    epoch_size=epoch_size,
                )
            )
        default_time = row["numpy_by_epoch"].get(
            str(DEFAULT_EPOCH_SIZE),
            min(row["numpy_by_epoch"].values()),
        )
        row["numpy_default"] = default_time
        row["speedup_default"] = row["python"] / default_time
        row["best_epoch"] = min(
            row["numpy_by_epoch"], key=row["numpy_by_epoch"].get
        )
        timings[name] = row

    # HYBRID (prep-round shape: with bookkeeping) at the default epoch.
    hybrid_python = detect_hybrid(
        dataset,
        probabilities,
        accuracies,
        params_python,
        index=index,
        track_bookkeeping=True,
    )
    hybrid_numpy = detect_hybrid(
        dataset,
        probabilities,
        accuracies,
        params_numpy,
        index=index,
        track_bookkeeping=True,
    )
    identical = identical and (
        hybrid_numpy.result.decisions == hybrid_python.result.decisions
    )
    identical = identical and (hybrid_numpy.bookkeeping == hybrid_python.bookkeeping)
    timings["hybrid"] = {
        "python": _best_of(
            lambda: detect_hybrid(
                dataset,
                probabilities,
                accuracies,
                params_python,
                index=index,
                track_bookkeeping=True,
            ),
            repeats=2,
        ),
        "numpy_default": _best_of(
            lambda: detect_hybrid(
                dataset,
                probabilities,
                accuracies,
                params_numpy,
                index=index,
                track_bookkeeping=True,
            ),
            repeats=2,
        ),
    }
    timings["hybrid"]["speedup_default"] = (
        timings["hybrid"]["python"] / timings["hybrid"]["numpy_default"]
    )

    return {
        "world": {
            "n_sources": dataset.n_sources,
            "n_items": dataset.n_items,
            "n_values": dataset.n_values,
            "index_entries": index.n_entries,
            "incidences": incidences,
        },
        "timings_seconds": timings,
        "bit_identical": identical,
    }


def run(smoke: bool = False) -> dict:
    # BOUND+'s epoch batching only clears the 3x floor once pairs share
    # enough items (the timer/replay overhead amortises with scan
    # length), so smoke mode keeps the full 2400-item world and instead
    # drops the epoch sweep and the small-world data point — roughly a
    # quarter of the full runtime with the same acceptance bar.
    if smoke:
        large = _bench_world(WORLD_CONFIG, sweep=(DEFAULT_EPOCH_SIZE,))
        worlds = {"large_world": large}
    else:
        large = _bench_world(WORLD_CONFIG)
        worlds = {
            "large_world": large,
            "small_world": _bench_world(SMALL_WORLD_CONFIG, sweep=(64, 128, 256)),
        }
    passed = (
        all(w["bit_identical"] for w in worlds.values())
        and large["timings_seconds"]["bound"]["speedup_default"] >= 3.0
        and large["timings_seconds"]["bound+"]["speedup_default"] >= 3.0
    )
    return {
        "benchmark": "bound_backend",
        "smoke": smoke,
        "default_epoch_size": DEFAULT_EPOCH_SIZE,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        **worlds,
        "check": {
            "target": (
                "bound and bound+ >= 3x at the default epoch size on the "
                "2400-item dense world, bit-identical outcomes"
            ),
            "passed": passed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke run: same world, no epoch sweep or small-world point",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for scale in ("large_world", "small_world"):
        if scale not in report:
            continue
        world = report[scale]["world"]
        print(f"{scale}: {world['n_sources']} sources, {world['n_items']} items, "
              f"{world['incidences']:,} incidences")
        for name, row in report[scale]["timings_seconds"].items():
            sweep = ", ".join(
                f"{es}->{t:.3f}s"
                for es, t in sorted(
                    row.get("numpy_by_epoch", {}).items(), key=lambda kv: int(kv[0])
                )
            )
            print(
                f"  {name:7s} python={row['python']:.3f}s "
                f"numpy={row['numpy_default']:.3f}s "
                f"speedup={row['speedup_default']:.1f}x"
                + (f"  sweep[{sweep}]" if sweep else "")
            )
        print(f"  bit_identical={report[scale]['bit_identical']}")
    print(f"check: {report['check']['target']} -> passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
