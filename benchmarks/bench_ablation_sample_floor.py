"""Ablation — SCALESAMPLE's per-source floor N (the paper fixes N = 4).

Section VI-E attributes SCALESAMPLE's win to "sampling at least N = 4
data items from each source".  Sweeping N shows the mechanism: N = 0 is
plain BYITEM (low-coverage sources lose everything), quality climbs
steeply through N = 2-4, then saturates while the realised sample size
keeps growing — N = 4 buys most of the quality at a modest size premium.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalDetector
from repro.eval import pair_quality, render_table, run_method
from repro.fusion import FusionConfig, run_fusion
from repro.sampling import scale_sample

from conftest import emit_report

FLOORS = (0, 1, 2, 4, 8, 16)
_rows: dict[str, list[list[object]]] = {}


@pytest.mark.parametrize("profile", ["book_cs"])
def test_floor_sweep(benchmark, worlds, bench_params, profile):
    world = worlds[profile]
    dataset = world.dataset

    def execute():
        reference = run_method("index", dataset, bench_params).copying_pairs()
        rows = []
        for floor in FLOORS:
            items = scale_sample(
                dataset, 0.1, random.Random(41), min_items_per_source=floor
            )
            sample = dataset.project_items(items)
            fusion = run_fusion(
                sample,
                bench_params,
                detector=IncrementalDetector(bench_params),
                config=FusionConfig(max_rounds=8),
            )
            quality = pair_quality(
                reference, fusion.final_detection().copying_pairs()
            )
            rows.append(
                [
                    floor,
                    len(items),
                    len(items) / dataset.n_items,
                    quality.precision,
                    quality.recall,
                    quality.f_measure,
                ]
            )
        return rows

    _rows[profile] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_floor(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for profile, rows in _rows.items():
        emit_report(
            "bench_ablation_sample_floor",
            render_table(
                f"Ablation: SCALESAMPLE floor N on {profile} (10% nominal)",
                ["N", "#items", "realised rate", "prec", "rec", "F"],
                rows,
            ),
        )
    rows = _rows["book_cs"]
    f_by_floor = {row[0]: row[5] for row in rows}
    # The paper's mechanism: the floor rescues quality on skewed data.
    assert f_by_floor[4] > f_by_floor[0]
    # And the realised sample size grows monotonically with N.
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes)
