"""Regression gate over the ``BENCH_*.json`` artifacts.

Compares freshly generated benchmark artifacts against the committed
baselines under ``benchmarks/output/`` and **fails** (exit code 1) when:

* the kernel backend's ``index_scan`` speedup, the bound backend's
  ``bound``/``bound+`` speedups, or the fusion pipeline's
  ``run_fusion`` reused-workspace speedup drop below the ROADMAP's 3x
  floor, or the scale sweep's sparse-vs-reference speedups drop below
  their parity floor, or the serving layer's LRU read API drops below
  its 10x floor over recomputed verdicts, or the streaming service
  slips below the absolute ingest/latency floors recorded in its own
  artifact (``BENCH_FLOORS``)
  (after a measurement-noise tolerance — speedups are a ratio of two
  wall-clock numbers and swing ~10% run to run even on an idle machine,
  so the hard cut is ``floor * (1 - tolerance)``; anything between the
  cut and the floor is reported as a warning);
* any artifact's self-recorded ``check.passed`` is false for
  correctness-type checks (bit-identical outcomes, parallel verdict
  equivalence);
* a required artifact is missing or unreadable.

Baseline comparison is *reported* (speedup deltas vs the committed
numbers) but does not fail the gate on its own: the baselines were
recorded on a different machine, and only the floor is portable.

Run locally::

    PYTHONPATH=src python benchmarks/bench_kernel_backend.py --smoke --output /tmp/fresh/BENCH_kernel.json
    PYTHONPATH=src python benchmarks/bench_bound_backend.py  --smoke --output /tmp/fresh/BENCH_bound.json
    PYTHONPATH=src python benchmarks/bench_parallel_engine.py --smoke --output /tmp/fresh/BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_fusion_pipeline.py --smoke --output /tmp/fresh/BENCH_fusion.json
    PYTHONPATH=src python benchmarks/bench_scale_sweep.py --smoke --output /tmp/fresh/BENCH_scale.json
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --output /tmp/fresh/BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke --output /tmp/fresh/BENCH_stream.json
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke --output /tmp/fresh/BENCH_cluster.json
    PYTHONPATH=src python benchmarks/bench_ds.py --smoke --output /tmp/fresh/BENCH_ds.json
    python benchmarks/check_regression.py --fresh /tmp/fresh

CI runs exactly this sequence (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

BASELINE_DIR = Path(__file__).parent / "output"

#: ROADMAP floor for the backend speedups.
DEFAULT_FLOOR = 3.0

#: Wall-clock ratios are noisy; see the module docstring.  Back-to-back
#: runs of the *identical* bound bench on an otherwise idle 1-core dev
#: container measured bound+ anywhere from 2.6x to 2.9x (a 12% swing),
#: and shared CI runners are noisier still — so the hard cut sits 15%
#: under the floor, with everything between reported as a warning.
DEFAULT_TOLERANCE = 0.15

#: Per-benchmark floor overrides.  The scale sweep gates the sparse
#: pair layout against the pure-Python reference at parity, not the 3x
#: backend floor: its point is completing Zipf worlds past the dense
#: ``n_sources**2`` ceiling at all, and speed parity with the loop it
#: replaced keeps that honest.  The serving bench gates the LRU read
#: API at 10x over recomputing verdicts from the in-memory
#: ``DetectionResult`` — below that the store isn't paying for itself.
#: The streaming bench gates *absolute* figures (sustained claims/sec,
#: verdict-update p99) against floors the artifact itself records; the
#: ratios handed to the gate are measured/floor, so parity (1.0) is the
#: line.  The cluster bench gates 4 remote workers at >= 2x over 1
#: remote worker — but only on machines with at least the core count
#: its artifact records (``floors.min_cpus``): a 1-core container
#: cannot scale by adding workers, and pretending otherwise would gate
#: on physics, not regressions.  Its bit-identical/broadcast-once
#: correctness check applies everywhere.  The DS bench gates the
#: columnar Dempster-Shafer kernel at parity with the reference loop
#: (its real gate is the 1e-9 lockstep self-check; the measured speedup
#: is ~15x, but parity is what must never regress).
BENCH_FLOORS = {
    "scale": 1.0,
    "serve": 10.0,
    "stream": 1.0,
    "cluster": 2.0,
    "ds": 1.0,
}


def _load(directory: Path, name: str) -> dict | None:
    path = directory / name
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL  {path}: unreadable ({exc})")
        return None


def _speedups(report: dict, benchmark: str) -> dict[str, float]:
    """Extract the gated speedup figures from one artifact."""
    if benchmark == "kernel":
        return {"index_scan": report["timings_seconds"]["index_scan"]["speedup"]}
    if benchmark == "bound":
        timings = report["large_world"]["timings_seconds"]
        return {
            "bound": timings["bound"]["speedup_default"],
            "bound+": timings["bound+"]["speedup_default"],
        }
    if benchmark == "fusion":
        return {
            "run_fusion": report["timings_seconds"]["run_fusion"][
                "speedup_reused"
            ]
        }
    if benchmark == "scale":
        return {
            f"{label}/{name}": timing["speedup"]
            for label, row in report["worlds"].items()
            for name, timing in row["timings_seconds"].items()
            if "speedup" in timing
        }
    if benchmark == "serve":
        return {"read_api": report["timings_seconds"]["read_api"]["speedup"]}
    if benchmark == "ds":
        return {
            "ds_combination": report["timings_seconds"]["ds_combination"][
                "speedup"
            ]
        }
    if benchmark == "stream":
        # Absolute gates expressed as measured/floor ratios so the
        # shared parity-floor machinery applies: >= 1.0 means the run
        # sustained the required ingest rate / stayed under the latency
        # ceiling recorded in the artifact's own ``floors`` section.
        floors = report["floors"]
        timings = report["timings"]
        return {
            "ingest": timings["claims_per_sec"] / floors["claims_per_sec"],
            "latency_p99": floors["p99_ms"] / timings["latency_p99_ms"],
        }
    if benchmark == "cluster":
        # Scaling is only measurable with real cores under the workers;
        # below the artifact's own min_cpus the speedup figures document
        # the platform rather than gate it (see check()).
        cpus = report["platform"].get("cpu_count") or 0
        if cpus < report.get("floors", {}).get("min_cpus", 4):
            return {}
        return {
            f"{label}/4w_vs_1w": row["speedup_4w_vs_1w"]
            for label, row in report["worlds"].items()
            if "speedup_4w_vs_1w" in row
        }
    return {}


def check(
    fresh_dir: Path,
    baseline_dir: Path = BASELINE_DIR,
    floor: float = DEFAULT_FLOOR,
    tolerance: float = DEFAULT_TOLERANCE,
) -> int:
    """Gate the artifacts in ``fresh_dir``; returns a process exit code."""
    failures = 0
    specs = [
        ("BENCH_kernel.json", "kernel", True),
        ("BENCH_bound.json", "bound", True),
        ("BENCH_parallel.json", "parallel", False),
        ("BENCH_fusion.json", "fusion", True),
        ("BENCH_scale.json", "scale", False),
        ("BENCH_serve.json", "serve", True),
        ("BENCH_stream.json", "stream", True),
        ("BENCH_cluster.json", "cluster", False),
        ("BENCH_ds.json", "ds", True),
    ]
    for filename, benchmark, required in specs:
        bench_floor = BENCH_FLOORS.get(benchmark, floor)
        cut = bench_floor * (1.0 - tolerance)
        fresh = _load(fresh_dir, filename)
        if fresh is None:
            if required:
                print(f"FAIL  {filename}: missing from {fresh_dir}")
                failures += 1
            else:
                print(f"skip  {filename}: not generated")
            continue
        baseline = _load(baseline_dir, filename)

        # Correctness-type self-checks must always hold.
        if benchmark == "parallel":
            if fresh["check"]["passed"]:
                print(f"ok    {filename}: {fresh['check']['target']}")
            else:
                print(f"FAIL  {filename}: {fresh['check']['target']}")
                failures += 1
            continue
        if benchmark == "bound":
            identical = all(
                fresh[w]["bit_identical"]
                for w in ("large_world", "small_world")
                if w in fresh
            )
            if not identical:
                print(f"FAIL  {filename}: backends not bit-identical")
                failures += 1
        if benchmark == "fusion":
            if not (
                fresh["check"]["truths_match"] and fresh["check"]["verdicts_match"]
            ):
                print(
                    f"FAIL  {filename}: backends disagree on fused "
                    f"truths/verdicts"
                )
                failures += 1
        if benchmark == "serve":
            if not fresh["check"]["passed"]:
                print(
                    f"FAIL  {filename}: served replies diverge, concurrent "
                    f"reads failed verification, or delta snapshots rewrote "
                    f"more than the re-opened pairs"
                )
                failures += 1
        if benchmark == "stream":
            if not fresh["check"]["passed"]:
                print(
                    f"FAIL  {filename}: streamed reads failed snapshot "
                    f"verification or the live run diverged from its "
                    f"synchronous replay"
                )
                failures += 1
        if benchmark == "cluster":
            if not fresh["check"]["passed"]:
                print(
                    f"FAIL  {filename}: a cluster size diverged from the "
                    f"serial verdicts or the world was re-broadcast "
                    f"mid-session"
                )
                failures += 1
            cpus = fresh["platform"].get("cpu_count") or 0
            min_cpus = fresh.get("floors", {}).get("min_cpus", 4)
            if cpus < min_cpus:
                print(
                    f"note  {filename}: {cpus} CPU(s) < {min_cpus}; the "
                    f"scaling floor is not measurable here (correctness "
                    f"still gated)"
                )
        if benchmark == "ds":
            if not (fresh["check"]["truths_match"] and fresh["check"]["lockstep"]):
                print(
                    f"FAIL  {filename}: DS implementations disagree "
                    f"(prob drift {fresh['check']['prob_drift']:.2e}, "
                    f"conflict drift {fresh['check']['conflict_drift']:.2e})"
                )
                failures += 1
        if benchmark == "scale":
            mismatched = [
                label
                for label, row in fresh["worlds"].items()
                if row.get("bit_identical") is False
                or row.get("fusion_max_abs_diff", 0.0) > 1e-9
            ]
            if mismatched:
                print(
                    f"FAIL  {filename}: sparse layout diverges from the "
                    f"reference in {', '.join(mismatched)}"
                )
                failures += 1

        for name, speedup in _speedups(fresh, benchmark).items():
            base = None
            if baseline is not None:
                base = _speedups(baseline, benchmark).get(name)
            delta = (
                f" (baseline {base:.1f}x, {speedup - base:+.1f}x)"
                if base is not None
                else ""
            )
            if speedup < cut:
                print(
                    f"FAIL  {filename}: {name} speedup {speedup:.2f}x is below "
                    f"{cut:.2f}x ({bench_floor:.1f}x floor - {tolerance:.0%} "
                    f"noise tolerance){delta}"
                )
                failures += 1
            elif speedup < bench_floor:
                print(
                    f"warn  {filename}: {name} speedup {speedup:.2f}x is inside "
                    f"the noise band below the {bench_floor:.1f}x floor{delta}"
                )
            else:
                print(f"ok    {filename}: {name} speedup {speedup:.2f}x{delta}")
    print("regression gate:", "FAILED" if failures else "passed")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        type=Path,
        default=BASELINE_DIR,
        help="directory holding freshly generated BENCH_*.json artifacts "
        "(default: the committed baselines themselves — a self-check)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BASELINE_DIR,
        help="directory holding the committed baseline artifacts",
    )
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)
    return check(args.fresh, args.baseline, args.floor, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
