"""Table V — overview of the evaluation datasets.

Paper values (full size):

    dataset      #Srcs   #Items    #Dist-values  #Index-entries
    Book-CS        894    2,528         14,930         7,398
    Stock-1day      55   16,000        104,611        40,834
    Book-full    3,182  147,431        162,961        48,683
    Stock-2wk       55  160,000        915,118       405,537

We regenerate the same four columns for the synthetic profiles at bench
scales; the *relationships* the paper draws from this table (books: many
sources / few shared values each; stocks: few sources / huge dense value
sets) must hold.
"""

from __future__ import annotations

import pytest

from repro.synth import make_profile

from conftest import BENCH_SCALES, emit_report

_rows: list[list[object]] = []


@pytest.mark.parametrize("profile", list(BENCH_SCALES))
def test_generate_and_stat(benchmark, profile):
    scale = BENCH_SCALES[profile]

    def build():
        world = make_profile(profile, scale=scale)
        return world, world.dataset.stats()

    world, stats = benchmark.pedantic(build, rounds=1, iterations=1)
    _rows.append(
        [
            profile,
            scale,
            stats.n_sources,
            stats.n_items,
            stats.n_distinct_values,
            stats.n_index_entries,
            stats.avg_conflicts_per_item,
        ]
    )
    assert stats.n_index_entries <= stats.n_distinct_values


def test_report_table05(benchmark, worlds):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = _render()
    emit_report("bench_table05_datasets", table)
    # Regime checks the paper's narrative relies on.
    stats = {row[0]: row for row in _rows}
    assert stats["book_cs"][2] > stats["stock_1day"][2]  # more sources
    assert stats["stock_2wk"][3] > stats["stock_1day"][3]  # more items


def _render() -> str:
    from repro.eval import render_table

    return render_table(
        "Table V (reproduced, scaled): dataset overview",
        ["dataset", "scale", "#srcs", "#items", "#dist-values", "#index-entries", "conflicts/item"],
        _rows,
    )
