"""Table VI — copy-detection and truth-discovery quality vs PAIRWISE.

Paper shape (Book-CS / Stock-1day):

* INDEX: P = R = F = 1, zero fusion difference (it *is* PAIRWISE).
* HYBRID / INCREMENTAL: F >= .96, fusion results nearly unchanged.
* SAMPLE1 collapses on Book-CS (F = .26) because most sources lose all
  their items; on dense stock data naive sampling is fine (F = .96).
* SCALESAMPLE recovers most of the loss on books (F = .88).
"""

from __future__ import annotations

import pytest

from repro.eval import quality_vs_reference, render_table, run_method

from conftest import SAMPLE_FRACTIONS, emit_report

PROFILES = ("book_cs", "stock_1day")
METHODS = ("pairwise", "sample1", "sample2", "index", "hybrid", "incremental", "scalesample")

_runs: dict[tuple[str, str], object] = {}


def _sample2_fraction(world, profile) -> float:
    """The paper's SAMPLE2 protocol: match SCALESAMPLE's realised *cell*
    budget (65% on Book-CS, 24% on Book-full in the original)."""
    import random

    from repro.sampling import sampled_cell_fraction, scale_sample

    items = scale_sample(
        world.dataset, SAMPLE_FRACTIONS[profile], random.Random(11)
    )
    return sampled_cell_fraction(world.dataset, items)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("method", METHODS)
def test_run_method(benchmark, worlds, bench_params, profile, method):
    world = worlds[profile]
    fraction = SAMPLE_FRACTIONS[profile]
    if method == "sample2":
        fraction = _sample2_fraction(world, profile)

    def execute():
        return run_method(
            method,
            world.dataset,
            bench_params,
            sample_fraction=fraction,
            seed=11,
        )

    _runs[(profile, method)] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_table06(benchmark, worlds, bench_params):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for profile in PROFILES:
        world = worlds[profile]
        reference = _runs[(profile, "pairwise")]
        rows = []
        for method in METHODS:
            run = _runs[(profile, method)]
            q = quality_vs_reference(run, reference, world.dataset, world.gold)
            rows.append(
                [
                    method,
                    q.copy_quality.precision,
                    q.copy_quality.recall,
                    q.copy_quality.f_measure,
                    q.fusion_accuracy,
                    q.fusion_diff,
                    q.accuracy_var,
                ]
            )
        table = render_table(
            f"Table VI (reproduced): quality on {profile}",
            ["method", "prec", "rec", "F", "fusion acc", "fusion diff", "acc var"],
            rows,
        )
        emit_report("bench_table06_quality", table)

    # Shape assertions from the paper.
    for profile in PROFILES:
        world = worlds[profile]
        ref = _runs[(profile, "pairwise")]
        index_q = quality_vs_reference(
            _runs[(profile, "index")], ref, world.dataset, world.gold
        )
        assert index_q.copy_quality.f_measure == 1.0
        assert index_q.fusion_diff == 0.0
    # SCALESAMPLE >= SAMPLE1 on the low-coverage book data.
    world = worlds["book_cs"]
    ref = _runs[("book_cs", "pairwise")]
    scale_f = quality_vs_reference(
        _runs[("book_cs", "scalesample")], ref, world.dataset, world.gold
    ).copy_quality.f_measure
    naive_f = quality_vs_reference(
        _runs[("book_cs", "sample1")], ref, world.dataset, world.gold
    ).copy_quality.f_measure
    assert scale_f >= naive_f
