"""Figure 3 — index entry orderings: RANDOM vs BYPROVIDER vs BYCONTRIBUTION.

Paper shape: BYCONTRIBUTION (decreasing score, the paper's design) is the
fastest ordering under both BOUND and HYBRID; BYPROVIDER sits between it
and RANDOM.  The effect is strongest under BOUND (12-24% over RANDOM) and
muted under HYBRID, whose timers already skip most bound work.

We report computation counts rather than raw seconds as the primary
series — at bench scale the per-run timing noise of sub-second scans
exceeds the ordering effect, and computations are what the ordering
actually changes (earlier terminations = fewer bound evaluations).
"""

from __future__ import annotations

import random

import pytest

from repro.core import EntryOrdering, SingleRoundDetector
from repro.eval import render_table
from repro.fusion import FusionConfig, run_fusion

from conftest import emit_report

PROFILES = ("book_cs", "stock_1day", "book_full", "stock_2wk")
ORDERINGS = (
    ("random", EntryOrdering.RANDOM),
    ("byprovider", EntryOrdering.BY_PROVIDER),
    ("bycontribution", EntryOrdering.BY_CONTRIBUTION),
)
_results: dict[tuple[str, str, str], tuple[float, int]] = {}


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("method", ("bound", "hybrid"))
@pytest.mark.parametrize("ordering_name", [name for name, _ in ORDERINGS])
def test_ordering(benchmark, worlds, bench_params, profile, method, ordering_name):
    world = worlds[profile]
    ordering = dict(ORDERINGS)[ordering_name]

    def execute():
        detector = SingleRoundDetector(
            bench_params,
            method=method,
            ordering=ordering,
            rng=random.Random(17),
        )
        fusion = run_fusion(
            world.dataset,
            bench_params,
            detector=detector,
            config=FusionConfig(max_rounds=6),
        )
        return fusion.detection_seconds, fusion.total_computations

    _results[(profile, method, ordering_name)] = benchmark.pedantic(
        execute, rounds=1, iterations=1
    )


def test_report_fig03(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for method in ("bound", "hybrid"):
        rows = []
        for profile in PROFILES:
            random_comp = _results[(profile, method, "random")][1]
            row = [profile]
            for name, _ in ORDERINGS[1:]:
                comp = _results[(profile, method, name)][1]
                row.append(comp / random_comp if random_comp else float("nan"))
            rows.append(row)
        emit_report(
            "bench_fig03_ordering",
            render_table(
                f"Figure 3 (reproduced): computation ratio vs RANDOM ({method})",
                ["dataset", "byprovider / random", "bycontribution / random"],
                rows,
            ),
        )

    # Shape: BYCONTRIBUTION never does more computations than RANDOM under
    # BOUND (it sees strong evidence first, so it terminates earlier).
    for profile in PROFILES:
        by_contribution = _results[(profile, "bound", "bycontribution")][1]
        by_random = _results[(profile, "bound", "random")][1]
        assert by_contribution <= by_random * 1.05, profile
