"""End-to-end benchmark: the iterative fusion loop, python vs numpy.

The detection scans were vectorized in PRs 1-3; this bench tracks the
*whole* ``run_fusion`` loop — per-round copy detection (INDEX over the
vectorized kernel), the ACCU/ACCUCOPY truth-finding updates
(:mod:`repro.fusion.accu_kernel`), and the round-persistent
:class:`~repro.fusion.FusionWorkspace` — on the same dense 212-source
world the kernel bench uses.  Three configurations:

* ``python`` — the all-reference loop (detection and fusion math).
* ``numpy_cold`` — ``backend="numpy"`` with the workspace created (and
  torn down) inside each ``run_fusion`` call: per-call setup included.
* ``numpy_reused`` — ``backend="numpy"`` with one pre-warmed workspace
  passed across calls, the way a long-lived service would run
  back-to-back fusions: columnar layouts, shared-item counts and pools
  all amortised.

The round count is pinned (``tolerance=0``) so every run does identical
work.  The ``check`` block self-verifies correctness (identical fused
truths across backends) and the acceptance bar is a >= 3x end-to-end
speedup for ``numpy_reused``, gated by ``check_regression.py``.  Run::

    PYTHONPATH=src python benchmarks/bench_fusion_pipeline.py [--smoke]
        [--output PATH]

``--smoke`` shrinks the world for CI; ``--output`` redirects the
artifact so the committed baseline stays untouched (baselines are
historical records — regenerate only solo on an idle machine).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import CopyParams, SingleRoundDetector
from repro.fusion import FusionConfig, run_fusion
from repro.synth.generator import GeneratorConfig, generate

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_fusion.json"

#: The kernel bench's dense world: >= 200 sources (212 with the planted
#: copier groups), uniform stock-style coverage.
WORLD_CONFIG = GeneratorConfig(
    n_items=400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)

#: CI smoke world: same dense shape at roughly a quarter the incidences.
SMOKE_WORLD_CONFIG = GeneratorConfig(
    n_items=250,
    n_independent_sources=130,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=3,
    copiers_per_group=2,
)

#: Pinned round count — every timed run does identical work.
ROUNDS = 3
FUSION_CONFIG = FusionConfig(max_rounds=ROUNDS, min_rounds=ROUNDS, tolerance=0.0)


def _fuse(dataset, backend: str, workspace=None):
    params = CopyParams(backend=backend)
    detector = SingleRoundDetector(params, method="index")
    return run_fusion(
        dataset,
        params,
        detector=detector,
        config=FUSION_CONFIG,
        workspace=workspace,
    )


def _best_of(fn, repeats: int = 2) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(smoke: bool = False) -> dict:
    from repro.fusion import FusionWorkspace

    world = generate(SMOKE_WORLD_CONFIG if smoke else WORLD_CONFIG)
    dataset = world.dataset
    stats = dataset.stats()

    t_python, result_python = _best_of(lambda: _fuse(dataset, "python"))
    t_cold, result_cold = _best_of(lambda: _fuse(dataset, "numpy"))
    with FusionWorkspace(dataset, CopyParams(backend="numpy")) as workspace:
        _fuse(dataset, "numpy", workspace=workspace)  # warm the caches
        t_reused, result_reused = _best_of(
            lambda: _fuse(dataset, "numpy", workspace=workspace)
        )

    truths_match = (
        result_python.chosen == result_cold.chosen == result_reused.chosen
    )
    verdicts_match = all(
        rp.detection.copying_pairs()
        == rc.detection.copying_pairs()
        == rr.detection.copying_pairs()
        for rp, rc, rr in zip(
            result_python.rounds, result_cold.rounds, result_reused.rounds
        )
    )

    timings = {
        "run_fusion": {
            "python": t_python,
            "numpy_cold": t_cold,
            "numpy_reused": t_reused,
            "speedup_cold": t_python / t_cold,
            "speedup_reused": t_python / t_reused,
        }
    }
    return {
        "benchmark": "fusion_pipeline",
        "smoke": smoke,
        "world": {
            "n_sources": stats.n_sources,
            "n_items": stats.n_items,
            "n_values": stats.n_distinct_values,
            "index_entries": stats.n_index_entries,
        },
        "rounds": ROUNDS,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "timings_seconds": timings,
        "check": {
            "target": "identical fused truths/verdicts + "
            "run_fusion speedup_reused >= 3x",
            "truths_match": truths_match,
            "verdicts_match": verdicts_match,
            "passed": bool(
                truths_match
                and verdicts_match
                and timings["run_fusion"]["speedup_reused"] >= 3.0
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small world for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    pair = report["timings_seconds"]["run_fusion"]
    print(
        f"run_fusion ({report['rounds']} rounds) "
        f"python={pair['python']:.3f}s cold={pair['numpy_cold']:.3f}s "
        f"reused={pair['numpy_reused']:.3f}s "
        f"speedup={pair['speedup_cold']:.1f}x/{pair['speedup_reused']:.1f}x"
    )
    print(f"check: {report['check']['target']} -> passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
