"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench module reproduces one table or figure of the paper (see
DESIGN.md's experiment index).  Conventions:

* Worlds are generated at module scope from the Table V profiles, at the
  scales in ``BENCH_SCALES`` (full paper sizes are hours in pure Python;
  EXPERIMENTS.md records the scales used and why the shapes still hold).
* Heavy end-to-end runs are timed with ``benchmark.pedantic(...,
  rounds=1)`` — the paper's tables are one-shot wall-clock numbers, not
  micro-benchmarks.
* Each module's final ``test_report_*`` renders the paper-style table,
  prints it, and appends it to ``benchmarks/output/<module>.txt`` so the
  reproduction artefacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import CopyParams
from repro.synth import SyntheticWorld, make_profile

#: Per-profile scale factors used throughout the benches.
BENCH_SCALES = {
    "book_cs": 0.25,
    "stock_1day": 0.05,
    "book_full": 0.05,
    "stock_2wk": 0.02,
}

#: The paper samples 1% of Stock-2wk and 10% elsewhere (Section VI-A).
SAMPLE_FRACTIONS = {
    "book_cs": 0.10,
    "stock_1day": 0.10,
    "book_full": 0.10,
    "stock_2wk": 0.10,
}

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_params() -> CopyParams:
    return CopyParams()


@pytest.fixture(scope="session")
def worlds() -> dict[str, SyntheticWorld]:
    """All four profile worlds at bench scales (generated once)."""
    return {
        name: make_profile(name, scale=scale)
        for name, scale in BENCH_SCALES.items()
    }


def emit_report(module_name: str, table: str) -> None:
    """Print a rendered table and persist it under benchmarks/output/."""
    print()
    print(table)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{module_name}.txt"
    with open(path, "a", encoding="utf-8") as f:
        f.write(table)
        f.write("\n\n")
