"""Micro-benchmark: python vs numpy backend on the entry-scan hot path.

Unlike the table/figure benches (which reproduce the paper), this module
tracks the *implementation's* performance trajectory: it times the
exhaustive scans (INDEX with a prebuilt index, PAIRWISE, and the parallel
engine's serial reduce) under both backends on a dense synthetic world of
at least 200 sources, and writes a ``BENCH_kernel.json`` artifact so every
subsequent PR can compare against this one.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_kernel_backend.py [--smoke]
        [--output PATH]

The world is deliberately *dense* (uniform stock-style coverage): the
kernel's advantage scales with the number of (pair, shared value)
incidences, which is exactly the regime the paper's Hadoop section targets.
The acceptance bar recorded by ``check`` is a >= 3x speedup on the INDEX
entry scan.  ``--smoke`` shrinks the world for CI (the bar still holds —
the kernel's advantage survives well below this size); ``--output``
redirects the artifact so the committed baseline stays untouched.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core import CopyParams, InvertedIndex, detect_index, detect_pairwise
from repro.fusion import vote_probabilities
from repro.parallel import detect_index_parallel
from repro.synth.generator import GeneratorConfig, generate

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_kernel.json"

#: >= 200 sources (212 with the planted copier groups), dense coverage.
WORLD_CONFIG = GeneratorConfig(
    n_items=400,
    n_independent_sources=200,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=4,
    copiers_per_group=3,
)

#: CI smoke world: same dense shape at roughly a quarter the incidences
#: (large enough that the vectorization win keeps a clear margin over
#: the 3x floor on noisy CI runners).
SMOKE_WORLD_CONFIG = GeneratorConfig(
    n_items=250,
    n_independent_sources=130,
    coverage_model="uniform",
    coverage_range=(0.3, 0.6),
    n_copier_groups=3,
    copiers_per_group=2,
)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(smoke: bool = False) -> dict:
    world = generate(SMOKE_WORLD_CONFIG if smoke else WORLD_CONFIG)
    dataset = world.dataset
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    params_python = CopyParams(backend="python")
    params_numpy = CopyParams(backend="numpy")
    index = InvertedIndex.build(dataset, probabilities, accuracies, params_python)
    incidences = sum(
        len(e.providers) * (len(e.providers) - 1) // 2 for e in index.entries
    )

    timings: dict[str, dict[str, float]] = {}

    timings["index_scan"] = {
        "python": _best_of(
            lambda: detect_index(
                dataset, probabilities, accuracies, params_python, index=index
            )
        ),
        "numpy": _best_of(
            lambda: detect_index(
                dataset, probabilities, accuracies, params_numpy, index=index
            )
        ),
    }
    timings["pairwise"] = {
        "python": _best_of(
            lambda: detect_pairwise(dataset, probabilities, accuracies, params_python),
            repeats=2,
        ),
        "numpy": _best_of(
            lambda: detect_pairwise(dataset, probabilities, accuracies, params_numpy),
            repeats=2,
        ),
    }
    timings["parallel_serial"] = {
        "python": _best_of(
            lambda: detect_index_parallel(
                dataset,
                probabilities,
                accuracies,
                params_python,
                n_partitions=4,
                index=index,
            ),
            repeats=2,
        ),
        "numpy": _best_of(
            lambda: detect_index_parallel(
                dataset,
                probabilities,
                accuracies,
                params_numpy,
                n_partitions=4,
                index=index,
            ),
            repeats=2,
        ),
    }

    for name, pair in timings.items():
        pair["speedup"] = pair["python"] / pair["numpy"]

    return {
        "benchmark": "kernel_backend",
        "smoke": smoke,
        "world": {
            "n_sources": dataset.n_sources,
            "n_items": dataset.n_items,
            "n_values": dataset.n_values,
            "index_entries": index.n_entries,
            "incidences": incidences,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "timings_seconds": timings,
        "check": {
            "target": "index_scan speedup >= 3x",
            "passed": timings["index_scan"]["speedup"] >= 3.0,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small world for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for name, pair in report["timings_seconds"].items():
        print(
            f"{name:16s} python={pair['python']:.4f}s "
            f"numpy={pair['numpy']:.4f}s speedup={pair['speedup']:.1f}x"
        )
    print(f"check: {report['check']['target']} -> passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
