"""Scale benchmark: the sparse pair layout on 10k+ source Zipf worlds.

The dense flat-array kernels allocate ``n_sources ** 2`` slots; before
PR 6 every kernel silently fell back to the pure-Python reference loops
the moment that quadratic allocation crossed its limit — so the regime
the paper actually targets (many sources, Zipf coverage, observed pairs
a vanishing fraction of the key space) ran at reference speed.  This
benchmark drives :func:`repro.conformance.generators.large_sparse_world`
to 10k sources (plus a 50k numpy-only data point in full mode), runs
BOUND+ detection and one ACCUCOPY fusion round end-to-end on
``backend="numpy"`` with ``pair_layout="sparse"`` — at these scales the
``auto`` heuristic picks the same layout — and times them against the
pure-Python reference loops on the identical world.

The acceptance bar recorded by ``check``: bit-identical BOUND+
decisions, fusion probabilities within 1e-9, and the sparse numpy path
at least as fast as the reference loop it replaced (a ~1x floor, gated
by ``check_regression.py``; in practice the margin is large).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_scale_sweep.py [--smoke]
        [--output PATH]

``--smoke`` runs a downsized 2k-source world (same construction, same
checks) for CI budgets; ``--output`` redirects the artifact so the
committed baseline stays untouched.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

import numpy as np

from repro.conformance.generators import RandomChooser, large_sparse_world
from repro.core import CopyParams, InvertedIndex
from repro.core.bound import detect_bound_plus
from repro.fusion import value_probabilities, vote_probabilities
from repro.fusion.accu_kernel import FusionColumns, value_probabilities_columnar

OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_scale.json"

#: Fusion-round parity tolerance (the kernels' property-tested bound).
NUMERIC_TOL = 1e-9

#: (label, n_sources, n_items, zipf_exponent, reference_timed) — the
#: 50k point is numpy-only: its purpose is proving the sparse path
#: *completes* well past the dense ceiling, not re-measuring the same
#: speedup.  The exponent is kept below 1 so head sources overlap on
#: enough items for the scans to be non-trivial (pairs sharing a single
#: item conclude immediately and time nothing but dispatch overhead).
FULL_WORLDS = (
    ("zipf_10k", 10_000, 400, 0.8, True),
    ("zipf_50k", 50_000, 2_000, 1.0, False),
)
SMOKE_WORLDS = (("zipf_2k", 2_000, 300, 0.8, True),)


def _best_of(fn, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fn_a, fn_b, rounds: int = 3) -> tuple[float, float]:
    """Best-of timings for two contenders, alternating A/B each round.

    Sequential best-of blocks are fragile on shared machines: a load
    spike during one contender's block skews the ratio arbitrarily.
    Alternating rounds expose both sides to the same interference.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _bench_world(
    label: str,
    n_sources: int,
    n_items: int,
    zipf_exponent: float,
    reference_timed: bool,
    seed: int,
) -> dict:
    world = large_sparse_world(
        RandomChooser(random.Random(seed)),
        n_sources=n_sources,
        n_items=n_items,
        zipf_exponent=zipf_exponent,
        coverage=1.0,
    )
    dataset, probabilities, accuracies = world.materialize()
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    params_sparse = CopyParams(backend="numpy", pair_layout="sparse")
    params_python = CopyParams(backend="python")

    index = InvertedIndex.build(
        dataset, probabilities, accuracies, params_python
    )
    row: dict = {
        "world": {
            "n_sources": dataset.n_sources,
            "n_items": dataset.n_items,
            "claims": sum(len(c) for c in dataset.claims),
            "observed_pairs": len(index.shared_items),
            "dense_key_space": dataset.n_sources * dataset.n_sources,
        },
        "timings_seconds": {},
    }

    # BOUND+ end-to-end on the sparse layout.  The untimed calls double
    # as warmup so first-call costs never land on either contender.
    sparse_result = detect_bound_plus(
        dataset, probabilities, accuracies, params_sparse, index=index
    )
    run_sparse = lambda: detect_bound_plus(  # noqa: E731
        dataset, probabilities, accuracies, params_sparse, index=index
    )
    run_python = lambda: detect_bound_plus(  # noqa: E731
        dataset, probabilities, accuracies, params_python, index=index
    )
    bound_row: dict = {"pairs": len(sparse_result.decisions)}
    if reference_timed:
        python_result = run_python()
        row["bit_identical"] = (
            sparse_result.decisions == python_result.decisions
        )
        sparse_t, python_t = _interleaved_best(run_sparse, run_python)
        bound_row["numpy_sparse"] = sparse_t
        bound_row["python"] = python_t
        bound_row["speedup"] = python_t / sparse_t
    else:
        bound_row["numpy_sparse"] = _best_of(run_sparse)
    row["timings_seconds"]["bound+"] = bound_row

    # One ACCUCOPY fusion round discounting with the sparse detection.
    cols = FusionColumns.from_dataset(dataset)
    acc = np.asarray(accuracies, dtype=np.float64)
    sparse_probs = value_probabilities_columnar(
        cols, acc, params_sparse, sparse_result
    )
    run_sparse_fusion = lambda: value_probabilities_columnar(  # noqa: E731
        cols, acc, params_sparse, sparse_result
    )
    run_python_fusion = lambda: value_probabilities(  # noqa: E731
        dataset, accuracies, params_python, detection=sparse_result
    )
    fusion_row: dict = {}
    if reference_timed:
        python_probs = run_python_fusion()
        diff = float(
            np.max(
                np.abs(sparse_probs - np.asarray(python_probs, dtype=np.float64))
            )
            if len(python_probs)
            else 0.0
        )
        row["fusion_max_abs_diff"] = diff
        sparse_t, python_t = _interleaved_best(
            run_sparse_fusion, run_python_fusion
        )
        fusion_row["numpy_sparse"] = sparse_t
        fusion_row["python"] = python_t
        fusion_row["speedup"] = python_t / sparse_t
    else:
        fusion_row["numpy_sparse"] = _best_of(run_sparse_fusion)
    row["timings_seconds"]["accucopy_round"] = fusion_row
    return row


def run(smoke: bool = False) -> dict:
    worlds = {}
    for label, n_sources, n_items, zipf_exponent, reference_timed in (
        SMOKE_WORLDS if smoke else FULL_WORLDS
    ):
        worlds[label] = _bench_world(
            label, n_sources, n_items, zipf_exponent, reference_timed,
            seed=1205,
        )
    passed = True
    for row in worlds.values():
        if "bit_identical" in row:
            passed = passed and row["bit_identical"]
        if "fusion_max_abs_diff" in row:
            passed = passed and row["fusion_max_abs_diff"] <= NUMERIC_TOL
        for timing in row["timings_seconds"].values():
            if "speedup" in timing:
                passed = passed and timing["speedup"] >= 1.0
    return {
        "benchmark": "scale_sweep",
        "smoke": smoke,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "worlds": worlds,
        "check": {
            "target": (
                "sparse-layout BOUND+ and ACCUCOPY run end-to-end past the "
                "dense ceiling, bit-identical/1e-9 vs the reference loops, "
                "at >= 1x their speed"
            ),
            "passed": passed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke run: one downsized 2k-source world, same checks",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    for label, row in report["worlds"].items():
        world = row["world"]
        print(
            f"{label}: {world['n_sources']:,} sources, "
            f"{world['observed_pairs']:,} observed pairs of a "
            f"{world['dense_key_space']:,} key space"
        )
        for name, timing in row["timings_seconds"].items():
            line = f"  {name:15s} numpy_sparse={timing['numpy_sparse']:.3f}s"
            if "python" in timing:
                line += (
                    f" python={timing['python']:.3f}s"
                    f" speedup={timing['speedup']:.1f}x"
                )
            print(line)
        if "bit_identical" in row:
            print(f"  bit_identical={row['bit_identical']}")
    print(
        f"check: {report['check']['target']} -> "
        f"passed={report['check']['passed']}"
    )
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
