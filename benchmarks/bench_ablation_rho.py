"""Ablation — INCREMENTAL's change threshold rho.

The paper sets rho = 1.0 for value-probability changes and 0.2 for
accuracy changes "according to observations of the largest gaps".  This
ablation sweeps rho_value: at 0 every change is applied exactly (most
computation, exact agreement with per-round HYBRID); large rho treats
everything as small (least computation, most approximation).
"""

from __future__ import annotations

import pytest

from repro.core import IncrementalDetector, SingleRoundDetector
from repro.eval import pair_quality, render_table
from repro.fusion import FusionConfig, run_fusion

from conftest import emit_report

RHOS = (0.0, 0.25, 1.0, 4.0)
PROFILES = ("book_cs", "stock_1day")
_rows: dict[str, list[list[object]]] = {}


@pytest.mark.parametrize("profile", PROFILES)
def test_rho_sweep(benchmark, worlds, bench_params, profile):
    world = worlds[profile]
    config = FusionConfig(max_rounds=8)

    def execute():
        reference = run_fusion(
            world.dataset,
            bench_params,
            detector=SingleRoundDetector(bench_params, method="hybrid"),
            config=config,
        )
        ref_pairs = reference.final_detection().copying_pairs()
        rows = []
        for rho in RHOS:
            # rho = 0 zeroes both thresholds: every value *and* accuracy
            # change is applied exactly (the accuracy side otherwise keeps
            # its own approximation and feeds back through the loop).
            detector = IncrementalDetector(
                bench_params,
                rho_value=rho,
                rho_accuracy=0.0 if rho == 0.0 else 0.2,
            )
            fusion = run_fusion(
                world.dataset, bench_params, detector=detector, config=config
            )
            quality = pair_quality(
                ref_pairs, fusion.final_detection().copying_pairs()
            )
            incremental_comp = sum(
                r.detection.cost.computations
                for r in fusion.rounds
                if r.detection is not None and r.detection.method == "incremental"
            )
            rows.append([rho, incremental_comp, quality.f_measure])
        return rows

    _rows[profile] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_ablation_rho(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for profile, rows in _rows.items():
        emit_report(
            "bench_ablation_rho",
            render_table(
                f"Ablation: INCREMENTAL rho_value sweep on {profile}",
                ["rho_value", "incremental computations", "F vs hybrid loop"],
                rows,
            ),
        )
    for rows in _rows.values():
        # rho = (0, 0) recomputes every change exactly, so its agreement
        # with the per-round HYBRID loop is bounded only by HYBRID's own
        # Eq. (10) estimates — near-perfect in practice.
        assert rows[0][2] >= 0.95
        # Exact recomputation is the most expensive setting.
        comps = [row[1] for row in rows]
        assert comps[0] == max(comps)
