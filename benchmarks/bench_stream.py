"""Streaming benchmark: sustained ingest vs verdict-update latency.

The streaming service's contract is "claims keep arriving, verdicts
stay fresh" — so the numbers that matter are the two ends of that pipe,
measured together on a live :class:`~repro.streaming.StreamingService`:

* **sustained ingest** — a synthetic claim feed (a Zipf ``book_cs``
  world re-played as deltas) is partitioned into micro-batches and
  pushed through the service back to back; recorded as claims/sec over
  the whole run, epoch by epoch.
* **verdict-update latency** — per micro-batch, the wall-clock from
  ``submit()`` to the epoch's snapshot being published and fanned out
  (p50/p99 across epochs).  This *includes* the micro-batcher's
  debounce window — the number is the service's actual staleness, not
  just the fusion cost.
* **read verification** — after every epoch event, a
  :class:`~repro.serving.VerdictReader` is refreshed and must land on
  exactly the snapshot the event announced; served verdicts and truths
  are spot-checked against the engine's live epoch state.  A read that
  disagrees with its own snapshot fails ``check.passed``.
* **lockstep parity** — the whole live run is replayed synchronously
  with :func:`~repro.streaming.replay_epochs` over the same coalesced
  partitions; final accuracies, fused truths and pair decisions must be
  exactly equal.  This is the streamed-vs-batch INCREMENTAL guarantee,
  asserted on every benchmark run.

Unlike the speedup benches, the gate here is absolute: the artifact
carries its own ``floors`` section (minimum claims/sec, maximum p99
milliseconds) and ``check_regression.py`` fails when a fresh run slips
below them.  The floors are deliberately ~5x under the measured dev-box
numbers — they catch architectural regressions (an epoch suddenly
re-fusing from scratch, a publish turning into a full rewrite), not
machine-to-machine noise.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_stream.py [--smoke]
        [--output PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.data import ClaimDelta, coalesce_deltas
from repro.serving import VerdictReader
from repro.streaming import StreamEngine, StreamingService, replay_epochs
from repro.synth import make_profile

DEFAULT_OUTPUT = Path(__file__).parent / "output" / "BENCH_stream.json"

#: Micro-batches the feed is partitioned into (== epochs when nothing
#: is coalesced away).
FULL_BATCHES = 16
SMOKE_BATCHES = 6

#: Absolute gates, embedded in the artifact for ``check_regression.py``.
#: Measured dev-box numbers are ~5x above these (see module docstring);
#: the smoke world is tiny enough that its throughput is dominated by
#: the per-epoch debounce window, so it gets its own lower floor.
FLOOR_CLAIMS_PER_SEC = 150.0
SMOKE_FLOOR_CLAIMS_PER_SEC = 50.0
FLOOR_P99_MS = 1_000.0

#: Spot-checked verdicts/truths per epoch.
SPOT_CHECKS = 20


def dataset_as_deltas(dataset) -> list[ClaimDelta]:
    """Re-play an immutable dataset as its equivalent claim-delta feed."""
    return [
        ClaimDelta(
            dataset.source_names[source_id],
            dataset.item_names[item_id],
            dataset.value_label[value_id],
        )
        for source_id, item_id, value_id in dataset.iter_claims()
    ]


def partition(deltas: list[ClaimDelta], n: int) -> list[list[ClaimDelta]]:
    size = (len(deltas) + n - 1) // n
    return [deltas[i : i + size] for i in range(0, len(deltas), size)]


def _spot_check(reader: VerdictReader, state, errors: list[str]) -> int:
    """Verify served verdicts/truths against the live epoch state."""
    verified = 0
    decisions = state.detection.decisions if state.detection else {}
    for (s1, s2), decision in list(decisions.items())[:SPOT_CHECKS]:
        verdict = reader.get_verdict(s1, s2)
        if verdict is None:
            errors.append(f"observed pair ({s1},{s2}) served as None")
            return verified
        if verdict.copying != decision.copying:
            errors.append(
                f"pair ({s1},{s2}) served copying={verdict.copying} at "
                f"snapshot {verdict.snapshot_id}, engine says "
                f"{decision.copying}"
            )
            return verified
        if verdict.snapshot_id != state.snapshot_id:
            errors.append(
                f"pair ({s1},{s2}) served from snapshot "
                f"{verdict.snapshot_id}, expected {state.snapshot_id}"
            )
            return verified
        verified += 1
    for item_id in list(state.chosen)[:SPOT_CHECKS]:
        truth = reader.get_truth(item_id)
        if truth is None or truth.value != state.chosen[item_id]:
            errors.append(f"truth of item {item_id} diverges from the engine")
            return verified
        verified += 1
    return verified


async def _drive(
    store_dir: Path, batches: list[list[ClaimDelta]]
) -> tuple[dict, list, list[str]]:
    """Push the feed through a live service; measure and verify."""
    engine = StreamEngine(store=store_dir)
    service = StreamingService(
        engine, max_batch=1 << 20, max_delay=0.05, debounce=0.005
    )
    errors: list[str] = []
    latencies_s: list[float] = []
    engine_s: list[float] = []
    rounds: list[int] = []
    verified = 0
    states = []
    reader: VerdictReader | None = None

    async with service:
        queue = service.subscribe()
        start = time.perf_counter()
        for batch in batches:
            submitted = time.perf_counter()
            service.submit(batch)
            await service.flush()
            event = queue.get_nowait()
            latencies_s.append(time.perf_counter() - submitted)
            engine_s.append(event["elapsed_seconds"])
            rounds.append(event["rounds"])
            state = service.state
            states.append(state)
            if reader is None:
                reader = VerdictReader(store_dir)
            else:
                reader.refresh()
            if reader.snapshot_id != event["snapshot_id"]:
                errors.append(
                    f"reader refreshed to snapshot {reader.snapshot_id}, "
                    f"epoch event announced {event['snapshot_id']}"
                )
            verified += _spot_check(reader, state, errors)
        total_s = time.perf_counter() - start

    n_claims = sum(len(b) for b in batches)
    latencies_ms = sorted(x * 1000.0 for x in latencies_s)

    def pct(p: float) -> float:
        return latencies_ms[min(len(latencies_ms) - 1, int(p * len(latencies_ms)))]

    row = {
        "n_claims": n_claims,
        "n_batches": len(batches),
        "epochs_run": service.epochs_run,
        "total_seconds": total_s,
        "claims_per_sec": n_claims / total_s,
        "latency_p50_ms": pct(0.50),
        "latency_p99_ms": pct(0.99),
        "engine_p50_ms": sorted(engine_s)[len(engine_s) // 2] * 1000.0,
        "rounds_per_epoch": rounds,
        "reads_verified": verified,
    }
    return row, states, errors


def _parity(
    batches: list[list[ClaimDelta]], live_states: list
) -> tuple[dict, bool]:
    """Replay the same partitions synchronously; must match exactly."""
    replayed = replay_epochs([coalesce_deltas(b) for b in batches])
    mismatches: list[str] = []
    if len(replayed) != len(live_states):
        mismatches.append(
            f"epoch count: live {len(live_states)} vs replay {len(replayed)}"
        )
    for state, result in zip(live_states, replayed):
        if state.accuracies != tuple(result.fusion.accuracies):
            mismatches.append(f"epoch {state.epoch}: accuracies diverge")
        if state.chosen != result.fusion.chosen:
            mismatches.append(f"epoch {state.epoch}: fused truths diverge")
        live_decisions = state.detection.decisions if state.detection else {}
        if live_decisions != result.fusion.final_detection().decisions:
            mismatches.append(f"epoch {state.epoch}: pair decisions diverge")
    row = {
        "epochs_compared": min(len(replayed), len(live_states)),
        "mismatches": mismatches[:5],
    }
    return row, not mismatches


def run(smoke: bool = False) -> dict:
    world = make_profile("book_cs", scale=0.03 if smoke else 0.08, seed=11)
    feed = dataset_as_deltas(world.dataset)
    batches = partition(feed, SMOKE_BATCHES if smoke else FULL_BATCHES)

    with tempfile.TemporaryDirectory(prefix="bench_stream_") as tmp:
        stream, states, errors = asyncio.run(_drive(Path(tmp) / "store", batches))
    parity, parity_ok = _parity(batches, states)

    floors = {
        "claims_per_sec": (
            SMOKE_FLOOR_CLAIMS_PER_SEC if smoke else FLOOR_CLAIMS_PER_SEC
        ),
        "p99_ms": FLOOR_P99_MS,
        "note": (
            "absolute gates: a fresh run must sustain at least "
            "claims_per_sec and keep verdict-update p99 under p99_ms; "
            "check_regression.py reads these from the artifact itself"
        ),
    }
    reads_ok = not errors and stream["reads_verified"] > 0
    passed = reads_ok and parity_ok
    return {
        "benchmark": "stream",
        "smoke": smoke,
        "world": {
            "profile": "book_cs",
            "n_sources": world.dataset.n_sources,
            "n_items": world.dataset.n_items,
            "n_claims": stream["n_claims"],
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "timings": stream,
        "parity": parity,
        "floors": floors,
        "check": {
            "target": (
                "every post-epoch read verifies against the snapshot it "
                "claims to come from, and the live run is lockstep-equal "
                "to a synchronous replay of the same epoch partitions"
            ),
            "reads_verified": reads_ok,
            "read_errors": errors[:3],
            "lockstep_parity": parity_ok,
            "passed": passed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small world for CI smoke runs"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="artifact path"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    world = report["world"]
    timings = report["timings"]
    print(
        f"world: {world['n_sources']} sources, {world['n_items']} items, "
        f"{world['n_claims']} claims in {timings['n_batches']} micro-batches"
    )
    print(
        f"ingest: {timings['claims_per_sec']:,.0f} claims/s sustained over "
        f"{timings['epochs_run']} epochs ({timings['total_seconds']:.2f}s)"
    )
    print(
        f"verdict updates: p50={timings['latency_p50_ms']:.1f}ms "
        f"p99={timings['latency_p99_ms']:.1f}ms (engine "
        f"p50={timings['engine_p50_ms']:.1f}ms); "
        f"{timings['reads_verified']} reads verified"
    )
    print(
        f"parity: {report['parity']['epochs_compared']} epochs compared, "
        f"lockstep={report['check']['lockstep_parity']}"
    )
    print(f"check: passed={report['check']['passed']}")
    print(f"artifact -> {args.output}")
    return 0 if report["check"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
