"""Table VIII — INCREMENTAL vs HYBRID per round, and pass termination.

Paper shape: from round 3 on, INCREMENTAL's per-round detection time is a
small fraction of HYBRID's (3-14%), and the overwhelming majority of
pairs re-confirm their verdict in the first pass (86-99%).
"""

from __future__ import annotations

import pytest

from repro.core import IncrementalDetector, SingleRoundDetector
from repro.eval import render_table
from repro.fusion import FusionConfig, run_fusion

from conftest import BENCH_SCALES, emit_report

PROFILES = tuple(BENCH_SCALES)
_results: dict[str, tuple[object, object, object]] = {}


@pytest.mark.parametrize("profile", PROFILES)
def test_run_both_loops(benchmark, worlds, bench_params, profile):
    world = worlds[profile]
    config = FusionConfig(max_rounds=8)

    def execute():
        hybrid = run_fusion(
            world.dataset,
            bench_params,
            detector=SingleRoundDetector(bench_params, method="hybrid"),
            config=config,
        )
        detector = IncrementalDetector(bench_params)
        incremental = run_fusion(
            world.dataset, bench_params, detector=detector, config=config
        )
        return hybrid, incremental, detector

    _results[profile] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_table08(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratio_rows = []
    pass_rows = []
    for profile in PROFILES:
        hybrid, incremental, detector = _results[profile]
        hybrid_rounds = {r.round_no: r.detection_seconds for r in hybrid.rounds}
        row: list[object] = [profile]
        for round_no in range(3, 7):
            inc_round = next(
                (r for r in incremental.rounds if r.round_no == round_no), None
            )
            hy_seconds = hybrid_rounds.get(round_no)
            if inc_round is None or not hy_seconds:
                row.append("-")
            else:
                row.append(f"{inc_round.detection_seconds / hy_seconds:.1%}")
        ratio_rows.append(row)

        history = detector.state.history if detector.state else []
        total = sum(s.pairs_total for s in history) or 1
        pass_rows.append(
            [
                profile,
                f"{sum(s.done_pass1 for s in history) / total:.1%}",
                f"{sum(s.done_pass2 for s in history) / total:.1%}",
                f"{sum(s.done_pass3 for s in history) / total:.1%}",
                sum(s.flips for s in history),
            ]
        )

    emit_report(
        "bench_table08_incremental",
        render_table(
            "Table VIII (reproduced): INCREMENTAL/HYBRID per-round time ratio",
            ["dataset", "round 3", "round 4", "round 5", "round 6"],
            ratio_rows,
        ),
    )
    emit_report(
        "bench_table08_incremental",
        render_table(
            "Table VIII (reproduced): pairs terminated per pass",
            ["dataset", "pass 1", "pass 2", "pass 3", "decision flips"],
            pass_rows,
        ),
    )

    # Shape assertions: pass 1 dominates; incremental rounds are cheaper.
    for profile in PROFILES:
        _, incremental, detector = _results[profile]
        history = detector.state.history if detector.state else []
        if not history:
            continue
        total = sum(s.pairs_total for s in history)
        pass1 = sum(s.done_pass1 for s in history)
        assert pass1 / total >= 0.7, profile
