"""Table X — execution-time ratio w.r.t. FAGININPUT.

Paper shape: building NRA's sorted input lists costs more than HYBRID's
whole detection (ratios .67-.99 for a single round) and far more than
INCREMENTAL across rounds (ratios .19-.30), because the list construction
computes every pair's contribution for every shared value with no skipping
or early termination — and cannot be updated incrementally.
"""

from __future__ import annotations

import pytest

from repro.eval import render_table, run_method

from conftest import BENCH_SCALES, emit_report

PROFILES = tuple(BENCH_SCALES)
_runs: dict[tuple[str, str], object] = {}


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("method", ("fagininput", "hybrid", "incremental"))
def test_run(benchmark, worlds, bench_params, profile, method):
    world = worlds[profile]

    def execute():
        return run_method(method, world.dataset, bench_params)

    _runs[(profile, method)] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_table10(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for profile in PROFILES:
        fagin = _runs[(profile, "fagininput")]
        fagin_per_round = fagin.detection_seconds / max(fagin.rounds, 1)
        hybrid = _runs[(profile, "hybrid")]
        hybrid_per_round = hybrid.detection_seconds / max(hybrid.rounds, 1)
        incremental = _runs[(profile, "incremental")]
        rows.append(
            [
                profile,
                hybrid_per_round / fagin_per_round,
                incremental.detection_seconds / fagin.detection_seconds,
            ]
        )
    emit_report(
        "bench_table10_fagininput",
        render_table(
            "Table X (reproduced): time ratio w.r.t. FAGININPUT",
            ["dataset", "hybrid / fagin (per round)", "incremental / fagin (total)"],
            rows,
        ),
    )
    # Shape: INCREMENTAL always beats list construction (the paper's
    # stronger claim — lists cannot be refreshed incrementally); HYBRID
    # beats it wherever bounds can terminate early (everywhere but our
    # ultra-sparse book_full regime, where bound upkeep is pure overhead —
    # see EXPERIMENTS.md).
    for profile, hybrid_ratio, incremental_ratio in rows:
        assert incremental_ratio < 1.0, profile
        if profile != "book_full":
            assert hybrid_ratio < 1.0, profile
