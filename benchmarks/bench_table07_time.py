"""Table VII — execution time and the improvement cascade.

Paper shape: INDEX cuts PAIRWISE's detection time by 83-99.6% (most on
the sparse book data, where ~96% of source pairs share nothing); HYBRID
shaves a further ~2-37%; INCREMENTAL a further ~56-83%; SCALESAMPLE runs
in a fraction of even that.  The cascade — each row improving on the one
above — is the property we assert; absolute seconds are scale- and
runtime-dependent.
"""

from __future__ import annotations

import pytest

from repro.eval import improvement, render_table, run_method

from conftest import BENCH_SCALES, SAMPLE_FRACTIONS, emit_report

PROFILES = tuple(BENCH_SCALES)
METHODS = ("pairwise", "sample1", "sample2", "index", "hybrid", "incremental", "scalesample")

_runs: dict[tuple[str, str], object] = {}


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("method", METHODS)
def test_time_method(benchmark, worlds, bench_params, profile, method):
    world = worlds[profile]

    def execute():
        return run_method(
            method,
            world.dataset,
            bench_params,
            sample_fraction=SAMPLE_FRACTIONS[profile],
            seed=11,
        )

    _runs[(profile, method)] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_table07(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for profile in PROFILES:
        pairwise_seconds = _runs[(profile, "pairwise")].detection_seconds
        rows = []
        previous = pairwise_seconds
        for method in METHODS:
            run = _runs[(profile, method)]
            seconds = run.detection_seconds
            if method == "pairwise":
                rows.append([method, seconds, "-", run.computations])
            else:
                baseline = (
                    pairwise_seconds
                    if method in ("sample1", "sample2", "index")
                    else previous
                )
                rows.append(
                    [
                        method,
                        seconds,
                        f"{improvement(baseline, seconds):+.0%}",
                        run.computations,
                    ]
                )
            if method in ("pairwise", "index", "hybrid", "incremental"):
                previous = seconds
        total = improvement(
            pairwise_seconds, _runs[(profile, "scalesample")].detection_seconds
        )
        rows.append(["TOTAL improvement", "", f"{total:+.0%}", ""])
        table = render_table(
            f"Table VII (reproduced): detection time on {profile} "
            f"(scale={BENCH_SCALES[profile]})",
            ["method", "detect s", "improvement", "computations"],
            rows,
        )
        emit_report("bench_table07_time", table)

    # Cascade assertions (the paper's qualitative claims).  Table VII's
    # metric is wall-clock time: INDEX's *computation count* can match
    # PAIRWISE's when nearly every shared item carries a shared value
    # (our book_full regime) — its win is skipping the O(|S|^2) pair loop.
    for profile in PROFILES:
        pairwise = _runs[(profile, "pairwise")]
        index = _runs[(profile, "index")]
        incremental = _runs[(profile, "incremental")]
        scalesample = _runs[(profile, "scalesample")]
        assert index.detection_seconds < pairwise.detection_seconds * 1.1, profile
        assert incremental.computations < index.computations, profile
        assert scalesample.detection_seconds < pairwise.detection_seconds, profile
    # Books: the index wins outright (most pairs share nothing at all).
    book = _runs[("book_cs", "index")]
    book_pw = _runs[("book_cs", "pairwise")]
    assert book.detection_seconds < book_pw.detection_seconds
