"""Ablation — HYBRID's shared-item threshold (the paper fixes 16).

Footnote 6 of the paper: "when two sources share fewer than 16 data
items, INDEX conducts fewer computations than BOUND+ on average".  This
ablation sweeps the cutoff to show the U-shape the fixed value sits in:
0 (pure BOUND+) pays bound overhead on tiny pairs; infinity (pure INDEX)
never terminates early on big ones.
"""

from __future__ import annotations

import pytest

from repro.core import detect_hybrid
from repro.eval import render_table
from conftest import emit_report

THRESHOLDS = (0, 4, 16, 64, 100_000)
PROFILES = ("book_cs", "stock_1day")
_rows: dict[str, list[list[object]]] = {}


@pytest.mark.parametrize("profile", PROFILES)
def test_threshold_sweep(benchmark, worlds, bench_params, profile):
    world = worlds[profile]
    dataset = world.dataset
    # Calibrate probabilities/accuracies with a short copy-aware fusion
    # warm-up: HYBRID always runs inside the loop, never on the diffuse
    # voting bootstrap (where Eq. 10's h-estimate is known to misfire).
    from repro.core import SingleRoundDetector
    from repro.fusion import FusionConfig, run_fusion

    warmup = run_fusion(
        dataset,
        bench_params,
        detector=SingleRoundDetector(bench_params, method="index"),
        config=FusionConfig(max_rounds=3, min_rounds=3),
    )
    probabilities = warmup.probabilities
    accuracies = warmup.accuracies

    def execute():
        rows = []
        for threshold in THRESHOLDS:
            result = detect_hybrid(
                dataset,
                probabilities,
                accuracies,
                bench_params,
                hybrid_threshold=threshold,
            ).result
            rows.append(
                [
                    threshold,
                    result.cost.computations,
                    result.cost.values_examined,
                    len(result.copying_pairs()),
                ]
            )
        return rows

    _rows[profile] = benchmark.pedantic(execute, rounds=1, iterations=1)


def test_report_ablation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for profile, rows in _rows.items():
        emit_report(
            "bench_ablation_hybrid_threshold",
            render_table(
                f"Ablation: HYBRID threshold sweep on {profile} (single round)",
                ["threshold", "computations", "values examined", "copying pairs"],
                rows,
            ),
        )
    # The verdicts must not depend on the threshold (only the cost does).
    for rows in _rows.values():
        pair_counts = {row[3] for row in rows}
        assert len(pair_counts) <= 2  # bound estimates may flip a rare pair
