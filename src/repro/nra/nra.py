"""Fagin's NRA (No Random Access) top-k algorithm (PODS 2001).

NRA finds the k objects with the highest aggregate score over ``m`` sorted
lists, reading the lists strictly top-down (sorted access only).  For each
object seen so far it maintains

* a lower bound — the sum of the scores actually seen, plus the *minimum
  possible* contribution of the lists it has not appeared in yet; and
* an upper bound — seen scores plus each unseen list's current frontier.

It stops when the k-th best lower bound is at least every other
candidate's upper bound.

The paper explored NRA for copy detection (Section II-B): one list per
index entry holding pair contributions, plus one list of different-value
penalties; ``C->`` of a pair is the sum over all lists.  The experiments
show that merely *building* those lists (:mod:`repro.nra.fagin_input`)
costs more than the paper's own detectors — this module exists to
reproduce that comparison and to serve as a stand-alone top-k utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence


@dataclass(frozen=True)
class TopKResult:
    """Result of an NRA run.

    Attributes:
        items: the top-k ``(object, lower_bound)`` pairs, best first.
        sorted_accesses: total number of list positions read.
        resolved: False when the lists were exhausted before the stopping
            condition held with ``k`` distinct objects (fewer objects than
            ``k`` exist); the returned items are still correct.
    """

    items: list[tuple[Hashable, float]]
    sorted_accesses: int
    resolved: bool


def nra_topk(
    lists: Sequence[Sequence[tuple[Hashable, float]]],
    k: int,
    missing_score: float = 0.0,
) -> TopKResult:
    """Run NRA over descending-sorted lists with sum aggregation.

    Args:
        lists: each a sequence of ``(object, score)`` sorted by score
            descending.  An object appears at most once per list.
        k: how many top objects to return.
        missing_score: score contributed by a list an object never appears
            in (0 for optional lists; the classical formulation assumes
            every object is in every list).

    Lists may contain negative scores (the copy-detection difference list
    does); an object's lower bound then assumes it sits at the *bottom* of
    every list it has not been seen in — per-list floors are taken from
    each list's final element.

    Returns:
        A :class:`TopKResult`; ``items`` are ordered by lower bound.

    Raises:
        ValueError: if ``k < 1`` or a list is not sorted descending.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    m = len(lists)
    for lst in lists:
        for a, b in zip(lst, lst[1:]):
            if a[1] < b[1]:
                raise ValueError("lists must be sorted by score descending")
    # The worst an unseen object can get from a list: its bottom score if
    # that is below the missing score, else the missing score itself.
    floors = [
        min(lst[-1][1], missing_score) if lst else missing_score for lst in lists
    ]

    # partial[obj] = (sum of seen scores, set of list ids seen)
    partial: dict[Hashable, tuple[float, set[int]]] = {}
    frontier = [lst[0][1] if lst else missing_score for lst in lists]
    exhausted = [not lst for lst in lists]
    depth = 0
    accesses = 0

    while True:
        progressed = False
        for list_id, lst in enumerate(lists):
            if depth >= len(lst):
                # A fully-read list contributes exactly missing_score to
                # any object it never named — tighten bounds accordingly.
                exhausted[list_id] = True
                frontier[list_id] = missing_score
                floors[list_id] = missing_score
                continue
            progressed = True
            accesses += 1
            obj, score = lst[depth]
            total, seen = partial.get(obj, (0.0, set()))
            seen = set(seen)
            seen.add(list_id)
            partial[obj] = (total + score, seen)
            frontier[list_id] = score
        depth += 1

        if partial:
            # Best total an object never seen so far could still reach: it
            # may appear at (or below) every live list's frontier.
            unseen_upper = sum(
                missing_score
                if exhausted[list_id]
                else max(frontier[list_id], missing_score)
                for list_id in range(m)
            )
            result = _try_stop(
                partial, frontier, floors, unseen_upper, m, k, missing_score
            )
            if result is not None:
                return TopKResult(
                    items=result, sorted_accesses=accesses, resolved=True
                )
        if not progressed:
            ranked = sorted(
                (
                    (obj, _lower_bound(total, seen, floors, missing_score))
                    for obj, (total, seen) in partial.items()
                ),
                key=lambda pair: -pair[1],
            )
            return TopKResult(
                items=ranked[:k], sorted_accesses=accesses, resolved=False
            )


def _lower_bound(
    total: float, seen: set[int], floors: list[float], missing_score: float
) -> float:
    return total + sum(
        min(floors[list_id], 0.0)
        for list_id in range(len(floors))
        if list_id not in seen
    )


def _try_stop(
    partial: dict[Hashable, tuple[float, set[int]]],
    frontier: list[float],
    floors: list[float],
    unseen_upper: float,
    m: int,
    k: int,
    missing_score: float,
) -> list[tuple[Hashable, float]] | None:
    """Check NRA's stopping condition; return the top-k if it holds."""
    bounds = []
    for obj, (total, seen) in partial.items():
        lower = _lower_bound(total, seen, floors, missing_score)
        upper = total + sum(
            max(frontier[list_id], missing_score)
            for list_id in range(m)
            if list_id not in seen
        )
        bounds.append((obj, lower, upper))
    if len(bounds) < k:
        return None
    bounds.sort(key=lambda row: -row[1])
    kth_lower = bounds[k - 1][1]
    if unseen_upper > kth_lower:
        return None
    if any(upper > kth_lower for _, _, upper in bounds[k:]):
        return None
    return [(obj, lower) for obj, lower, _ in bounds[:k]]
