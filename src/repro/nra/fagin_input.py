"""FAGININPUT — building NRA's input lists for copy detection.

Section II-B of the paper sketches a top-k formulation: keep, for every
index entry, a list of the contribution scores of the source pairs sharing
the value (sorted descending), plus one list of accumulated
different-value penalties per pair; ``C->`` of a pair is then the sum of
its scores across all lists and NRA can find the most-copying pairs.

The catch — and the reason the paper rejects the approach — is that
*producing* these lists already requires computing the contribution of
every shared value for every pair, with none of INDEX/BOUND's skipping or
early termination, and it is unclear how to refresh the lists
incrementally across fusion rounds.  Table X therefore compares the
paper's detectors against just this construction step.

:func:`build_fagin_input` performs the construction (and, since every
score is in hand anyway, derives the same exact verdicts as INDEX at
negligible extra cost, so the baseline can participate in full fusion
runs).  :func:`top_k_copying` feeds the lists to :func:`repro.nra.nra_topk`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.contribution import posterior, same_value_scores_both
from ..core.index import InvertedIndex
from ..core.params import CopyParams
from ..core.result import CostCounter, DetectionResult, PairDecision
from ..data import Dataset
from .nra import TopKResult, nra_topk

#: An ordered pair ``(copier, original)`` of source ids.
DirectedPair = tuple[int, int]


@dataclass
class FaginInput:
    """NRA input lists for the directed score ``C->``.

    Attributes:
        value_lists: one list per index entry, each holding
            ``((copier, original), contribution)`` sorted descending; both
            directions of every undirected pair appear.
        diff_list: one entry per sharing pair and direction with the
            accumulated penalty ``ln(1-s) * (l - n)``, sorted descending.
        result: exact verdicts derived during construction (identical to
            INDEX output).
    """

    value_lists: list[list[tuple[DirectedPair, float]]]
    diff_list: list[tuple[DirectedPair, float]]
    result: DetectionResult


def build_fagin_input(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex | None = None,
) -> FaginInput:
    """Materialise the NRA lists (the FAGININPUT baseline's whole cost)."""
    if index is None:
        index = InvertedIndex.build(dataset, probabilities, accuracies, params)
    cost = CostCounter()
    value_lists: list[list[tuple[DirectedPair, float]]] = []
    totals: dict[tuple[int, int], list[float]] = {}

    for entry in index.entries:
        p_true = entry.probability
        providers = entry.providers
        rows: list[tuple[DirectedPair, float]] = []
        k = len(providers)
        for i in range(k):
            s1 = providers[i]
            for j in range(i + 1, k):
                s2 = providers[j]
                cost.value_incidence()
                cost.score_update(2)
                fwd, bwd = same_value_scores_both(
                    p_true, accuracies[s1], accuracies[s2], params
                )
                rows.append(((s1, s2), fwd))
                rows.append(((s2, s1), bwd))
                bucket = totals.setdefault((s1, s2), [0.0, 0.0, 0])
                bucket[0] += fwd
                bucket[1] += bwd
                bucket[2] += 1
        rows.sort(key=lambda row: -row[1])
        value_lists.append(rows)

    ln_diff = params.ln_one_minus_s
    diff_list: list[tuple[DirectedPair, float]] = []
    decisions: dict[tuple[int, int], PairDecision] = {}
    for pair, (c_fwd, c_bwd, n_shared) in totals.items():
        cost.pairs_considered += 1
        cost.score_update(2)
        n_diff = index.shared_items[pair] - n_shared
        penalty = n_diff * ln_diff
        if n_diff:
            diff_list.append(((pair[0], pair[1]), penalty))
            diff_list.append(((pair[1], pair[0]), penalty))
        total_fwd = c_fwd + penalty
        total_bwd = c_bwd + penalty
        post = posterior(total_fwd, total_bwd, params)
        decisions[pair] = PairDecision(
            c_fwd=total_fwd,
            c_bwd=total_bwd,
            posterior=post,
            copying=post.copying,
            early=False,
        )
    diff_list.sort(key=lambda row: -row[1])

    result = DetectionResult(
        method="fagininput",
        n_sources=dataset.n_sources,
        decisions=decisions,
        cost=cost,
    )
    return FaginInput(value_lists=value_lists, diff_list=diff_list, result=result)


def top_k_copying(fagin_input: FaginInput, k: int) -> TopKResult:
    """Find the k directed pairs with the highest ``C->`` via NRA.

    Pairs missing from a value list contribute 0 there (they do not share
    that value); pairs missing from the difference list have no differing
    items.  Both are handled by NRA's ``missing_score=0``; the difference
    list's negative penalties lower the bounds of the pairs they name.
    """
    lists: list[Sequence[tuple[DirectedPair, float]]] = list(
        fagin_input.value_lists
    )
    if fagin_input.diff_list:
        lists.append(fagin_input.diff_list)
    lists = [lst for lst in lists if lst]
    if not lists:
        return TopKResult(items=[], sorted_accesses=0, resolved=False)
    return nra_topk(lists, k, missing_score=0.0)
