"""Fagin's NRA top-k algorithm and the FAGININPUT copy-detection baseline."""

from .fagin_input import FaginInput, build_fagin_input, top_k_copying
from .nra import TopKResult, nra_topk

__all__ = [
    "FaginInput",
    "TopKResult",
    "build_fagin_input",
    "nra_topk",
    "top_k_copying",
]
