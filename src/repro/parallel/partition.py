"""Partitioning the inverted index for parallel detection (Section VIII).

The paper's conclusion sketches two parallelisation opportunities: score
computation *within* an entry (across the pairs it contains) and
computation *across* entries.  This module implements the second — the
one that scales with data — by splitting the index's entries into
partitions that workers can scan independently.

Correctness hinges on one subtlety: INDEX opens a pair only when it
co-occurs in a *non-tail* entry, and a worker holding only tail entries
cannot know whether some other worker opened the pair.  Partial results
therefore record, per pair, whether any of its contributions came from a
main (non-tail) entry; the merge keeps exactly the pairs with main-entry
evidence, reproducing INDEX's skip rule (see
:mod:`repro.parallel.engine`).

Two strategies are provided:

* ``"blocks"`` — contiguous runs of the processing order.  Entries with
  similar scores land together; with BY_CONTRIBUTION ordering the first
  partition holds the strongest evidence (the paper notes BOUND+'s
  timers "provide good insights on which entries can be processed in
  parallel" — the strong prefix is where early decisions happen).
* ``"stride"`` — round-robin by position, which balances the skewed
  per-entry pair counts (popular values have quadratically more pairs).
* ``"work"`` — cost-balanced: partitions are filled greedily by each
  entry's *estimated incidence work* (``k*(k-1)/2`` pair contributions
  for a ``k``-provider entry), longest-processing-time first.  Stride
  balances entry *counts*; on skewed worlds a handful of popular values
  can still land together and turn one worker into the straggler that
  bounds wall-clock.  ``"work"`` bounds the spread by the largest single
  entry instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Literal

from ..core.index import InvertedIndex

PartitionStrategy = Literal["blocks", "stride", "work"]


@dataclass(frozen=True)
class EntryPartition:
    """One worker's share of the index.

    Attributes:
        partition_id: 0-based id.
        positions: entry positions (into ``index.entries``) this worker
            scans, in processing order.
    """

    partition_id: int
    positions: tuple[int, ...]


def partition_entries(
    index: InvertedIndex,
    n_partitions: int,
    strategy: PartitionStrategy = "stride",
) -> list[EntryPartition]:
    """Split the index's entry positions into ``n_partitions`` shares.

    Empty partitions are possible when there are fewer entries than
    partitions; they are returned anyway so worker ids stay stable.

    Raises:
        ValueError: for a non-positive partition count or unknown
            strategy.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    n_entries = index.n_entries
    if strategy == "blocks":
        base = n_entries // n_partitions
        remainder = n_entries % n_partitions
        partitions = []
        start = 0
        for pid in range(n_partitions):
            size = base + (1 if pid < remainder else 0)
            partitions.append(
                EntryPartition(pid, tuple(range(start, start + size)))
            )
            start += size
        return partitions
    if strategy == "stride":
        return [
            EntryPartition(pid, tuple(range(pid, n_entries, n_partitions)))
            for pid in range(n_partitions)
        ]
    if strategy == "work":
        return partition_positions_by_work(index, range(n_entries), n_partitions)
    raise ValueError(
        f"unknown strategy {strategy!r}; expected 'blocks', 'stride' or 'work'"
    )


def entry_work(index: InvertedIndex, position: int) -> int:
    """Estimated scan cost of one entry: its pair-incidence count."""
    k = len(index.entries[position].providers)
    return k * (k - 1) // 2


def partition_positions_by_work(
    index: InvertedIndex,
    positions: Iterable[int],
    n_partitions: int,
) -> list[EntryPartition]:
    """Split ``positions`` into cost-balanced shares (LPT greedy).

    Entries are assigned heaviest-first to the currently least-loaded
    partition, which keeps the load spread within the weight of a single
    entry of the optimum for this classic scheduling heuristic.  Ties
    break deterministically (earlier position first, lower partition id
    first) and each share's positions come back sorted in processing
    order, so results are reproducible run to run.

    Raises:
        ValueError: for a non-positive partition count.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    ordered = sorted(positions, key=lambda pos: (-entry_work(index, pos), pos))
    heap = [(0, pid) for pid in range(n_partitions)]
    shares: list[list[int]] = [[] for _ in range(n_partitions)]
    for pos in ordered:
        load, pid = heapq.heappop(heap)
        shares[pid].append(pos)
        heapq.heappush(heap, (load + entry_work(index, pos), pid))
    return [
        EntryPartition(pid, tuple(sorted(share)))
        for pid, share in enumerate(shares)
    ]


def partition_weights(index: InvertedIndex, partition: EntryPartition) -> int:
    """Load estimate for a partition: total pair incidences it contains."""
    return sum(entry_work(index, position) for position in partition.positions)


def assign_buckets_lpt(weights: Iterable[int], n_buckets: int) -> list[list[int]]:
    """Assign weighted tasks to buckets, LPT greedy (the cluster scheduler).

    The same longest-processing-time heuristic
    :func:`partition_positions_by_work` applies to entries, lifted one
    level: here the *tasks* are whole partitions (their weight is
    :func:`partition_weights`) and the buckets are cluster workers, so
    partition count stays independent of worker count — 7 balanced
    partitions schedule onto 1, 2 or 4 workers with identical results.
    Ties break deterministically (heavier first, then lower task index,
    then lower bucket id) and each bucket's tasks come back in task
    order.

    Raises:
        ValueError: for a non-positive bucket count.
    """
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    ordered = sorted(enumerate(weights), key=lambda iw: (-iw[1], iw[0]))
    heap = [(0, bucket_id) for bucket_id in range(n_buckets)]
    buckets: list[list[int]] = [[] for _ in range(n_buckets)]
    for task, weight in ordered:
        load, bucket_id = heapq.heappop(heap)
        buckets[bucket_id].append(task)
        heapq.heappush(heap, (load + weight, bucket_id))
    return [sorted(bucket) for bucket in buckets]
