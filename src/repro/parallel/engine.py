"""Partitioned (map/reduce-style) copy detection — Section VIII realised.

Each worker scans its share of index entries and emits, for every source
pair co-occurring there, a *partial accumulator*:

    (c_fwd, c_bwd, n_shared, saw_main_entry)

The reducer sums partials per pair, drops pairs that never appeared in a
non-tail entry (INDEX's skip rule), applies the different-value penalty
``ln(1-s) * (l - n)``, and evaluates Eq. (2).  Because INDEX's score
accumulation is a plain sum, the merged result is *bit-identical* to the
sequential algorithm regardless of partitioning — verified by property
tests.

Executors:

* ``"serial"`` — run partitions one after another in-process (the
  deterministic reference; also what the tests use).
* ``"threads"`` — a thread pool.  CPython's GIL serialises the pure-
  Python math, so this demonstrates plumbing rather than speedup, but it
  exercises real concurrency in the merge path.
* ``"processes"`` — a process pool via :mod:`concurrent.futures`; gives
  real parallelism for large worlds.  Under ``backend="numpy"`` the
  columnar world is broadcast to the pool **once** through
  :mod:`multiprocessing.shared_memory` (:mod:`repro.parallel.shm`) and
  each task ships only its partition's entry positions; when shared
  memory is unavailable the engine falls back to pickling one columnar
  payload per partition (the Hadoop analogue of shipping a partition to
  a node).

Reduction topologies (``reduce=``):

* ``"flat"`` — merge all P partial results in one pass (cost O(P) deep).
* ``"tree"`` — merge pairwise, halving the table count per level, so the
  reduce is O(log P) deep — the shape the ROADMAP calls for at large
  partition counts, and what a distributed combiner tree would run.
  Both topologies compute the same sums (floats re-associate, so flat
  and tree agree to re-association error; at ``n_partitions=1`` there is
  nothing to merge and both are bit-identical to the sequential scan).

Partitioning (see :mod:`repro.parallel.partition`): ``"stride"`` and
``"blocks"`` split by entry count; ``"work"`` balances estimated
incidence work so a straggler holding the popular values stops bounding
wall-clock.

Early termination *is* parallelised, the way the paper suggests — by the
strong-evidence prefix (:func:`detect_hybrid_parallel`): the first
``"blocks"`` partition of a BY_CONTRIBUTION ordering, where the early
conclusions happen, is scanned sequentially with the HYBRID bound
machinery (epoch-batched under ``backend="numpy"``), and the remaining
blocks — by then pure accumulation for the surviving pairs — are
map/reduced exactly like INDEX (shared-memory broadcast, tree reduce and
work-balanced suffix shares included).  Pairs concluded inside the
prefix keep their early verdicts; everything else resolves exactly.

Backends: with ``backend="numpy"`` (or ``params.backend == "numpy"``)
each partition is scanned with the vectorized kernel over columnar
payloads (:class:`repro.core.kernel.ColumnarEntries`) and the reduce
step merges flat :class:`~repro.core.kernel.PairTable` partials with
``np.add.at``/``np.bincount`` instead of dict churn.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from math import log
from typing import Literal, Sequence

from ..core.bound import DEFAULT_HYBRID_THRESHOLD, PrefixScanState, scan_with_bounds
from ..core.contribution import posterior
from ..core.index import InvertedIndex
from ..core.params import (
    BACKENDS,
    EXECUTORS,
    PARTITION_AXES,
    REDUCE_MODES,
    CopyParams,
)
from ..core.result import CostCounter, DetectionResult, PairDecision
from ..data import Dataset
from .partition import (
    EntryPartition,
    PartitionStrategy,
    partition_entries,
    partition_positions_by_work,
    partition_weights,
)

Executor = Literal["serial", "threads", "processes", "remote"]
ReduceMode = Literal["flat", "tree"]

#: partial accumulator per pair: [c_fwd, c_bwd, n_shared, saw_main]
_Partial = dict[tuple[int, int], list[float]]


def _scan_partition(
    entries_payload: list[tuple[float, list[int], bool]],
    accuracies: Sequence[float],
    params: CopyParams,
) -> _Partial:
    """Map step: accumulate pair contributions over one entry share.

    ``entries_payload`` carries ``(probability, providers, in_tail)``
    triples so the function is picklable for process pools without
    shipping the whole index.
    """
    clamp = params.clamp_accuracy
    acc = [clamp(a) for a in accuracies]
    s = params.s
    one_minus_s = 1.0 - s
    inv_n = 1.0 / params.n
    partial: _Partial = {}
    for p, providers, in_tail in entries_payload:
        q = 1.0 - p
        q_over_n = q * inv_n
        k = len(providers)
        accs = [acc[src] for src in providers]
        nots = [1.0 - a for a in accs]
        singles = [p * a + q * (1.0 - a) for a in accs]
        main_flag = 0.0 if in_tail else 1.0
        for i in range(k):
            s1 = providers[i]
            a1 = accs[i]
            na1 = nots[i]
            ps1 = singles[i]
            for j in range(i + 1, k):
                pair = (s1, providers[j])
                denom = p * a1 * accs[j] + q_over_n * na1 * nots[j]
                fwd = log(one_minus_s + s * singles[j] / denom)
                bwd = log(one_minus_s + s * ps1 / denom)
                cell = partial.get(pair)
                if cell is None:
                    partial[pair] = [fwd, bwd, 1.0, main_flag]
                else:
                    cell[0] += fwd
                    cell[1] += bwd
                    cell[2] += 1.0
                    if main_flag:
                        cell[3] = 1.0
    return partial


def _pool_workers(n_tasks: int) -> int:
    """Worker count for a pool: one per task, capped at the core count."""
    return max(1, min(n_tasks, os.cpu_count() or 1))


def _run_map(worker, payloads, executor: Executor, *extra, pool=None):
    """Run ``worker(payload, *extra)`` per payload under the executor.

    ``worker`` must be a top-level (picklable) function so the same
    dispatch serves thread and process pools.  When ``pool`` is given
    (a :class:`FusionWorkspace`'s persistent executor) the tasks run on
    it and it is *not* shut down here — the workspace owns its
    lifetime; otherwise a throwaway pool is created per call.
    """
    if not payloads:
        # Every partition was empty (a world with no shared values):
        # nothing to scan, and ThreadPoolExecutor rejects max_workers=0.
        return []
    if executor == "serial" or len(payloads) == 1:
        return [worker(pl, *extra) for pl in payloads]
    if pool is not None:
        futures = [pool.submit(worker, pl, *extra) for pl in payloads]
        return [f.result() for f in futures]
    if executor == "threads":
        with ThreadPoolExecutor(max_workers=_pool_workers(len(payloads))) as pool:
            return list(pool.map(lambda pl: worker(pl, *extra), payloads))
    with ProcessPoolExecutor(max_workers=_pool_workers(len(payloads))) as pool:
        futures = [pool.submit(worker, pl, *extra) for pl in payloads]
        return [f.result() for f in futures]


def _payload(index: InvertedIndex, partition: EntryPartition):
    tail_start = index.tail_start
    return [
        (
            index.entries[pos].probability,
            index.entries[pos].providers,
            pos >= tail_start,
        )
        for pos in partition.positions
    ]


# ----------------------------------------------------------------------
# Reduce topologies
# ----------------------------------------------------------------------
def _merge_partial_into(target: _Partial, partial: _Partial) -> _Partial:
    """Accumulate one dict partial into another (the binary merge op)."""
    for pair, cell in partial.items():
        cur = target.get(pair)
        if cur is None:
            target[pair] = list(cell)
        else:
            cur[0] += cell[0]
            cur[1] += cell[1]
            cur[2] += cell[2]
            if cell[3]:
                cur[3] = 1.0
    return target


def _tree_reduce(items: list, merge_pair):
    """Pairwise (tree-wise) reduction: each level halves the item count.

    O(log P) merge depth — the topology a distributed combiner tree
    would run, shared by both partial representations (and by whatever
    a future multi-host reduce plugs in as ``merge_pair``).
    """
    while len(items) > 1:
        items = [
            merge_pair(items[i], items[i + 1]) if i + 1 < len(items) else items[i]
            for i in range(0, len(items), 2)
        ]
    return items[0]


def _merge_partials(partials: Sequence[_Partial], reduce_mode: ReduceMode) -> _Partial:
    """Merge dict partials flat (one pass) or tree-wise (pairwise)."""
    live = [p for p in partials if p]
    if not live:
        return {}
    if reduce_mode == "tree":
        return _tree_reduce(live, _merge_partial_into)
    merged: _Partial = {}
    for partial in live:
        _merge_partial_into(merged, partial)
    return merged


def _merge_tables(tables, reduce_mode: ReduceMode, layout: str = "auto"):
    """Merge :class:`PairTable` partials; None when all are empty.

    ``"flat"`` concatenates every table and reduces once; ``"tree"``
    runs :func:`_tree_reduce` over them.  ``layout`` is the pair-state
    layout of the reduction (``params.pair_layout`` at the call sites).
    """
    from ..core.kernel import PairTable

    live = [t for t in tables if len(t)]
    if not live:
        return None
    if reduce_mode == "tree":
        return _tree_reduce(
            live, lambda a, b: PairTable.merge([a, b], layout=layout)
        )
    return PairTable.merge(live, layout=layout)


# ----------------------------------------------------------------------
# Columnar map step (shared-memory broadcast under "processes")
# ----------------------------------------------------------------------
def _map_columnar_shm(
    index: InvertedIndex,
    parts: list[EntryPartition],
    accuracies: Sequence[float],
    params: CopyParams,
    n_sources: int,
    workspace=None,
):
    """Scan partitions in a process pool over one broadcast world.

    With a :class:`~repro.fusion.FusionWorkspace` attached, the pool and
    the shared block persist across fusion rounds: the block is merely
    rewritten in place each round and workers keep their cached
    attachments.  Returns None when shared memory is unavailable (the
    caller falls back to pickled per-partition payloads).
    """
    try:
        import numpy as np

        from .shm import SharedWorld, scan_shm_partition
    except ImportError:  # pragma: no cover - numpy is a declared dep
        return None
    cols = index.columnar_entries()
    if workspace is not None:
        try:
            world = workspace.broadcast(cols, list(accuracies), n_sources)
        except OSError:
            return None
        pool = workspace.pool("processes", len(parts))
        futures = [
            pool.submit(
                scan_shm_partition,
                world.handle,
                np.asarray(part.positions, dtype=np.int64),
                params,
            )
            for part in parts
        ]
        return [f.result() for f in futures]
    try:
        world = SharedWorld.create(cols, list(accuracies), n_sources)
    except OSError:
        # No usable shared memory on this platform (e.g. read-only or
        # missing /dev/shm): pickle payloads instead.
        return None
    try:
        with ProcessPoolExecutor(max_workers=_pool_workers(len(parts))) as pool:
            futures = [
                pool.submit(
                    scan_shm_partition,
                    world.handle,
                    np.asarray(part.positions, dtype=np.int64),
                    params,
                )
                for part in parts
            ]
            return [f.result() for f in futures]
    finally:
        world.close()


def _map_columnar(
    index: InvertedIndex,
    partitions: Sequence[EntryPartition],
    accuracies: Sequence[float],
    params: CopyParams,
    n_sources: int,
    executor: Executor,
    workspace=None,
):
    """Map step over columnar payloads: one :class:`PairTable` per share.

    Under the ``"processes"`` executor the world is broadcast once via
    shared memory; ``"serial"``/``"threads"`` share the parent's address
    space already, and platforms without shm fall back to pickled
    payloads — all three paths run the identical ``scan_columnar`` over
    identical arrays, so the choice never affects results.  A workspace
    supplies persistent pools (and the persistent broadcast block) that
    survive across fusion rounds.
    """
    from ..core.kernel import scan_columnar

    parts = [part for part in partitions if part.positions]
    if executor == "processes" and len(parts) > 1:
        tables = _map_columnar_shm(
            index, parts, accuracies, params, n_sources, workspace=workspace
        )
        if tables is not None:
            return tables
    cols = index.columnar_entries()
    payloads = [cols.take(part.positions) for part in parts]
    pool = (
        workspace.pool(executor, len(parts))
        if workspace is not None and executor != "serial"
        else None
    )
    return _run_map(
        scan_columnar, payloads, executor, list(accuracies), params, n_sources,
        pool=pool,
    )


def _validate(executor: str, backend: str | None, reduce: str, params: CopyParams):
    """Shared argument validation; returns the effective backend."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    if backend is None:
        backend = params.backend
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if executor == "remote" and backend != "numpy":
        raise ValueError(
            "executor='remote' requires backend='numpy' (cluster workers "
            "scan columnar payloads; the python reference loops stay local)"
        )
    if reduce not in REDUCE_MODES:
        raise ValueError(
            f"unknown reduce mode {reduce!r}; expected one of {REDUCE_MODES}"
        )
    return backend


def _map_reduce_remote(
    index: InvertedIndex,
    parts: list[EntryPartition],
    accuracies: Sequence[float],
    params: CopyParams,
    n_sources: int,
    reduce_mode: ReduceMode,
    workspace=None,
    cluster=None,
):
    """Scan + reduce on cluster workers; returns the merged table.

    The world is broadcast to every worker once per executor session
    (in-place updates thereafter — see
    :meth:`repro.cluster.ClusterExecutor.broadcast`), each partition
    ships only its entry positions, and the reduce runs the engine's
    exact flat/tree associativity on the workers, so results are
    bit-identical to the in-process executors.  ``cluster`` may be a
    live :class:`~repro.cluster.ClusterExecutor`, a worker list, or
    None (the ``REPRO_CLUSTER_WORKERS`` environment variable); with a
    workspace, list specs resolve to its session-persistent executor.
    """
    import numpy as np

    from ..cluster import resolve_cluster

    executor, owned = resolve_cluster(cluster, workspace)
    try:
        executor.broadcast(index.columnar_entries(), list(accuracies), n_sources)
        return executor.map_reduce(
            [np.asarray(part.positions, dtype=np.int64) for part in parts],
            [partition_weights(index, part) for part in parts],
            params,
            reduce_mode=reduce_mode,
        )
    finally:
        if owned:
            executor.close()


def _map_reduce_columnar(
    index: InvertedIndex,
    partitions: Sequence[EntryPartition],
    accuracies: Sequence[float],
    params: CopyParams,
    n_sources: int,
    executor: Executor,
    reduce_mode: ReduceMode,
    workspace=None,
    cluster=None,
):
    """Columnar map step + reduce under any executor; None when empty.

    The single dispatch point the numpy INDEX and HYBRID paths share:
    local executors run :func:`_map_columnar` then :func:`_merge_tables`
    in-process; ``"remote"`` ships both steps to cluster workers
    (:func:`_map_reduce_remote`) — same scan, same merge associativity,
    identical results.
    """
    parts = [part for part in partitions if part.positions]
    if not parts:
        return None
    if executor == "remote":
        return _map_reduce_remote(
            index, parts, accuracies, params, n_sources, reduce_mode,
            workspace=workspace, cluster=cluster,
        )
    tables = _map_columnar(
        index, parts, accuracies, params, n_sources, executor,
        workspace=workspace,
    )
    return _merge_tables(tables, reduce_mode, layout=params.pair_layout)


def detect_index_parallel(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    n_partitions: int = 4,
    strategy: PartitionStrategy = "stride",
    executor: Executor = "serial",
    index: InvertedIndex | None = None,
    backend: str | None = None,
    reduce: ReduceMode = "flat",
    workspace=None,
    cluster=None,
) -> DetectionResult:
    """INDEX over a partitioned scan; verdicts identical to sequential.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.
        n_partitions: number of entry shares (>= 1).
        strategy: ``"stride"`` (entry-count balanced), ``"blocks"``
            (contiguous) or ``"work"`` (incidence-cost balanced).
        executor: ``"serial"``, ``"threads"``, ``"processes"`` or
            ``"remote"`` (cluster workers over TCP; numpy backend only).
        index: prebuilt index to reuse.
        backend: ``"python"`` (per-entry tuple payloads, dict merge) or
            ``"numpy"`` (columnar payloads — broadcast once via shared
            memory under ``"processes"`` — and flat-array merge);
            defaults to ``params.backend``.
        reduce: ``"flat"`` (single-pass merge) or ``"tree"`` (pairwise,
            O(log P) depth; under ``"remote"`` the pairwise merges run
            *on the workers* so the driver only receives the root).
        workspace: a :class:`~repro.fusion.FusionWorkspace` supplying
            persistent pools and the persistent shared-memory broadcast
            when the engine runs once per fusion round.
        cluster: for ``executor="remote"``: a live
            :class:`~repro.cluster.ClusterExecutor`, a worker list
            (``"host:port,host:port"`` or a sequence), or None to read
            ``REPRO_CLUSTER_WORKERS``.

    Raises:
        ValueError: for an unknown executor, backend, strategy or reduce
            mode.
    """
    backend = _validate(executor, backend, reduce, params)
    if index is None:
        index = InvertedIndex.build(dataset, probabilities, accuracies, params)
    partitions = partition_entries(index, n_partitions, strategy)
    if backend == "numpy":
        return _detect_parallel_numpy(
            index, accuracies, params, partitions, executor, dataset.n_sources,
            reduce, workspace, cluster,
        )
    payloads = [_payload(index, part) for part in partitions]
    pool = (
        workspace.pool(executor, len(payloads))
        if workspace is not None and executor != "serial"
        else None
    )
    partials = _run_map(
        _scan_partition, payloads, executor, list(accuracies), params, pool=pool
    )
    return _reduce(partials, index, dataset.n_sources, params, reduce)


def _detect_parallel_numpy(
    index: InvertedIndex,
    accuracies: Sequence[float],
    params: CopyParams,
    partitions: list[EntryPartition],
    executor: Executor,
    n_sources: int,
    reduce_mode: ReduceMode,
    workspace=None,
    cluster=None,
) -> DetectionResult:
    """Map/reduce over columnar payloads via the vectorized kernel."""
    from ..core.kernel import decide_pairs

    merged = _map_reduce_columnar(
        index, partitions, accuracies, params, n_sources, executor,
        reduce_mode, workspace=workspace, cluster=cluster,
    )
    cost = CostCounter()
    if merged is None:
        return DetectionResult(
            method="index-parallel", n_sources=n_sources, decisions={}, cost=cost
        )
    decisions = decide_pairs(merged, index.shared_items, params, require_main=True)
    # Same accounting as the dict-based reduce: every merged incidence is
    # examined, only opened (non-tail) pairs are considered.
    cost.values_examined = int(merged.n_shared.sum())
    cost.pairs_considered = len(decisions)
    cost.computations = 2 * cost.values_examined + 2 * cost.pairs_considered
    return DetectionResult(
        method="index-parallel",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )


def _reduce(
    partials: list[_Partial],
    index: InvertedIndex,
    n_sources: int,
    params: CopyParams,
    reduce_mode: ReduceMode = "flat",
) -> DetectionResult:
    """Reduce step: merge partials, apply penalties, decide."""
    merged = _merge_partials(partials, reduce_mode)

    ln_diff = params.ln_one_minus_s
    shared_items = index.shared_items
    cost = CostCounter()
    decisions: dict[tuple[int, int], PairDecision] = {}
    for pair, (c_fwd, c_bwd, n_shared, saw_main) in merged.items():
        cost.values_examined += int(n_shared)
        if not saw_main:
            continue  # tail-only pair: INDEX never opens it
        cost.pairs_considered += 1
        n_diff = shared_items[pair] - int(n_shared)
        c_fwd += n_diff * ln_diff
        c_bwd += n_diff * ln_diff
        post = posterior(c_fwd, c_bwd, params)
        decisions[pair] = PairDecision(
            c_fwd=c_fwd,
            c_bwd=c_bwd,
            posterior=post,
            copying=post.copying,
            early=False,
        )
    cost.computations = 2 * cost.values_examined + 2 * cost.pairs_considered
    return DetectionResult(
        method="index-parallel",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )


def detect_hybrid_parallel(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    n_partitions: int = 4,
    executor: Executor = "serial",
    index: InvertedIndex | None = None,
    hybrid_threshold: int = DEFAULT_HYBRID_THRESHOLD,
    backend: str | None = None,
    epoch_size: int | None = None,
    reduce: ReduceMode = "flat",
    partition_by: str = "entries",
    workspace=None,
    cluster=None,
) -> DetectionResult:
    """HYBRID over the strong-evidence prefix, INDEX map/reduce after it.

    The paper observes that BOUND+'s timers "provide good insights on
    which entries can be processed in parallel": under BY_CONTRIBUTION
    ordering almost every early conclusion falls inside the first block
    of entries.  This detector exploits that:

    1. The first of ``n_partitions`` ``"blocks"`` partitions — the
       strong-evidence prefix — is scanned *sequentially* with the full
       HYBRID machinery (``scan_with_bounds(stop_at=...)``; epoch-batched
       under ``backend="numpy"``).  Pairs that conclude there keep their
       early verdicts and are never touched again.
    2. The remaining blocks are scanned in parallel exactly like
       :func:`detect_index_parallel` (columnar payloads — broadcast once
       via shared memory under ``"processes"`` — with flat-table merge
       under numpy, dict partials under python).  With
       ``partition_by="work"`` the suffix is re-split into
       incidence-cost-balanced shares instead of equal blocks, so a
       popular-value straggler stops bounding wall-clock; the prefix is
       unchanged, so early verdicts are identical either way.  Workers
       are oblivious to the prefix verdicts, so a concluded pair's
       suffix contributions are computed and discarded — the usual price
       of coordination-free map work.
    3. The reducer (flat or tree-wise, per ``reduce=``) adds suffix sums
       to the survivors' prefix accumulators, applies the
       different-value penalty and Eq. (2).  Pairs first seen in the
       suffix follow INDEX's skip rule (opened only with a non-tail
       incidence).

    Early *copying* conclusions are sound (``C^min`` bounds the exact
    score from below), so they agree with exact detection; early
    *no-copying* conclusions inherit Eq. (10)'s estimate, exactly as in
    the sequential HYBRID.  Survivor scores are exact.  With
    ``n_partitions=1`` the prefix is the whole index and the result
    equals :func:`repro.core.detect_hybrid`'s bit for bit.

    Raises:
        ValueError: for an unknown executor, backend, reduce mode or
            partition axis.
    """
    backend = _validate(executor, backend, reduce, params)
    if partition_by not in PARTITION_AXES:
        raise ValueError(
            f"unknown partition_by {partition_by!r}; "
            f"expected one of {PARTITION_AXES}"
        )
    if backend != params.backend:
        params = replace(params, backend=backend)
    if index is None:
        index = InvertedIndex.build(dataset, probabilities, accuracies, params)
    partitions = partition_entries(index, n_partitions, "blocks")
    prefix_len = len(partitions[0].positions)
    prefix = scan_with_bounds(
        dataset,
        probabilities,
        accuracies,
        params,
        index=index,
        hybrid_threshold=hybrid_threshold,
        method_name="hybrid-parallel",
        stop_at=prefix_len,
        collect_state=True,
        epoch_size=epoch_size,
    )
    assert isinstance(prefix, PrefixScanState)
    if partition_by == "work" and n_partitions > 1:
        suffix_parts = partition_positions_by_work(
            index, range(prefix_len, index.n_entries), n_partitions - 1
        )
    else:
        suffix_parts = partitions[1:]
    suffix_parts = [part for part in suffix_parts if part.positions]

    # Map/reduce the suffix into per-pair [c_fwd, c_bwd, n, saw_main].
    merged: _Partial = {}
    if suffix_parts:
        if backend == "numpy":
            table = _map_reduce_columnar(
                index, suffix_parts, accuracies, params, dataset.n_sources,
                executor, reduce, workspace=workspace, cluster=cluster,
            )
            if table is not None:
                for pair, c_fwd, c_bwd, n_shared, saw_main in zip(
                    table.pairs(),
                    table.c_fwd.tolist(),
                    table.c_bwd.tolist(),
                    table.n_shared.tolist(),
                    table.saw_main.tolist(),
                ):
                    merged[pair] = [c_fwd, c_bwd, float(n_shared), float(saw_main)]
        else:
            payloads = [_payload(index, part) for part in suffix_parts]
            pool = (
                workspace.pool(executor, len(payloads))
                if workspace is not None and executor != "serial"
                else None
            )
            partials = _run_map(
                _scan_partition, payloads, executor, list(accuracies), params,
                pool=pool,
            )
            merged = _merge_partials(partials, reduce)

    # Reduce: early verdicts stand; survivors absorb their suffix sums.
    ln_diff = params.ln_one_minus_s
    shared_items = index.shared_items
    cost = CostCounter()
    decisions: dict[tuple[int, int], PairDecision] = dict(prefix.done)
    cost.values_examined = prefix.incidences
    cost.computations = prefix.score_updates + prefix.bound_evals
    suffix_incidences = 0
    exact_pairs = 0
    for survivors in (prefix.active, prefix.exact):
        for pair, (c0_fwd, c0_bwd, n0) in survivors.items():
            cell = merged.get(pair)
            if cell is not None:
                c0_fwd += cell[0]
                c0_bwd += cell[1]
                n0 += int(cell[2])
            penalty = (shared_items[pair] - n0) * ln_diff
            c_fwd = c0_fwd + penalty
            c_bwd = c0_bwd + penalty
            post = posterior(c_fwd, c_bwd, params)
            decisions[pair] = PairDecision(
                c_fwd=c_fwd,
                c_bwd=c_bwd,
                posterior=post,
                copying=post.copying,
                early=False,
            )
            exact_pairs += 1
    for pair, (c_fwd, c_bwd, n_shared, saw_main) in merged.items():
        suffix_incidences += int(n_shared)
        if pair in decisions:
            continue  # early verdicts stand; survivors already resolved
        if not saw_main:
            continue  # suffix-tail-only pair: INDEX never opens it
        penalty = (shared_items[pair] - int(n_shared)) * ln_diff
        c_fwd += penalty
        c_bwd += penalty
        post = posterior(c_fwd, c_bwd, params)
        decisions[pair] = PairDecision(
            c_fwd=c_fwd,
            c_bwd=c_bwd,
            posterior=post,
            copying=post.copying,
            early=False,
        )
        exact_pairs += 1
    cost.values_examined += suffix_incidences
    cost.computations += 2 * suffix_incidences + 2 * exact_pairs
    cost.pairs_considered = len(decisions)
    return DetectionResult(
        method="hybrid-parallel",
        n_sources=dataset.n_sources,
        decisions=decisions,
        cost=cost,
    )
