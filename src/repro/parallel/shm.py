"""Shared-memory broadcast of the columnar world to process-pool workers.

The parallel engine's original process-pool path pickled one columnar
payload *per partition* — at P partitions the provider/probability arrays
cross the process boundary P times, and the payload construction itself
(per-partition gathers in the parent) is serial work that grows with P.
This module broadcasts the whole world **once** instead:

1. The parent packs the :class:`~repro.core.kernel.ColumnarEntries` of
   the full index plus the clamped accuracy vector into a single
   :class:`multiprocessing.shared_memory.SharedMemory` block
   (:class:`SharedWorld`).
2. Each task ships only a tiny :class:`ShmWorldHandle` (the block name
   plus per-array dtype/offset/length metadata) and the partition's entry
   positions.
3. Workers attach to the block *once per process* (module-level cache),
   reconstruct zero-copy array views over the buffer, and slice their
   partition out with :meth:`ColumnarEntries.take`.

The engine falls back to pickled per-partition payloads whenever shared
memory is unavailable (platforms without ``/dev/shm``, permission errors,
or an interpreter built without ``multiprocessing.shared_memory``) — the
scan itself is byte-for-byte the same either way, so the fallback changes
performance only, never results.
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.kernel import ColumnarEntries

#: Every live parent-side SharedWorld.  Weak references: a world that is
#: garbage-collected drops out on its own (``__del__`` unlinks it), and
#: the :func:`_cleanup_live_worlds` atexit hook sweeps whatever is still
#: alive when the interpreter exits — e.g. a workspace abandoned after a
#: process-pool worker died mid-round — so no ``/dev/shm`` segment can
#: outlive the process.  ``close()`` is idempotent, so a world being
#: swept twice (hook + __del__, or an explicit close before either) never
#: double-unlinks or warns.
_LIVE_WORLDS: "weakref.WeakSet[SharedWorld]" = weakref.WeakSet()


def _cleanup_live_worlds() -> None:
    """atexit safety net: unlink any shm block still owned by this process."""
    for world in list(_LIVE_WORLDS):
        try:
            world.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


atexit.register(_cleanup_live_worlds)


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can actually allocate."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - all supported platforms have it
        return False
    try:
        block = shared_memory.SharedMemory(create=True, size=1)
    except OSError:  # pragma: no cover - e.g. read-only /dev/shm
        return False
    block.close()
    block.unlink()
    return True


@dataclass(frozen=True)
class ShmWorldHandle:
    """Pickle-cheap descriptor of a broadcast world.

    Attributes:
        name: the shared-memory block's system-wide name.
        fields: ``(field, dtype, byte_offset, n_elements)`` per array, in
            the order they were packed.
        n_sources: source count (workers need it for pair keys).
    """

    name: str
    fields: tuple[tuple[str, str, int, int], ...]
    n_sources: int


def _attach(handle: ShmWorldHandle):
    """Attach to a broadcast block and rebuild the arrays (worker side)."""
    from multiprocessing import shared_memory

    try:
        # Python 3.13+: opt out of resource tracking — the parent owns
        # the block's lifetime and unlinks it.
        block = shared_memory.SharedMemory(name=handle.name, track=False)
    except TypeError:
        # Pre-3.13 interpreters register the attachment with the resource
        # tracker too.  The tracker's name cache is shared across the
        # process tree (registrations of the same name collapse), so the
        # parent's unlink-time unregister clears it — workers must NOT
        # unregister themselves or the tracker sees double removals.
        block = shared_memory.SharedMemory(name=handle.name)
    arrays = {}
    for field, dtype, offset, length in handle.fields:
        arrays[field] = np.ndarray(
            (length,), dtype=np.dtype(dtype), buffer=block.buf, offset=offset
        )
    return block, arrays


#: Worker-process cache: one attachment per broadcast block, reused by
#: every task the worker executes (the pool outlives the tasks).
_ATTACHED: dict = {}


def attached_world(handle: ShmWorldHandle):
    """Worker-side accessor: ``(ColumnarEntries, accuracies)`` views.

    The views are zero-copy over the shared block; attachments are cached
    per process so the cost is paid once per worker, not per partition.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is None:
        from ..core.kernel import ColumnarEntries

        block, arrays = _attach(handle)
        cols = ColumnarEntries(
            probs=arrays["probs"],
            main=arrays["main"].view(bool),
            offsets=arrays["offsets"],
            providers=arrays["providers"],
        )
        cached = (block, cols, arrays["accuracies"])
        _ATTACHED[handle.name] = cached
    return cached[1], cached[2]


class SharedWorld:
    """Parent-side owner of one broadcast block (context manager).

    Usage::

        with SharedWorld.create(cols, accuracies, n_sources) as world:
            pool.submit(worker, world.handle, positions, ...)

    The block is unlinked on exit; workers hold attachments only for the
    lifetime of their pool.
    """

    def __init__(self, block, handle: ShmWorldHandle):
        self._block = block
        self.handle = handle
        _LIVE_WORLDS.add(self)

    @staticmethod
    def _pack(
        cols: "ColumnarEntries", accuracies: Sequence[float] | np.ndarray
    ) -> dict[str, np.ndarray]:
        """The contiguous arrays a broadcast block carries, in pack order."""
        return {
            "probs": np.ascontiguousarray(cols.probs, dtype=np.float64),
            # bool stored as uint8 for a stable cross-process dtype token.
            "main": np.ascontiguousarray(cols.main, dtype=np.uint8),
            "offsets": np.ascontiguousarray(cols.offsets, dtype=np.int64),
            "providers": np.ascontiguousarray(cols.providers, dtype=np.int64),
            "accuracies": np.ascontiguousarray(accuracies, dtype=np.float64),
        }

    @classmethod
    def create(
        cls,
        cols: "ColumnarEntries",
        accuracies: Sequence[float] | np.ndarray,
        n_sources: int,
    ) -> "SharedWorld":
        """Pack a columnar world + accuracies into one fresh shm block.

        Raises:
            OSError: when the platform cannot allocate shared memory (the
                engine catches this and falls back to pickled payloads).
        """
        from multiprocessing import shared_memory

        arrays = cls._pack(cols, accuracies)
        fields = []
        offset = 0
        for field, arr in arrays.items():
            # 8-byte alignment keeps every view's dtype happy.
            offset = (offset + 7) & ~7
            fields.append((field, arr.dtype.str, offset, len(arr)))
            offset += arr.nbytes
        block = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (_, dtype, start, length), arr in zip(fields, arrays.values()):
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=block.buf, offset=start
            )
            view[:] = arr
        handle = ShmWorldHandle(
            name=block.name, fields=tuple(fields), n_sources=n_sources
        )
        return cls(block, handle)

    def write(
        self,
        cols: "ColumnarEntries",
        accuracies: Sequence[float] | np.ndarray,
    ) -> bool:
        """Rewrite the packed arrays in place (the round-reuse fast path).

        A fusion round re-broadcasts fresh probabilities, main/tail flags
        and accuracies — and a (re-ordered) view of the same frozen
        provider structure, so every field keeps its length.  Rewriting
        the buffer under the *same* block name means worker processes
        keep their cached zero-copy attachments (:func:`attached_world`)
        and the persistent pool never re-attaches; callers must only do
        this between rounds, when no task is in flight.

        Returns:
            True after a successful in-place rewrite; False when the
            block is already closed or any array length changed (the
            caller creates a fresh block instead).
        """
        if self._block is None:
            return False
        arrays = self._pack(cols, accuracies)
        if tuple(
            (field, arr.dtype.str, len(arr)) for field, arr in arrays.items()
        ) != tuple(
            (field, dtype, length) for field, dtype, _, length in self.handle.fields
        ):
            return False
        for (_, dtype, start, length), arr in zip(
            self.handle.fields, arrays.values()
        ):
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=self._block.buf, offset=start
            )
            view[:] = arr
        return True

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        if self._block is None:
            return
        self._block.close()
        try:
            self._block.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._block = None
        _LIVE_WORLDS.discard(self)

    def __enter__(self) -> "SharedWorld":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        # Last-resort unlink for worlds dropped without close() — e.g. an
        # owner torn down abruptly after a pool worker died.  close() is
        # idempotent and the atexit sweep tolerates both orders.
        try:
            self.close()
        except Exception:
            pass


def scan_shm_partition(handle: ShmWorldHandle, positions, params):
    """Map step over a broadcast world: slice a partition, scan it.

    Top-level (picklable) so the engine can submit it to worker
    processes; ``positions`` is the only per-task payload of any size.
    """
    from ..core.kernel import scan_columnar

    cols, accuracies = attached_world(handle)
    part = cols.take(np.asarray(positions, dtype=np.int64))
    return scan_columnar(part, accuracies, params, handle.n_sources)
