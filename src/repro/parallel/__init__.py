"""Partitioned/parallel detection (the paper's Section VIII future work)."""

from .engine import detect_hybrid_parallel, detect_index_parallel
from .partition import (
    EntryPartition,
    PartitionStrategy,
    entry_work,
    partition_entries,
    partition_positions_by_work,
    partition_weights,
)
#: Names re-exported lazily from .shm: importing repro.parallel must not
#: require NumPy (only the opt-in ``backend="numpy"`` paths do).
_SHM_EXPORTS = frozenset(
    {"SharedWorld", "ShmWorldHandle", "shared_memory_available"}
)


def __getattr__(name: str):
    if name in _SHM_EXPORTS:
        from . import shm

        return getattr(shm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EntryPartition",
    "PartitionStrategy",
    "SharedWorld",
    "ShmWorldHandle",
    "detect_hybrid_parallel",
    "detect_index_parallel",
    "entry_work",
    "partition_entries",
    "partition_positions_by_work",
    "partition_weights",
    "shared_memory_available",
]
