"""Partitioned/parallel detection (the paper's Section VIII future work)."""

from .engine import detect_hybrid_parallel, detect_index_parallel
from .partition import (
    EntryPartition,
    partition_entries,
    partition_weights,
)

__all__ = [
    "EntryPartition",
    "detect_hybrid_parallel",
    "detect_index_parallel",
    "partition_entries",
    "partition_weights",
]
