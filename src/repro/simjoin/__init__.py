"""Set-similarity-join utilities for counting shared items between sources."""

from .overlap import (
    PairCounts,
    count_shared_items,
    count_shared_values,
    overlap_join,
)

__all__ = [
    "PairCounts",
    "count_shared_items",
    "count_shared_values",
    "overlap_join",
]
