"""Set-overlap counting between sources (the paper's reference [1]).

Building the inverted index requires, for every pair of sources that
co-occur in at least one entry, the number of *data items* they share —
``l(S1, S2)`` in the paper.  The naive approach intersects claim sets per
pair (O(|S|^2 * items)); the paper points to set-similarity-join
techniques (Arasu, Ganti & Kaushik, VLDB 2006) instead.

We implement the standard inverted-list join: scan items, and for each
item bump a counter for every pair of its providers.  Total cost is
``sum_D k_D^2 / 2`` where ``k_D`` is the number of sources providing item
``D`` — proportional to the number of *actual* overlaps rather than the
number of source pairs, which is exactly the asymptotic win the
set-similarity-join literature targets for sparse data.

A thresholded prefix-filter variant (:func:`overlap_join`) is provided for
standalone use and exercised by the test suite; the index builder uses
:func:`count_shared_items`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..data import Dataset

PairCounts = dict[tuple[int, int], int]


def _pair_key(a: int, b: int) -> tuple[int, int]:
    """Canonical (sorted) key for an unordered source pair."""
    return (a, b) if a < b else (b, a)


def count_shared_items(dataset: Dataset) -> PairCounts:
    """Count shared items ``l(S1, S2)`` for every overlapping source pair.

    Returns a dict keyed by sorted source-id pairs; pairs sharing no item
    are absent (and every detector treats absence as "no evidence at all",
    i.e. trivially independent).
    """
    providers_by_item: list[list[int]] = [[] for _ in range(dataset.n_items)]
    for source_id, claim in enumerate(dataset.claims):
        for item_id in claim:
            providers_by_item[item_id].append(source_id)
    counts: PairCounts = {}
    for providers in providers_by_item:
        k = len(providers)
        if k < 2:
            continue
        for i in range(k):
            si = providers[i]
            for j in range(i + 1, k):
                key = _pair_key(si, providers[j])
                counts[key] = counts.get(key, 0) + 1
    return counts


def count_shared_values(dataset: Dataset) -> PairCounts:
    """Count shared *values* ``n(S1, S2)`` for every overlapping pair.

    Same structure as :func:`count_shared_items` but grouped by value id:
    two sources share a value when they claim the same value id.
    """
    counts: PairCounts = {}
    for providers in dataset.providers:
        k = len(providers)
        if k < 2:
            continue
        for i in range(k):
            si = providers[i]
            for j in range(i + 1, k):
                key = _pair_key(si, providers[j])
                counts[key] = counts.get(key, 0) + 1
    return counts


def overlap_join(
    sets: Sequence[Iterable[int]] | Mapping[int, Iterable[int]],
    threshold: int,
) -> PairCounts:
    """Exact set-overlap join with a prefix filter (Arasu et al., VLDB'06).

    Finds all pairs of input sets whose intersection size is at least
    ``threshold`` and returns their exact overlap counts.

    The prefix filter orders each set by a global element order (here:
    ascending element id) and indexes only the first ``len - threshold + 1``
    elements of each set: two sets with overlap >= t must share an element
    within those prefixes.  Candidate pairs found via the prefix index are
    then verified with an exact merge-count.

    Args:
        sets: the input sets, as a sequence (ids are positions) or a
            mapping ``id -> iterable``.
        threshold: minimum overlap, >= 1.

    Returns:
        Dict keyed by sorted id pairs with exact overlap counts
        (only pairs meeting the threshold are present).
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    if isinstance(sets, Mapping):
        items = list(sets.items())
    else:
        items = list(enumerate(sets))
    sorted_sets: dict[int, list[int]] = {
        set_id: sorted(set(elements)) for set_id, elements in items
    }

    prefix_index: dict[int, list[int]] = {}
    for set_id, elements in sorted_sets.items():
        prefix_len = len(elements) - threshold + 1
        if prefix_len <= 0:
            continue  # too small to ever reach the threshold
        for element in elements[:prefix_len]:
            prefix_index.setdefault(element, []).append(set_id)

    candidates: set[tuple[int, int]] = set()
    for posting in prefix_index.values():
        k = len(posting)
        for i in range(k):
            for j in range(i + 1, k):
                candidates.add(_pair_key(posting[i], posting[j]))

    results: PairCounts = {}
    for a, b in candidates:
        count = _merge_count(sorted_sets[a], sorted_sets[b])
        if count >= threshold:
            results[(a, b)] = count
    return results


def _merge_count(left: list[int], right: list[int]) -> int:
    """Intersection size of two sorted lists via a linear merge."""
    i = j = count = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        if left[i] == right[j]:
            count += 1
            i += 1
            j += 1
        elif left[i] < right[j]:
            i += 1
        else:
            j += 1
    return count
