"""The LRU-cached read API over a verdict store.

:class:`VerdictReader` answers the three read-heavy questions the
serving tier exists for — ``get_verdict(s1, s2)``, ``get_truth(item)``
and ``top_copiers(k)`` — from a loaded snapshot, without touching the
detection pipeline.

**Consistency under concurrent refresh.**  All state (the merged
arrays, the label tables *and the LRU caches*) lives on an immutable
:class:`_SnapshotView`.  ``refresh()`` builds a complete new view and
then swaps one attribute reference — an atomic operation under the GIL
— so a reader thread either sees the old view or the new one, never a
mix, and never a cache entry from a different version.  Every reply
carries the ``snapshot_id`` it was served from, which is how the serve
benchmark verifies correctness while a writer republishes concurrently.

**Speed.**  The hot lookups are wrapped in :func:`functools.lru_cache`
(the C implementation), so a repeated query costs one dict probe; a
cache miss costs one :func:`numpy.searchsorted` over the sorted key
column.  Caches are sized by ``cache_size`` (entries per view, per
lookup kind).
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import NamedTuple

import numpy as np

from .codec import ServingError
from .store import (
    FLAG_COPYING,
    FLAG_EARLY,
    ItemRows,
    PairRows,
    VerdictStore,
    merge_item_rows,
    merge_pair_rows,
)


class Verdict(NamedTuple):
    """One served pair verdict (sources normalized to ``source_1 < source_2``)."""

    source_1: int
    source_2: int
    copying: bool
    early: bool
    independent: float  #: Pr(no copying | Phi)
    forward: float  #: Pr(source_1 copies from source_2 | Phi)
    backward: float  #: Pr(source_2 copies from source_1 | Phi)
    c_fwd: float
    c_bwd: float
    decision_pos: int  #: bookkeeping decision position, -1 if untracked
    snapshot_id: int  #: the snapshot version this reply was served from


class Truth(NamedTuple):
    """One served fused truth with provenance."""

    item: int
    item_name: str | None
    value: int
    value_label: str | None
    probability: float
    supporters: tuple[int, ...]  #: sources whose claim supports the truth
    snapshot_id: int


class TopCopier(NamedTuple):
    """One row of the most-copied ranking."""

    source: int
    source_name: str | None
    score: float  #: summed directed copy-posterior mass over its pairs


class _SnapshotView:
    """One immutable loaded snapshot version: merged arrays + LRU caches."""

    def __init__(
        self,
        snapshot_id: int,
        meta: dict,
        pairs: PairRows,
        items: ItemRows,
        copier_sources: np.ndarray,
        copier_scores: np.ndarray,
        labels: dict | None,
        cache_size: int,
    ):
        self.snapshot_id = snapshot_id
        self.meta = meta
        self.n_sources = int(meta["n_sources"])
        self.pairs = pairs
        self.items = items
        self.copier_sources = copier_sources
        self.copier_scores = copier_scores
        self.labels = labels or {}
        self._item_index = {int(v): i for i, v in enumerate(items.ids)}
        item_names = self.labels.get("items")
        self._item_by_name = (
            {name: i for i, name in enumerate(item_names)} if item_names else None
        )
        # Per-view caches: a swapped-in view starts cold but can never
        # serve a stale entry from an older version.
        self.get_verdict = functools.lru_cache(maxsize=cache_size)(self._verdict)
        self.get_truth = functools.lru_cache(maxsize=cache_size)(self._truth)

    @classmethod
    def load(
        cls, store: VerdictStore, snapshot_id: int, cache_size: int
    ) -> "_SnapshotView":
        chain = store.load_chain(snapshot_id)
        base_meta, base_arrays = chain[0]
        pairs = PairRows.from_arrays(base_arrays)
        items = ItemRows.from_arrays(base_arrays)
        labels = base_meta.get("labels")
        for meta, arrays in chain[1:]:
            pairs = merge_pair_rows(
                pairs,
                PairRows.from_arrays(arrays),
                arrays.get("removed_pair_keys", np.empty(0, dtype=np.int64)),
            )
            items = merge_item_rows(
                items,
                ItemRows.from_arrays(arrays),
                arrays.get("removed_item_ids", np.empty(0, dtype=np.int64)),
            )
            if meta.get("labels"):
                labels = meta["labels"]
        tip_meta, tip_arrays = chain[-1]
        try:
            copier_sources = tip_arrays["copier_sources"]
            copier_scores = tip_arrays["copier_scores"]
        except KeyError as exc:
            raise ServingError(
                f"snapshot {snapshot_id} is missing the copier ranking "
                f"({exc.args[0]!r})"
            ) from exc
        return cls(
            snapshot_id=snapshot_id,
            meta=tip_meta,
            pairs=pairs,
            items=items,
            copier_sources=copier_sources,
            copier_scores=copier_scores,
            labels=labels,
            cache_size=cache_size,
        )

    def _check_source(self, source: int) -> None:
        if not 0 <= source < self.n_sources:
            raise ValueError(
                f"source {source} out of range for a {self.n_sources}-source store"
            )

    def _verdict(self, s1: int, s2: int) -> Verdict | None:
        self._check_source(s1)
        self._check_source(s2)
        if s1 == s2:
            raise ValueError("a pair needs two distinct sources")
        a, b = (s1, s2) if s1 < s2 else (s2, s1)
        key = a * self.n_sources + b
        keys = self.pairs.keys
        pos = int(np.searchsorted(keys, key))
        if pos >= len(keys) or keys[pos] != key:
            return None  # never observed: independent by construction
        pairs = self.pairs
        flags = int(pairs.flags[pos])
        return Verdict(
            source_1=a,
            source_2=b,
            copying=bool(flags & FLAG_COPYING),
            early=bool(flags & FLAG_EARLY),
            independent=float(pairs.independent[pos]),
            forward=float(pairs.forward[pos]),
            backward=float(pairs.backward[pos]),
            c_fwd=float(pairs.c_fwd[pos]),
            c_bwd=float(pairs.c_bwd[pos]),
            decision_pos=int(pairs.decision_pos[pos]),
            snapshot_id=self.snapshot_id,
        )

    def _truth(self, item: int | str) -> Truth | None:
        if isinstance(item, str):
            if self._item_by_name is None:
                raise ServingError(
                    "store was published without labels; query items by id"
                )
            item_id = self._item_by_name.get(item)
            if item_id is None:
                return None
        else:
            item_id = int(item)
        row = self._item_index.get(item_id)
        if row is None:
            return None
        items = self.items
        value = int(items.truth[row])
        start, end = items.prov_offsets[row], items.prov_offsets[row + 1]
        item_names = self.labels.get("items")
        value_labels = self.labels.get("values")
        return Truth(
            item=item_id,
            item_name=item_names[item_id] if item_names else None,
            value=value,
            value_label=value_labels[value] if value_labels else None,
            probability=float(items.probability[row]),
            supporters=tuple(int(s) for s in items.prov_sources[start:end]),
            snapshot_id=self.snapshot_id,
        )

    def top_copiers(self, k: int) -> list[TopCopier]:
        if k < 0:
            raise ValueError("k must be non-negative")
        source_names = self.labels.get("sources")
        out = []
        for source, score in zip(self.copier_sources[:k], self.copier_scores[:k]):
            source = int(source)
            out.append(
                TopCopier(
                    source=source,
                    source_name=source_names[source] if source_names else None,
                    score=float(score),
                )
            )
        return out


class VerdictReader:
    """Read API over a :class:`~repro.serving.store.VerdictStore`.

    Opens the store's ``CURRENT`` snapshot; ``refresh()`` picks up a
    newly published version atomically (see the module docstring for the
    consistency argument).  Safe to share across reader threads while a
    single writer republishes.
    """

    def __init__(self, store: VerdictStore | Path | str, cache_size: int = 65536):
        self._store = (
            store if isinstance(store, VerdictStore) else VerdictStore(store, create=False)
        )
        self._cache_size = cache_size
        self._view: _SnapshotView | None = None
        self.refresh()

    @property
    def snapshot_id(self) -> int:
        """The snapshot version currently being served."""
        return self._view.snapshot_id

    @property
    def n_sources(self) -> int:
        """Source count of the served snapshot (the pair-key stride)."""
        return self._view.n_sources

    @property
    def labels(self) -> dict:
        """Display labels published with the store (may be empty)."""
        return self._view.labels

    def refresh(self) -> bool:
        """Re-read ``CURRENT`` and swap in the new version if it moved.

        Returns True when a new snapshot was loaded.  Readers running
        concurrently keep being served from the old view until the swap,
        and from the new view after — never a mix.

        Raises:
            ServingError: the store is empty or the snapshot chain fails
                to load.
        """
        current = self._store.current_id()
        if current is None:
            raise ServingError(
                f"{self._store.root}: store has no published snapshot"
            )
        view = self._view
        if view is not None and view.snapshot_id == current:
            return False
        new_view = _SnapshotView.load(self._store, current, self._cache_size)
        self._view = new_view  # atomic publication to reader threads
        return True

    # ------------------------------------------------------------------
    # The read API proper: delegate to the (immutable) current view.
    # ------------------------------------------------------------------
    def get_verdict(self, s1: int, s2: int) -> Verdict | None:
        """Served verdict for a pair (any order); None if never observed."""
        return self._view.get_verdict(s1, s2)

    def get_truth(self, item: int | str) -> Truth | None:
        """Served fused truth for an item id (or name, when labels exist)."""
        return self._view.get_truth(item)

    def top_copiers(self, k: int = 10) -> list[TopCopier]:
        """The k sources with the most directed copying mass, descending."""
        return self._view.top_copiers(k)

    def cache_info(self) -> dict[str, object]:
        """Diagnostics: current snapshot + per-view LRU statistics."""
        view = self._view
        return {
            "snapshot_id": view.snapshot_id,
            "verdict_cache": view.get_verdict.cache_info(),
            "truth_cache": view.get_truth.cache_info(),
            "n_pairs": len(view.pairs),
            "n_items": len(view.items),
        }
