"""The persisted verdict store: versioned snapshots + delta publishing.

A :class:`VerdictStore` is a directory of immutable snapshot files plus
an atomically-updated ``CURRENT`` pointer::

    store/
      snap-00000001.rvs     # full snapshot
      snap-00000002.rvs     # delta over 1
      snap-00000003.rvs     # delta over 2
      CURRENT               # {"snapshot_id": 3}

Each snapshot is encoded by :mod:`repro.serving.codec` and carries two
row families in one schema, whatever detector (and whatever
``pair_layout`` — dense and sparse runs serialize identically) produced
them:

* **pair rows** — key ``s1 * n_sources + s2`` (``s1 < s2``, the same
  int64 key codec as :mod:`repro.core.pairspace`), the accumulated
  scores ``C->``/``C<-``, the three-way posterior, the copying/early
  flags and the decision position from
  :class:`~repro.core.bound.PairBookkeeping` (-1 when untracked);
* **item rows** — the fused truth (value id), its probability and its
  provenance (the sources supporting the chosen value, CSR-packed).

A **full** snapshot carries the complete state (plus optional display
labels); a **delta** carries only upserted/removed rows over a ``base``
snapshot.  :class:`SnapshotPublisher` drives the lifecycle for the
fusion loop: the first round publishes full, and later rounds publish
deltas sized by what actually changed —
:attr:`~repro.core.result.DetectionResult.changed_pairs` (the
INCREMENTAL bookkeeping's re-opened/rebuilt pairs) when the detector
reports it, a field-exact diff otherwise — falling back to a fresh full
snapshot when the delta would approach a rewrite anyway.

Per-source "most copied" totals (``top_copiers``) are recomputed from
the merged pair state at every publish; they are O(pairs) to build and
tiny to store, so even deltas carry the complete ranking.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from .codec import (
    FORMAT_VERSION,
    ServingError,
    encode_snapshot,
    read_snapshot_file,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.result import DetectionResult
    from ..data import Dataset

#: Pair-row flag bits.
FLAG_COPYING = 1
FLAG_EARLY = 2

#: Float pair columns stored per row (beyond the key).
PAIR_FLOAT_COLUMNS = ("c_fwd", "c_bwd", "independent", "forward", "backward")

_SNAP_PATTERN = "snap-%08d.rvs"


@dataclass
class PairRows:
    """Columnar pair verdicts, sorted by key (the storage layout)."""

    keys: np.ndarray  #: int64 ``s1 * n_sources + s2`` keys, sorted unique
    c_fwd: np.ndarray
    c_bwd: np.ndarray
    independent: np.ndarray
    forward: np.ndarray
    backward: np.ndarray
    flags: np.ndarray  #: uint8 bitmask of FLAG_COPYING / FLAG_EARLY
    decision_pos: np.ndarray  #: int64 bookkeeping decision position, -1 unknown

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def empty(cls) -> "PairRows":
        """A zero-row pair table (the state before any publish)."""
        return cls(
            keys=np.empty(0, dtype=np.int64),
            c_fwd=np.empty(0),
            c_bwd=np.empty(0),
            independent=np.empty(0),
            forward=np.empty(0),
            backward=np.empty(0),
            flags=np.empty(0, dtype=np.uint8),
            decision_pos=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_decisions(
        cls,
        decisions: Mapping[tuple[int, int], "object"],
        n_sources: int,
        decision_positions: Mapping[tuple[int, int], int] | None = None,
    ) -> "PairRows":
        """Build sorted pair rows from a ``DetectionResult.decisions`` map.

        The construction only reads the public :class:`PairDecision`
        fields, so dense- and sparse-layout results (whose decisions
        dicts are value-identical) serialize to byte-identical rows.
        """
        n_rows = len(decisions)
        keys = np.empty(n_rows, dtype=np.int64)
        cols = {name: np.empty(n_rows) for name in PAIR_FLOAT_COLUMNS}
        flags = np.empty(n_rows, dtype=np.uint8)
        positions = np.full(n_rows, -1, dtype=np.int64)
        stride = np.int64(n_sources)
        for row, ((s1, s2), decision) in enumerate(decisions.items()):
            keys[row] = np.int64(s1) * stride + np.int64(s2)
            cols["c_fwd"][row] = decision.c_fwd
            cols["c_bwd"][row] = decision.c_bwd
            post = decision.posterior
            cols["independent"][row] = post.independent
            cols["forward"][row] = post.forward
            cols["backward"][row] = post.backward
            flags[row] = (FLAG_COPYING if decision.copying else 0) | (
                FLAG_EARLY if decision.early else 0
            )
            if decision_positions is not None:
                positions[row] = decision_positions.get((s1, s2), -1)
        order = np.argsort(keys, kind="stable")
        return cls(
            keys=keys[order],
            flags=flags[order],
            decision_pos=positions[order],
            **{name: cols[name][order] for name in PAIR_FLOAT_COLUMNS},
        )

    def to_arrays(self, prefix: str = "pair_") -> dict[str, np.ndarray]:
        """Flatten to the prefixed column dict the codec serializes."""
        out = {prefix + "keys": self.keys}
        for name in PAIR_FLOAT_COLUMNS:
            out[prefix + name] = getattr(self, name)
        out[prefix + "flags"] = self.flags
        out[prefix + "decision_pos"] = self.decision_pos
        return out

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], prefix: str = "pair_"
    ) -> "PairRows":
        """Rebuild from a decoded snapshot's column dict.

        Raises:
            ServingError: when a pair column is missing.
        """
        try:
            return cls(
                keys=arrays[prefix + "keys"],
                flags=arrays[prefix + "flags"],
                decision_pos=arrays[prefix + "decision_pos"],
                **{
                    name: arrays[prefix + name] for name in PAIR_FLOAT_COLUMNS
                },
            )
        except KeyError as exc:
            raise ServingError(
                f"snapshot is missing pair column {exc.args[0]!r}"
            ) from exc


@dataclass
class ItemRows:
    """Columnar fused truths + provenance, sorted by item id."""

    ids: np.ndarray  #: int64 item ids, sorted unique
    truth: np.ndarray  #: int64 chosen value id per item
    probability: np.ndarray  #: float64 probability of the chosen value
    prov_offsets: np.ndarray  #: int64 CSR offsets (len(ids) + 1)
    prov_sources: np.ndarray  #: int64 supporting source ids, CSR-packed

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def empty(cls) -> "ItemRows":
        """A zero-row item table (the state before any publish)."""
        return cls(
            ids=np.empty(0, dtype=np.int64),
            truth=np.empty(0, dtype=np.int64),
            probability=np.empty(0),
            prov_offsets=np.zeros(1, dtype=np.int64),
            prov_sources=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def from_truths(
        cls,
        dataset: "Dataset",
        chosen: Mapping[int, int],
        probabilities: Sequence[float],
    ) -> "ItemRows":
        """Build item rows from a fused truth assignment.

        Provenance is the chosen value's provider list — the sources
        whose claim supports the published truth.
        """
        item_ids = np.fromiter(sorted(chosen), dtype=np.int64, count=len(chosen))
        truth = np.fromiter(
            (chosen[int(i)] for i in item_ids), dtype=np.int64, count=len(item_ids)
        )
        probability = np.fromiter(
            (float(probabilities[int(v)]) for v in truth),
            dtype=np.float64,
            count=len(truth),
        )
        providers = dataset.providers
        supporter_lists = [providers[int(v)] for v in truth]
        offsets = np.zeros(len(item_ids) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in supporter_lists], out=offsets[1:])
        flat = np.fromiter(
            (s for lst in supporter_lists for s in lst),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        return cls(
            ids=item_ids,
            truth=truth,
            probability=probability,
            prov_offsets=offsets,
            prov_sources=flat,
        )

    def to_arrays(self, prefix: str = "item_") -> dict[str, np.ndarray]:
        """Flatten to the prefixed column dict the codec serializes."""
        return {
            prefix + "ids": self.ids,
            prefix + "truth": self.truth,
            prefix + "probability": self.probability,
            prefix + "prov_offsets": self.prov_offsets,
            prefix + "prov_sources": self.prov_sources,
        }

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], prefix: str = "item_"
    ) -> "ItemRows":
        """Rebuild from a decoded snapshot's column dict.

        Raises:
            ServingError: when an item column is missing.
        """
        try:
            return cls(
                ids=arrays[prefix + "ids"],
                truth=arrays[prefix + "truth"],
                probability=arrays[prefix + "probability"],
                prov_offsets=arrays[prefix + "prov_offsets"],
                prov_sources=arrays[prefix + "prov_sources"],
            )
        except KeyError as exc:
            raise ServingError(
                f"snapshot is missing item column {exc.args[0]!r}"
            ) from exc

    def take(self, rows: np.ndarray) -> "ItemRows":
        """A new :class:`ItemRows` holding the selected rows (re-packed CSR)."""
        lengths = (self.prov_offsets[1:] - self.prov_offsets[:-1])[rows]
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        for out_row, row in enumerate(rows):
            start, end = self.prov_offsets[row], self.prov_offsets[row + 1]
            flat[offsets[out_row] : offsets[out_row + 1]] = self.prov_sources[
                start:end
            ]
        return ItemRows(
            ids=self.ids[rows],
            truth=self.truth[rows],
            probability=self.probability[rows],
            prov_offsets=offsets,
            prov_sources=flat,
        )


def copier_totals(pairs: PairRows, n_sources: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-source copying mass, ranked — the ``top_copiers`` index.

    A pair's ``forward`` posterior is ``Pr(S1 -> S2)`` (S1 copies from
    S2) and accrues to S1; ``backward`` accrues to S2.  Returns
    ``(sources, scores)`` sorted by descending score, sources with zero
    mass dropped.
    """
    totals = np.zeros(n_sources)
    if len(pairs):
        s1 = pairs.keys // n_sources
        s2 = pairs.keys % n_sources
        np.add.at(totals, s1, pairs.forward)
        np.add.at(totals, s2, pairs.backward)
    sources = np.nonzero(totals > 0.0)[0]
    order = np.argsort(-totals[sources], kind="stable")
    sources = sources[order].astype(np.int64)
    return sources, totals[sources]


def merge_pair_rows(
    base: PairRows, upserts: PairRows, removed_keys: np.ndarray
) -> PairRows:
    """Apply a delta's pair upserts/removals over a base row set."""
    keys = np.concatenate([base.keys, upserts.keys])
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    uniq, first, counts = np.unique(
        sorted_keys, return_index=True, return_counts=True
    )
    # Stable sort keeps base rows before upsert rows within one key, so
    # the *last* row of each group is the newest.
    take = order[first + counts - 1]
    keep = np.ones(len(uniq), dtype=bool)
    if len(removed_keys):
        keep &= ~np.isin(uniq, removed_keys)
    take = take[keep]

    def pick(column_base, column_new):
        return np.concatenate([column_base, column_new])[take]

    return PairRows(
        keys=uniq[keep],
        flags=pick(base.flags, upserts.flags),
        decision_pos=pick(base.decision_pos, upserts.decision_pos),
        **{
            name: pick(getattr(base, name), getattr(upserts, name))
            for name in PAIR_FLOAT_COLUMNS
        },
    )


def merge_item_rows(
    base: ItemRows, upserts: ItemRows, removed_ids: np.ndarray
) -> ItemRows:
    """Apply a delta's item upserts/removals over a base row set."""
    ids = np.concatenate([base.ids, upserts.ids])
    order = np.argsort(ids, kind="stable")
    uniq, first, counts = np.unique(ids[order], return_index=True, return_counts=True)
    take = order[first + counts - 1]
    keep = np.ones(len(uniq), dtype=bool)
    if len(removed_ids):
        keep &= ~np.isin(uniq, removed_ids)
    take = take[keep]
    combined = ItemRows(
        ids=ids,
        truth=np.concatenate([base.truth, upserts.truth]),
        probability=np.concatenate([base.probability, upserts.probability]),
        prov_offsets=np.concatenate(
            [
                base.prov_offsets,
                base.prov_offsets[-1] + upserts.prov_offsets[1:],
            ]
        ),
        prov_sources=np.concatenate([base.prov_sources, upserts.prov_sources]),
    )
    return combined.take(take)


class VerdictStore:
    """Directory manager for versioned verdict snapshots.

    Snapshot files are immutable and published atomically (written to a
    temp name, then renamed); the ``CURRENT`` pointer is replaced the
    same way, so a concurrently-reading :class:`~repro.serving.reader.
    VerdictReader` always sees either the old or the new version, never
    a torn one.
    """

    def __init__(self, root: Path | str, create: bool = True):
        self.root = Path(root)
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ServingError(f"{self.root}: verdict store directory not found")

    # ------------------------------------------------------------------
    # Pointers and paths
    # ------------------------------------------------------------------
    def snapshot_path(self, snapshot_id: int) -> Path:
        """The on-disk path of a snapshot id (``snap-NNNNNNNN.rvs``)."""
        return self.root / (_SNAP_PATTERN % snapshot_id)

    def current_id(self) -> int | None:
        """The published snapshot id, or None for an empty store."""
        path = self.root / "CURRENT"
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return int(data["snapshot_id"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ServingError(f"{path}: corrupted CURRENT pointer ({exc})") from exc

    def snapshot_ids(self) -> list[int]:
        """All snapshot ids present in the directory, ascending."""
        ids = []
        for path in self.root.glob("snap-*.rvs"):
            try:
                ids.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
        return sorted(ids)

    def _publish(self, snapshot_id: int, data: bytes) -> int:
        path = self.snapshot_path(snapshot_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        pointer = self.root / "CURRENT"
        tmp = pointer.with_name("CURRENT.tmp")
        tmp.write_text(
            json.dumps(
                {"snapshot_id": snapshot_id, "format_version": FORMAT_VERSION}
            )
            + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, pointer)
        return snapshot_id

    def _next_id(self) -> int:
        ids = self.snapshot_ids()
        return (ids[-1] + 1) if ids else 1

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write_full(
        self,
        pairs: PairRows,
        items: ItemRows,
        n_sources: int,
        method: str = "unknown",
        round_no: int | None = None,
        labels: Mapping[str, Sequence[str]] | None = None,
    ) -> int:
        """Publish a full snapshot; returns its id."""
        snapshot_id = self._next_id()
        copier_sources, copier_scores = copier_totals(pairs, n_sources)
        meta = {
            "snapshot_id": snapshot_id,
            "kind": "full",
            "base_id": None,
            "n_sources": int(n_sources),
            "method": method,
            "round": round_no,
            "created": time.time(),
            "n_pairs": len(pairs),
            "n_items": len(items),
        }
        if labels is not None:
            meta["labels"] = {k: list(v) for k, v in labels.items()}
        arrays = {
            **pairs.to_arrays(),
            **items.to_arrays(),
            "copier_sources": copier_sources,
            "copier_scores": copier_scores,
        }
        return self._publish(snapshot_id, encode_snapshot(meta, arrays))

    def write_delta(
        self,
        base_id: int,
        pair_upserts: PairRows,
        removed_pair_keys: np.ndarray,
        item_upserts: ItemRows,
        removed_item_ids: np.ndarray,
        merged_pairs: PairRows,
        n_sources: int,
        method: str = "unknown",
        round_no: int | None = None,
        labels: Mapping[str, Sequence[str]] | None = None,
    ) -> int:
        """Publish a delta over ``base_id``; returns the new snapshot id.

        ``merged_pairs`` is the post-delta pair state, used only to
        recompute the (always-complete) copier ranking.  ``labels``
        replaces the chain's display-label tables when given — a
        streaming publisher passes the full (grown) tables whenever new
        items or values were interned since the last snapshot, so
        readers never hold a value id with no label.
        """
        snapshot_id = self._next_id()
        copier_sources, copier_scores = copier_totals(merged_pairs, n_sources)
        meta = {
            "snapshot_id": snapshot_id,
            "kind": "delta",
            "base_id": int(base_id),
            "n_sources": int(n_sources),
            "method": method,
            "round": round_no,
            "created": time.time(),
            "n_pairs": len(pair_upserts),
            "n_items": len(item_upserts),
            "n_removed_pairs": int(len(removed_pair_keys)),
            "n_removed_items": int(len(removed_item_ids)),
        }
        if labels is not None:
            meta["labels"] = {k: list(v) for k, v in labels.items()}
        arrays = {
            **pair_upserts.to_arrays(),
            **item_upserts.to_arrays(),
            "removed_pair_keys": np.asarray(removed_pair_keys, dtype=np.int64),
            "removed_item_ids": np.asarray(removed_item_ids, dtype=np.int64),
            "copier_sources": copier_sources,
            "copier_scores": copier_scores,
        }
        return self._publish(snapshot_id, encode_snapshot(meta, arrays))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, snapshot_id: int) -> tuple[dict, dict]:
        """Decode one snapshot file (meta, arrays).

        Raises:
            ServingError: missing, truncated, corrupted or
                newer-versioned snapshot.
        """
        path = self.snapshot_path(snapshot_id)
        if not path.is_file():
            raise ServingError(f"{path}: snapshot {snapshot_id} not found")
        return read_snapshot_file(path)

    def load_chain(self, snapshot_id: int) -> list[tuple[dict, dict]]:
        """The snapshot plus its delta ancestry, base-full first.

        Raises:
            ServingError: on a missing base or a malformed chain.
        """
        chain: list[tuple[dict, dict]] = []
        current: int | None = snapshot_id
        seen: set[int] = set()
        while current is not None:
            if current in seen:
                raise ServingError(
                    f"snapshot {snapshot_id}: base chain contains a cycle "
                    f"at {current}"
                )
            seen.add(current)
            meta, arrays = self.load(current)
            chain.append((meta, arrays))
            if meta.get("kind") == "full":
                return list(reversed(chain))
            base = meta.get("base_id")
            if base is None:
                raise ServingError(
                    f"snapshot {current}: delta snapshot without a base_id"
                )
            current = int(base)
        raise ServingError(  # pragma: no cover - unreachable
            f"snapshot {snapshot_id}: broken base chain"
        )


class SnapshotPublisher:
    """Publishes one store snapshot per fusion round (full, then deltas).

    The publisher tracks the last-published state, so each round it can
    extract exactly what changed:

    * pair changes come from
      :meth:`~repro.core.result.DetectionResult.decision_delta` — the
      INCREMENTAL detector's :attr:`changed_pairs` (re-opened, rebuilt
      or accuracy-refreshed pairs, straight from the bookkeeping) when
      available, a field-exact diff otherwise;
    * item changes are truths whose chosen value flipped or whose
      probability moved by more than ``item_tolerance``.

    When the pair delta would touch more than ``full_rewrite_fraction``
    of the published rows, a fresh full snapshot is written instead —
    chains stay short and early (pre-convergence) rounds don't masquerade
    as deltas.
    """

    def __init__(
        self,
        store: VerdictStore | Path | str,
        dataset: "Dataset",
        include_labels: bool = True,
        item_tolerance: float = 1e-6,
        full_rewrite_fraction: float = 0.6,
    ):
        self.store = store if isinstance(store, VerdictStore) else VerdictStore(store)
        self.dataset = dataset
        self.include_labels = include_labels
        self.item_tolerance = item_tolerance
        self.full_rewrite_fraction = full_rewrite_fraction
        self.last_snapshot_id: int | None = None
        self.snapshot_ids: list[int] = []
        self._prev_detection: "DetectionResult | None" = None
        self._prev_pairs: PairRows = PairRows.empty()
        self._prev_items: ItemRows = ItemRows.empty()
        self._published_label_sizes: tuple[int, int, int] | None = None

    def _labels(self) -> dict[str, Sequence[str]] | None:
        if not self.include_labels:
            return None
        return {
            "sources": self.dataset.source_names,
            "items": self.dataset.item_names,
            "values": self.dataset.value_label,
        }

    def _label_sizes(self) -> tuple[int, int, int]:
        dataset = self.dataset
        return (dataset.n_sources, dataset.n_items, dataset.n_values)

    def _delta_labels(self) -> dict[str, Sequence[str]] | None:
        """Full label tables when they grew since the last publish.

        A streaming epoch can intern new items and values (new sources
        force a fresh publisher — pair keys are stride-dependent), so a
        delta must re-ship the label tables whenever their sizes moved;
        otherwise a reader resolving a freshly-interned value id against
        the stale tables would fall off the end.  Unchanged sizes ship no
        labels: interning is append-only, so same size means same tables.
        """
        if not self.include_labels:
            return None
        if self._published_label_sizes == self._label_sizes():
            return None
        return self._labels()

    def rebind(self, dataset: "Dataset") -> None:
        """Point the publisher at a grown snapshot of the same world.

        Streaming epochs hand the publisher a fresh immutable
        :class:`~repro.data.Dataset` each time the claim ledger moves.
        Growth in items or values is fine (interning is append-only and
        ids are stable; the next delta re-ships the label tables via
        :meth:`_delta_labels`) — but a changed *source count* is not,
        because stored pair keys are ``s1 * n_sources + s2``: every key
        in the published chain would decode differently under the new
        stride.  Callers must create a fresh publisher (which starts
        with a full snapshot) when sources appear.

        Raises:
            ValueError: when ``dataset.n_sources`` differs from the
                bound dataset's.
        """
        if dataset.n_sources != self.dataset.n_sources:
            raise ValueError(
                "pair keys are stride-dependent: a publisher cannot be "
                f"rebound across a source-count change "
                f"({self.dataset.n_sources} -> {dataset.n_sources}); "
                "create a fresh SnapshotPublisher instead"
            )
        self.dataset = dataset

    def publish_round(
        self,
        round_no: int,
        detection: "DetectionResult | None",
        probabilities: Sequence[float],
        decision_positions: Mapping[tuple[int, int], int] | None = None,
    ) -> int:
        """Publish this round's verdicts + truths; returns the snapshot id."""
        from ..fusion.accu import choose_values

        dataset = self.dataset
        n_sources = dataset.n_sources
        method = detection.method if detection is not None else "none"
        chosen = choose_values(dataset, probabilities)
        items = ItemRows.from_truths(dataset, chosen, probabilities)
        decisions = detection.decisions if detection is not None else {}

        if self.last_snapshot_id is None:
            pairs = PairRows.from_decisions(
                decisions, n_sources, decision_positions
            )
            snapshot_id = self.store.write_full(
                pairs,
                items,
                n_sources,
                method=method,
                round_no=round_no,
                labels=self._labels(),
            )
            self._prev_pairs = pairs
        else:
            snapshot_id = self._publish_update(
                round_no, detection, items, decision_positions, method
            )
        self.last_snapshot_id = snapshot_id
        self.snapshot_ids.append(snapshot_id)
        self._prev_detection = detection
        self._prev_items = items
        if self.include_labels:
            self._published_label_sizes = self._label_sizes()
        return snapshot_id

    def _publish_update(
        self,
        round_no: int,
        detection: "DetectionResult | None",
        items: ItemRows,
        decision_positions: Mapping[tuple[int, int], int] | None,
        method: str,
    ) -> int:
        n_sources = self.dataset.n_sources
        if detection is not None:
            delta = detection.decision_delta(self._prev_detection)
            changed, removed = delta.changed, delta.removed
        else:
            changed, removed = {}, frozenset()

        pair_upserts = PairRows.from_decisions(
            changed, n_sources, decision_positions
        )
        removed_keys = np.fromiter(
            (s1 * n_sources + s2 for s1, s2 in sorted(removed)),
            dtype=np.int64,
            count=len(removed),
        )
        merged_pairs = merge_pair_rows(self._prev_pairs, pair_upserts, removed_keys)

        item_upserts, removed_item_ids = self._item_delta(items)

        n_published = max(len(self._prev_pairs), 1)
        touched = len(pair_upserts) + len(removed_keys)
        if touched > self.full_rewrite_fraction * n_published:
            snapshot_id = self.store.write_full(
                merged_pairs,
                items,
                n_sources,
                method=method,
                round_no=round_no,
                labels=self._labels(),
            )
        else:
            snapshot_id = self.store.write_delta(
                self.last_snapshot_id,
                pair_upserts,
                removed_keys,
                item_upserts,
                removed_item_ids,
                merged_pairs,
                n_sources,
                method=method,
                round_no=round_no,
                labels=self._delta_labels(),
            )
        self._prev_pairs = merged_pairs
        return snapshot_id

    def _item_delta(self, items: ItemRows) -> tuple[ItemRows, np.ndarray]:
        """Items whose truth or probability materially moved since last publish."""
        prev = self._prev_items
        if not len(prev):
            return items, np.empty(0, dtype=np.int64)
        pos = np.searchsorted(prev.ids, items.ids)
        pos_clipped = np.minimum(pos, max(len(prev) - 1, 0))
        known = prev.ids[pos_clipped] == items.ids
        same_truth = np.zeros(len(items), dtype=bool)
        same_truth[known] = prev.truth[pos_clipped[known]] == items.truth[known]
        close_prob = np.zeros(len(items), dtype=bool)
        close_prob[known] = (
            np.abs(prev.probability[pos_clipped[known]] - items.probability[known])
            <= self.item_tolerance
        )
        changed_rows = np.nonzero(~(known & same_truth & close_prob))[0]
        removed_ids = prev.ids[~np.isin(prev.ids, items.ids)]
        return items.take(changed_rows), removed_ids

    @property
    def prev_pairs(self) -> PairRows:
        """The pair state as currently published (post-merge)."""
        return self._prev_pairs
