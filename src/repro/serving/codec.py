"""Binary codec for verdict-store snapshot files.

One snapshot is one immutable file::

    magic "RVSS" | u32 format version | u32 header length
    | header JSON (utf-8) | zero padding to 8-byte alignment
    | raw little-endian array payload

The header carries the snapshot metadata (id, kind, base id, counts,
optional display labels) plus one descriptor per payload array —
``(name, dtype, offset, count)`` with offsets relative to the payload
start — and a CRC-32 of the whole payload.  Decoding reconstructs
read-only NumPy views over the payload bytes, so opening a snapshot
costs one file read and no per-row work.

Every way a file can be bad — short reads, foreign bytes, a mangled
header, a payload that fails its checksum, or a snapshot written by a
*newer* format than this library understands — surfaces as
:class:`ServingError` with a message naming the file and the problem.
Callers never see a raw ``struct``/``json``/NumPy traceback; the
robustness tests in ``tests/test_serving.py`` pin this down.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Mapping

import numpy as np

#: File magic: Repro Verdict Snapshot Store.
MAGIC = b"RVSS"

#: Highest snapshot format this build can read and the one it writes.
#: Bump on any incompatible schema change; older readers refuse newer
#: files with a clear :class:`ServingError` instead of misreading them.
FORMAT_VERSION = 1

_PREAMBLE = struct.Struct("<4sII")


class ServingError(Exception):
    """A verdict-store operation failed (corrupt file, bad version, ...).

    The single error type of :mod:`repro.serving`: everything the store,
    codec or reader can reject — truncated or corrupted snapshot files,
    snapshots written by a newer format version, a missing ``CURRENT``
    pointer, a broken base-snapshot chain — raises this, so callers
    catch one exception instead of the codec's internals.
    """


def _align8(n: int) -> int:
    return (n + 7) & ~7


def encode_snapshot(meta: Mapping, arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a snapshot (metadata + named arrays) into one buffer.

    Args:
        meta: JSON-serializable snapshot metadata (stored verbatim under
            the header's ``"meta"`` key).
        arrays: named 1-D arrays; each is stored contiguously in its own
            dtype with an 8-byte-aligned offset.
    """
    descriptors = []
    chunks = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _align8(offset)
        descriptors.append((name, arr.dtype.str, offset, int(arr.size)))
        chunks.append((offset, arr.tobytes()))
        offset += arr.nbytes
    payload = bytearray(_align8(offset))
    for start, data in chunks:
        payload[start : start + len(data)] = data
    header = json.dumps(
        {
            "meta": dict(meta),
            "arrays": descriptors,
            "payload_crc32": zlib.crc32(bytes(payload)) & 0xFFFFFFFF,
            "payload_length": len(payload),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    preamble = _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header))
    pad = b"\0" * (_align8(_PREAMBLE.size + len(header)) - _PREAMBLE.size - len(header))
    return preamble + header + pad + bytes(payload)


def decode_snapshot(data: bytes, source: str = "<bytes>") -> tuple[dict, dict]:
    """Decode one snapshot buffer into ``(meta, arrays)``.

    Args:
        data: the file's bytes.
        source: label (usually the path) for error messages.

    Returns:
        The ``meta`` dict and a name -> read-only ndarray mapping.

    Raises:
        ServingError: for anything short of a well-formed snapshot this
            build can read — truncation, corruption, wrong magic, or a
            newer format version.
    """
    if len(data) < _PREAMBLE.size:
        raise ServingError(
            f"{source}: truncated snapshot ({len(data)} bytes is shorter "
            f"than the {_PREAMBLE.size}-byte preamble)"
        )
    magic, version, header_len = _PREAMBLE.unpack_from(data)
    if magic != MAGIC:
        raise ServingError(
            f"{source}: not a verdict snapshot (bad magic {magic!r})"
        )
    if version > FORMAT_VERSION:
        raise ServingError(
            f"{source}: snapshot format version {version} is newer than "
            f"this build supports (max {FORMAT_VERSION}); upgrade the "
            f"library to read it"
        )
    header_end = _PREAMBLE.size + header_len
    if header_end > len(data):
        raise ServingError(
            f"{source}: truncated snapshot (header claims {header_len} "
            f"bytes but only {len(data) - _PREAMBLE.size} follow)"
        )
    try:
        header = json.loads(data[_PREAMBLE.size : header_end].decode("utf-8"))
        meta = header["meta"]
        descriptors = header["arrays"]
        crc_expected = header["payload_crc32"]
        payload_length = header["payload_length"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ServingError(f"{source}: corrupted snapshot header ({exc})") from exc
    payload_start = _align8(header_end)
    payload = data[payload_start:]
    if len(payload) < payload_length:
        raise ServingError(
            f"{source}: truncated snapshot payload ({len(payload)} of "
            f"{payload_length} bytes present)"
        )
    payload = payload[:payload_length]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc_expected:
        raise ServingError(f"{source}: snapshot payload fails its checksum")
    arrays: dict[str, np.ndarray] = {}
    try:
        for name, dtype, offset, count in descriptors:
            arr = np.frombuffer(payload, dtype=np.dtype(dtype), count=count, offset=offset)
            arr.flags.writeable = False
            arrays[name] = arr
    except (ValueError, TypeError) as exc:
        raise ServingError(
            f"{source}: corrupted snapshot array table ({exc})"
        ) from exc
    return meta, arrays


def read_snapshot_file(path: Path | str) -> tuple[dict, dict]:
    """Read and decode one snapshot file.

    Raises:
        ServingError: when the file is missing, unreadable, or fails to
            decode.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise ServingError(f"{path}: cannot read snapshot ({exc})") from exc
    return decode_snapshot(data, source=str(path))
