"""Verdict-serving layer: persisted snapshots + read-heavy query API.

The detection/fusion pipeline *produces* verdicts; this package serves
them.  Three pieces:

* :mod:`~repro.serving.codec` — the versioned binary snapshot format
  (CRC-checked, refuses newer versions with :class:`ServingError`);
* :mod:`~repro.serving.store` — :class:`VerdictStore` (a directory of
  immutable snapshots + atomic ``CURRENT`` pointer, full or delta) and
  :class:`SnapshotPublisher` (one snapshot per fusion round, deltas
  sized by the INCREMENTAL bookkeeping's changed pairs);
* :mod:`~repro.serving.reader` — :class:`VerdictReader`, the LRU-cached
  ``get_verdict`` / ``get_truth`` / ``top_copiers`` API that stays
  consistent under concurrent refresh.

Wire-in points: ``run_fusion(..., snapshot_store=...)`` publishes per
round; the CLI round-trips via ``repro serve-snapshot`` and
``repro query``.
"""

from .codec import (
    FORMAT_VERSION,
    MAGIC,
    ServingError,
    decode_snapshot,
    encode_snapshot,
    read_snapshot_file,
)
from .reader import TopCopier, Truth, Verdict, VerdictReader
from .store import (
    FLAG_COPYING,
    FLAG_EARLY,
    ItemRows,
    PairRows,
    SnapshotPublisher,
    VerdictStore,
    copier_totals,
    merge_item_rows,
    merge_pair_rows,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "ServingError",
    "decode_snapshot",
    "encode_snapshot",
    "read_snapshot_file",
    "Verdict",
    "Truth",
    "TopCopier",
    "VerdictReader",
    "VerdictStore",
    "SnapshotPublisher",
    "PairRows",
    "ItemRows",
    "FLAG_COPYING",
    "FLAG_EARLY",
    "copier_totals",
    "merge_pair_rows",
    "merge_item_rows",
]
