"""Item-sampling strategies: BYITEM, BYCELL, and the paper's SCALESAMPLE."""

from .strategies import (
    sample_by_cell,
    sample_by_item,
    sampled_cell_fraction,
    scale_sample,
)

__all__ = [
    "sample_by_cell",
    "sample_by_item",
    "sampled_cell_fraction",
    "scale_sample",
]
