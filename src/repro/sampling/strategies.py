"""Sampling strategies for copy detection (Sections VI-A and VI-E).

The paper compares three ways of shrinking a dataset before detection:

* **BYITEM** (SAMPLE1) — sample a fraction of the data items uniformly.
* **BYCELL** (SAMPLE2) — sample items until a target fraction of the
  non-empty *cells* (claims) of the source x item matrix is reached;
  since item popularity is skewed, matching a cell budget needs a
  different number of items than matching an item budget.
* **SCALESAMPLE** — the paper's strategy: sample a fraction of items *but
  guarantee at least N items from every source* (default N = 4).  On
  low-coverage data (Book-CS: 85% of sources cover <= 1% of items) naive
  sampling leaves most sources with zero or one sampled item, destroying
  the evidence copy detection needs; the per-source floor repairs exactly
  that failure mode (Table IX).

All strategies return the sampled item ids so callers can project the
dataset (:meth:`repro.data.Dataset.project_items` keeps source ids
aligned, which the quality comparisons rely on).
"""

from __future__ import annotations

import random

from ..data import Dataset


def sample_by_item(
    dataset: Dataset, fraction: float, rng: random.Random
) -> list[int]:
    """BYITEM / SAMPLE1: uniform sample of ``fraction`` of the items."""
    _check_fraction(fraction)
    item_ids = _claimed_items(dataset)
    k = max(int(round(fraction * len(item_ids))), 1)
    return sorted(rng.sample(item_ids, min(k, len(item_ids))))


def sample_by_cell(
    dataset: Dataset, cell_fraction: float, rng: random.Random
) -> list[int]:
    """BYCELL / SAMPLE2: add random items until the cell budget is met.

    Items are drawn uniformly without replacement and accumulated until
    the number of claims (non-empty cells) covered reaches
    ``cell_fraction`` of the dataset's total claims.
    """
    _check_fraction(cell_fraction)
    cells_per_item = [0] * dataset.n_items
    total_cells = 0
    for claim in dataset.claims:
        for item_id in claim:
            cells_per_item[item_id] += 1
            total_cells += 1
    budget = cell_fraction * total_cells
    item_ids = _claimed_items(dataset)
    rng.shuffle(item_ids)
    chosen: list[int] = []
    covered = 0
    for item_id in item_ids:
        if covered >= budget:
            break
        chosen.append(item_id)
        covered += cells_per_item[item_id]
    return sorted(chosen)


def scale_sample(
    dataset: Dataset,
    fraction: float,
    rng: random.Random,
    min_items_per_source: int = 4,
) -> list[int]:
    """SCALESAMPLE: item sample with a per-source floor (the paper's N=4).

    First draws a uniform ``fraction`` item sample, then tops it up so
    every source retains at least ``min_items_per_source`` of its items
    (or all of them, for sources smaller than the floor).  On skewed data
    the top-up can raise the effective sampling rate well above
    ``fraction`` — the paper reports 49% of items for Book-CS at a nominal
    10% — which is precisely why it preserves detection quality.

    Returns the sampled item ids.
    """
    _check_fraction(fraction)
    if min_items_per_source < 0:
        raise ValueError("min_items_per_source must be >= 0")
    chosen = set(sample_by_item(dataset, fraction, rng))
    for claim in dataset.claims:
        if not claim:
            continue
        have = sum(1 for item_id in claim if item_id in chosen)
        needed = min(min_items_per_source, len(claim)) - have
        if needed <= 0:
            continue
        missing = [item_id for item_id in claim if item_id not in chosen]
        rng.shuffle(missing)
        chosen.update(missing[:needed])
    return sorted(chosen)


def sampled_cell_fraction(dataset: Dataset, item_ids: list[int]) -> float:
    """Fraction of the dataset's claims covered by the sampled items.

    Used to give BYCELL the same cell budget as a SCALESAMPLE draw, the
    paper's fairness protocol in Table IX.
    """
    keep = set(item_ids)
    total = 0
    covered = 0
    for claim in dataset.claims:
        for item_id in claim:
            total += 1
            if item_id in keep:
                covered += 1
    return covered / total if total else 0.0


def _claimed_items(dataset: Dataset) -> list[int]:
    claimed = {item_id for claim in dataset.claims for item_id in claim}
    return sorted(claimed)


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
