"""Core copy-detection algorithms: the paper's primary contribution."""

from .bound import (
    DEFAULT_HYBRID_THRESHOLD,
    BoundEval,
    PairBookkeeping,
    PrefixScanState,
    ScanOutcome,
    detect_bound,
    detect_bound_plus,
    detect_hybrid,
    scan_with_bounds,
)
from .contribution import (
    CopyPosterior,
    different_value_score,
    no_copy_probability,
    posterior,
    pr_independent,
    pr_single,
    same_value_score,
    same_value_scores_both,
)
from .detector import (
    METHODS,
    PARALLEL_METHODS,
    IncrementalDetector,
    SingleRoundDetector,
    detect,
)
from .explain import EvidenceItem, PairExplanation, explain_pair
from .incremental import (
    IncrementalState,
    RoundStats,
    incremental_round,
    prepare_incremental,
)
from .index import EntryOrdering, IndexEntry, InvertedIndex
from .index_algo import detect_index
from .maxscore import max_score, max_score_bruteforce
from .pairwise import detect_pairwise
from .params import (
    BACKENDS,
    EXECUTORS,
    PAIR_LAYOUTS,
    PARTITION_AXES,
    REDUCE_MODES,
    CopyParams,
)
from .popularity import (
    detect_pairwise_popular,
    estimate_relative_popularity,
    pr_independent_popular,
    pr_single_popular,
    same_value_scores_popular,
)
from .result import (
    CostCounter,
    DecisionDelta,
    DetectionResult,
    PairDecision,
    PairNotObservedError,
)

#: Names re-exported lazily from .kernel: importing repro.core must not
#: require NumPy (only the opt-in ``backend="numpy"`` paths do).
_KERNEL_EXPORTS = frozenset(
    {
        "ColumnarEntries",
        "PairTable",
        "entry_triangle_scores",
        "scan_columnar",
    }
)


def __getattr__(name: str):
    if name in _KERNEL_EXPORTS:
        from . import kernel

        return getattr(kernel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BACKENDS",
    "EXECUTORS",
    "BoundEval",
    "ColumnarEntries",
    "CopyParams",
    "CopyPosterior",
    "CostCounter",
    "DEFAULT_HYBRID_THRESHOLD",
    "DecisionDelta",
    "DetectionResult",
    "EntryOrdering",
    "EvidenceItem",
    "IncrementalDetector",
    "IncrementalState",
    "IndexEntry",
    "InvertedIndex",
    "METHODS",
    "PAIR_LAYOUTS",
    "PARALLEL_METHODS",
    "PairBookkeeping",
    "PairDecision",
    "PairNotObservedError",
    "PairTable",
    "PairExplanation",
    "PARTITION_AXES",
    "PrefixScanState",
    "REDUCE_MODES",
    "RoundStats",
    "ScanOutcome",
    "SingleRoundDetector",
    "detect",
    "detect_bound",
    "detect_bound_plus",
    "detect_hybrid",
    "detect_index",
    "detect_pairwise",
    "detect_pairwise_popular",
    "different_value_score",
    "entry_triangle_scores",
    "explain_pair",
    "estimate_relative_popularity",
    "incremental_round",
    "max_score",
    "max_score_bruteforce",
    "no_copy_probability",
    "posterior",
    "pr_independent",
    "pr_independent_popular",
    "pr_single",
    "pr_single_popular",
    "prepare_incremental",
    "same_value_score",
    "same_value_scores_both",
    "same_value_scores_popular",
    "scan_columnar",
    "scan_with_bounds",
]
