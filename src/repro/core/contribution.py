"""Per-item contribution scores and the copying posterior (Eqs. 2-8).

All copy detectors accumulate, for an ordered pair of sources
``(S1, S2)``, the log-likelihood-ratio scores

    C-> = sum_D ln Pr(Phi_D | S1 -> S2) / Pr(Phi_D | S1 _|_ S2)
    C<- = sum_D ln Pr(Phi_D | S1 <- S2) / Pr(Phi_D | S1 _|_ S2)

over the data items ``D`` the two sources share.  A shared item where both
provide the same value contributes a positive score that grows as the
value's truth probability shrinks (sharing a false value is strong
evidence of copying); a shared item with different values contributes the
constant ``ln(1-s) < 0``.

This module is the single home of those formulas; every algorithm
(PAIRWISE, INDEX, BOUND, INCREMENTAL, the fusion loop) calls into it so
that a change to the probabilistic model stays in one place.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from .params import CopyParams


def pr_independent(p_true: float, acc1: float, acc2: float, n: int) -> float:
    """Eq. (3): probability two independent sources provide the same value.

    ``P(D.v) * A(S1) * A(S2)`` covers the case the shared value is true;
    ``(1 - P(D.v)) * (1-A(S1)) * (1-A(S2)) / n`` the case it is one of the
    ``n`` uniformly-distributed false values.
    """
    return p_true * acc1 * acc2 + (1.0 - p_true) * (1.0 - acc1) * (1.0 - acc2) / n


def pr_single(p_true: float, acc: float) -> float:
    """Eq. (4): probability of observing a source's value on an item.

    ``Pr(Phi_D(S))`` — the source provides the observed value either as a
    truth (probability ``A(S)``) or as a falsehood (``1 - A(S)``), weighted
    by the value's truth probability.
    """
    return p_true * acc + (1.0 - p_true) * (1.0 - acc)


def same_value_score(
    p_true: float,
    acc_copier: float,
    acc_original: float,
    params: CopyParams,
) -> float:
    """Eq. (6): contribution of a shared value to ``C(copier -> original)``.

    ``C->(D) = ln(1 - s + s * Pr(Phi_D(S2)) / Pr(Phi_D | S1 _|_ S2))``
    where ``S1`` is the hypothesised copier and ``S2`` the hypothesised
    original.  The score is always ``>= 0`` and grows as ``p_true``
    shrinks: sharing an improbable value is strong evidence of copying.

    Args:
        p_true: ``P(D.v)`` — probability the shared value is true.
        acc_copier: accuracy of the hypothesised copier ``S1``.
        acc_original: accuracy of the hypothesised original ``S2``.
        params: model parameters.
    """
    a1 = params.clamp_accuracy(acc_copier)
    a2 = params.clamp_accuracy(acc_original)
    denominator = pr_independent(p_true, a1, a2, params.n)
    ratio = pr_single(p_true, a2) / denominator
    return math.log(1.0 - params.s + params.s * ratio)


def same_value_scores_both(
    p_true: float,
    acc1: float,
    acc2: float,
    params: CopyParams,
) -> tuple[float, float]:
    """Both directed contributions for a shared value, sharing the Eq. (3) term.

    Returns ``(C->(D), C<-(D))`` for the pair ``(S1, S2)`` with accuracies
    ``(acc1, acc2)``.  Slightly cheaper than two :func:`same_value_score`
    calls because the independent-observation denominator is common.
    """
    a1 = params.clamp_accuracy(acc1)
    a2 = params.clamp_accuracy(acc2)
    denominator = pr_independent(p_true, a1, a2, params.n)
    fwd = math.log(1.0 - params.s + params.s * pr_single(p_true, a2) / denominator)
    bwd = math.log(1.0 - params.s + params.s * pr_single(p_true, a1) / denominator)
    return fwd, bwd


def different_value_score(params: CopyParams) -> float:
    """Eq. (8): contribution of a shared item with differing values."""
    return params.ln_one_minus_s


class CopyPosterior(NamedTuple):
    """Posterior over the three hypotheses for a source pair (Eq. 1-2)."""

    independent: float  #: Pr(S1 _|_ S2 | Phi)
    forward: float  #: Pr(S1 -> S2 | Phi): S1 copies from S2
    backward: float  #: Pr(S1 <- S2 | Phi): S2 copies from S1

    @property
    def copying(self) -> bool:
        """The paper's binary decision: copying iff ``Pr(_|_) <= 0.5``."""
        return self.independent <= 0.5


def posterior(c_fwd: float, c_bwd: float, params: CopyParams) -> CopyPosterior:
    """Eq. (2) evaluated stably from the accumulated scores.

    ``Pr(_|_ | Phi) = 1 / (1 + (alpha/beta) (e^{C->} + e^{C<-}))``.  The
    exponentials can overflow for strongly-copying pairs (hundreds of
    shared false values), so the three-way posterior is computed in log
    space with the usual max-shift trick.
    """
    log_terms = (
        math.log(params.beta),
        math.log(params.alpha) + c_fwd,
        math.log(params.alpha) + c_bwd,
    )
    shift = max(log_terms)
    exps = [math.exp(t - shift) for t in log_terms]
    total = sum(exps)
    return CopyPosterior(
        independent=exps[0] / total,
        forward=exps[1] / total,
        backward=exps[2] / total,
    )


def no_copy_probability(c_fwd: float, c_bwd: float, params: CopyParams) -> float:
    """Convenience wrapper returning only ``Pr(S1 _|_ S2 | Phi)``."""
    return posterior(c_fwd, c_bwd, params).independent
