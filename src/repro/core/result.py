"""Detection results and the cost instrumentation shared by all detectors.

The paper measures efficiency in two ways: wall-clock time and the *number
of computations* (illustrated in Examples 3.6, 4.2 and 5.4).  We follow
the paper's accounting, implemented uniformly in :class:`CostCounter`:

* +1 per directional per-pair score update (a shared value touches a pair
  twice — once for ``C->`` and once for ``C<-``);
* +1 per lower-bound (``C^min``) evaluation and +1 per upper-bound
  (``C^max``) evaluation of a pair at an entry;
* +2 per considered pair for the final different-value adjustment
  (``ln(1-s) * (l - n)`` applied to both directions).

Under this convention PAIRWISE performs ``2 * (shared items over pairs)``
computations and INDEX performs ``2 * (shared-value incidences) +
2 * (pairs considered)``, matching the worked numbers in Example 3.6
(366 vs 154 on the motivating example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .contribution import CopyPosterior


class PairNotObservedError(LookupError):
    """A queried pair was never opened by the detection run.

    Pairs can be absent from ``DetectionResult.decisions`` by design —
    they share no value outside the index tail (or no item at all), or a
    sparse ``pair_layout`` never allocated them a slot.  Code that needs
    a verdict for such a pair must not surface a raw ``KeyError`` /
    ``IndexError`` from dict or slot decode; it raises this instead,
    naming the pair.  Subclasses :class:`LookupError`, so existing
    ``except KeyError``-adjacent handling still has a sane hook.
    """

    def __init__(self, s1: int, s2: int, method: str | None = None):
        origin = f" by the {method} run" if method else ""
        super().__init__(
            f"pair ({s1}, {s2}) was never observed{origin}: the sources "
            f"share no scored value, so no verdict was computed (the pair "
            f"is independent by construction)"
        )
        self.pair = (s1, s2) if s1 < s2 else (s2, s1)


@dataclass
class CostCounter:
    """Mutable cost tally threaded through a detector run."""

    computations: int = 0
    values_examined: int = 0
    pairs_considered: int = 0

    def score_update(self, n: int = 2) -> None:
        """Record directional score updates (default: both directions)."""
        self.computations += n

    def bound_evaluation(self, n: int = 1) -> None:
        """Record bound (min/max) evaluations."""
        self.computations += n

    def value_incidence(self) -> None:
        """Record one (pair, shared value) incidence examined."""
        self.values_examined += 1


@dataclass(frozen=True)
class PairDecision:
    """Final verdict for one source pair ``(s1, s2)`` with ``s1 < s2``.

    Attributes:
        c_fwd: accumulated ``C(s1 -> s2)`` (may be a bound if ``early``).
        c_bwd: accumulated ``C(s1 <- s2)``.
        posterior: three-way posterior derived from the scores.
        copying: the binary decision (``Pr(independent) <= 0.5``).
        early: True when the verdict came from a Section IV bound rather
            than an exhaustive accumulation.
    """

    c_fwd: float
    c_bwd: float
    posterior: CopyPosterior
    copying: bool
    early: bool = False


@dataclass(frozen=True)
class DecisionDelta:
    """What changed between two detection rounds, for delta publishing.

    Attributes:
        changed: pairs whose verdict/scores differ from the previous
            round (including newly opened pairs), with their new decision.
        removed: pairs present previously but absent now.
    """

    changed: dict[tuple[int, int], "PairDecision"]
    removed: frozenset[tuple[int, int]]

    def __bool__(self) -> bool:
        return bool(self.changed) or bool(self.removed)


@dataclass
class DetectionResult:
    """Outcome of one copy-detection pass over a dataset.

    Pairs absent from ``decisions`` were never opened — they share no
    value outside the index tail (or no item at all) and are independent.

    Attributes:
        method: name of the algorithm that produced the result.
        n_sources: number of sources in the dataset.
        decisions: per-pair verdicts keyed by sorted source-id pairs.
        cost: the computation/incidence tally.
        elapsed_seconds: wall-clock detection time (filled by callers that
            time the run; 0.0 otherwise).
        changed_pairs: when the producer knows which pairs it actually
            re-resolved this round (INCREMENTAL's pass-2/pass-3 pairs,
            straight from the bookkeeping), the set of their keys; None
            means "unknown — assume anything may have changed".  Pairs
            re-confirmed by pass 1 are deliberately *excluded*: their
            verdict stands and their pass-1 scores are pessimistic
            estimates, so downstream consumers (the serving layer's delta
            publisher) keep the previous exact scores instead.
    """

    method: str
    n_sources: int
    decisions: dict[tuple[int, int], PairDecision] = field(default_factory=dict)
    cost: CostCounter = field(default_factory=CostCounter)
    elapsed_seconds: float = 0.0
    changed_pairs: set[tuple[int, int]] | None = None

    def decision_delta(self, previous: "DetectionResult | None") -> DecisionDelta:
        """The decision changes since ``previous``.

        With no ``previous`` everything counts as changed.  When this
        result carries :attr:`changed_pairs` the delta comes straight
        from it (plus any key the set missed but a dict comparison
        catches — belt and braces for hand-built results); otherwise it
        falls back to a field-exact comparison of the two decision
        dicts (:class:`PairDecision` is a frozen dataclass, so ``!=``
        compares scores and posteriors exactly).
        """
        if previous is None:
            return DecisionDelta(changed=dict(self.decisions), removed=frozenset())
        prev = previous.decisions
        if self.changed_pairs is not None:
            changed = {
                key: self.decisions[key]
                for key in self.changed_pairs
                if key in self.decisions
            }
            # Newly opened pairs the producer forgot to record.
            for key, decision in self.decisions.items():
                if key not in prev and key not in changed:
                    changed[key] = decision
        else:
            changed = {
                key: decision
                for key, decision in self.decisions.items()
                if prev.get(key) != decision
            }
        removed = frozenset(key for key in prev if key not in self.decisions)
        return DecisionDelta(changed=changed, removed=removed)

    def copying_pairs(self) -> set[tuple[int, int]]:
        """The set of pairs judged to be copying (either direction)."""
        return {pair for pair, d in self.decisions.items() if d.copying}

    def decision_for(self, s1: int, s2: int) -> PairDecision | None:
        """Verdict for a pair given in any order (``None`` if never opened)."""
        key = (s1, s2) if s1 < s2 else (s2, s1)
        return self.decisions.get(key)

    def copy_probability(self, copier: int, original: int) -> float:
        """Directed posterior ``Pr(copier -> original | Phi)``.

        Used by ACCUCOPY's vote discounting.  Unopened pairs are
        independent, so the probability is 0.
        """
        if copier == original:
            raise ValueError("a source cannot copy from itself")
        key = (copier, original) if copier < original else (original, copier)
        decision = self.decisions.get(key)
        if decision is None:
            return 0.0
        if copier < original:
            return decision.posterior.forward
        return decision.posterior.backward
