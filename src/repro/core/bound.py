"""BOUND, BOUND+ and HYBRID — early-terminating detection (Section IV).

As the index is scanned, each opened pair carries running lower and upper
bounds on its final scores:

* lower bound (Eq. 9): assume every not-yet-seen shared item disagrees —
  ``C^min = C0 + (l - n0) ln(1-s)``;
* upper bound (Eq. 10): estimate how many already-scanned items the pair
  disagrees on (``h``, from the per-source scan counts) and assume every
  unseen shared item contributes the best possible remaining score ``M`` —
  ``C^max = C0 + (h - n0) ln(1-s) + (l - h) M``.

A pair concludes *copying* as soon as either direction's ``C^min`` reaches
``theta_cp = ln(beta/alpha)`` and *no-copying* as soon as both directions'
``C^max`` drop below ``theta_ind = ln(beta/2 alpha)``.

BOUND evaluates both bounds at every shared entry; that overhead can
exceed the savings (Fig. 2 shows BOUND losing to INDEX on three of four
datasets).  BOUND+ (Section IV-B) schedules re-evaluations only when a
conclusion has become arithmetically possible (the ``T^min`` / ``T^max``
timers).  HYBRID applies plain INDEX accumulation to pairs sharing at most
``hybrid_threshold`` (paper: 16) items — for those, bound upkeep can never
pay for itself — and BOUND+ to the rest.

The scanner optionally records the per-pair bookkeeping INCREMENTAL needs
(decision point, shared-value counts before/after it, exact base scores);
see :class:`PairBookkeeping`.

Backends.  The loop in this module is the bit-exactness reference
(``CopyParams(backend="python")``, the default); with
``backend="numpy"`` the scan is delegated to the epoch-batched
implementation in :mod:`repro.core.bound_kernel`.  That backend processes
the entry stream in fixed-size *epochs*: per-epoch score contributions
are computed columnarly (with the reference's exact arithmetic — see
:func:`repro.core.kernel.score_incidence_args`), the per-pair
``(n0, C0_fwd, C0_bwd)`` state and BOUND+ timer milestones live in flat
arrays keyed by ``s1 * n_sources + s2`` and are bulk-updated with
order-preserving scatter-adds, and ``C^min`` / ``C^max`` are screened for
all still-active pairs at epoch boundaries.  The few pairs whose timers
fire or that approach a threshold inside an epoch are *replayed* through
the exact per-incidence logic, so a concluding pair's recorded decision
position is the first entry that crosses the threshold — decisions,
decision positions, :class:`~repro.core.result.CostCounter` tallies and
:class:`PairBookkeeping` (stored scores included) are bit-identical to
this reference.  Worlds whose ``n_sources ** 2`` exceeds
:data:`repro.core.bound_kernel.DENSE_STATE_LIMIT` fall back to this loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from math import log
from typing import NamedTuple, Sequence

from ..data import Dataset
from .contribution import posterior
from .index import EntryOrdering, InvertedIndex
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision

_ACTIVE = 0
_DONE_COPY = 1
_DONE_NOCOPY = 2


class _PairState:
    """Mutable per-pair scan state."""

    __slots__ = (
        "n0",
        "c0_fwd",
        "c0_bwd",
        "status",
        "min_check_at",
        "max_check_n1",
        "max_check_n2",
        "decision_pos",
        "n_before",
        "n_after",
        "decision",
    )

    def __init__(self) -> None:
        self.n0 = 0
        self.c0_fwd = 0.0
        self.c0_bwd = 0.0
        self.status = _ACTIVE
        # BOUND+ timers: next n0 / n(S) milestones at which bounds are
        # re-evaluated.  0 means "evaluate immediately".
        self.min_check_at = 0
        self.max_check_n1 = 0
        self.max_check_n2 = 0
        # Bookkeeping for INCREMENTAL.
        self.decision_pos = -1
        self.n_before = 0
        self.n_after = 0
        self.decision: PairDecision | None = None


@dataclass(frozen=True)
class PairBookkeeping:
    """What INCREMENTAL remembers about a pair between rounds (Section V).

    Attributes:
        copying: the recorded decision.
        early: whether it was an early (bound-based) conclusion.
        c_base_fwd: exact part of the stored score ``C-hat`` —
            contributions of shared entries before the decision point plus
            the full different-value penalty ``(l - n_total) ln(1-s)``.
            For pairs resolved at scan end this is the exact final score.
        c_base_bwd: same, opposite direction.
        decision_pos: index position where the verdict was reached
            (``len(entries)`` when resolved at scan end).
        n_before: shared values seen before the decision point.
        n_after: shared values occurring after the decision point.
        l: total shared items.
    """

    copying: bool
    early: bool
    c_base_fwd: float
    c_base_bwd: float
    decision_pos: int
    n_before: int
    n_after: int
    l: int  # noqa: E741 — the paper's l(S1,S2); renaming would orphan the golden fixtures' key


@dataclass
class ScanOutcome:
    """A detection result, the index scanned, and optional bookkeeping."""

    result: DetectionResult
    index: InvertedIndex
    bookkeeping: dict[tuple[int, int], PairBookkeeping] | None = None


@dataclass
class PrefixScanState:
    """Raw accumulators after a *partial* (prefix-only) bound scan.

    The parallel engine's strong-evidence-prefix partitioning scans the
    first block of the processing order with bounds (where the early
    conclusions happen) and hands everything still undecided to the
    map/reduce INDEX kernel; this is the hand-off payload.

    Attributes:
        active: per bound-mode pair still active at the cut,
            ``(c0_fwd, c0_bwd, n0)`` — contributions of its shared
            entries seen so far, no penalty applied.
        exact: same accumulators for HYBRID's low-overlap (INDEX-mode)
            pairs.
        done: early verdicts reached inside the prefix.
        incidences: shared-value incidences examined so far.
        score_updates: directional score updates performed so far.
        bound_evals: bound evaluations performed so far.
    """

    active: dict[tuple[int, int], tuple[float, float, int]]
    exact: dict[tuple[int, int], tuple[float, float, int]]
    done: dict[tuple[int, int], PairDecision]
    incidences: int
    score_updates: int
    bound_evals: int


class BoundEval(NamedTuple):
    """One bound evaluation, as recorded by ``scan_with_bounds(eval_log=...)``.

    The log is a debugging/testing aid of the pure-Python reference scan
    (requesting it forces ``backend="python"``): BOUND must show an
    evaluation at every shared incidence, BOUND+ only at the ``T^min`` /
    ``T^max`` timer milestones.

    Attributes:
        kind: ``"min"`` or ``"max"``.
        pair: the source pair being evaluated.
        position: index position of the triggering entry.
        n0: the pair's shared-value count after this entry.
        n1: scan count ``n(S1)`` at this entry.
        n2: scan count ``n(S2)`` at this entry.
        scheduled_min: ``min_check_at`` in effect when evaluating.
        scheduled_max1: ``max_check_n1`` in effect when evaluating.
        scheduled_max2: ``max_check_n2`` in effect when evaluating.
    """

    kind: str
    pair: tuple[int, int]
    position: int
    n0: int
    n1: int
    n2: int
    scheduled_min: int
    scheduled_max1: int
    scheduled_max2: int


def scan_with_bounds(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex | None = None,
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
    use_timers: bool = True,
    hybrid_threshold: int = 0,
    track_bookkeeping: bool = False,
    method_name: str = "bound+",
    shared_items_hint=None,
    band: tuple[float, float] | None = None,
    epoch_size: int | None = None,
    stop_at: int | None = None,
    collect_state: bool = False,
    eval_log: list[BoundEval] | None = None,
) -> ScanOutcome | PrefixScanState:
    """Core scan shared by BOUND (``use_timers=False``), BOUND+ and HYBRID.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.  ``params.backend == "numpy"`` routes
            the scan through the epoch-batched implementation in
            :mod:`repro.core.bound_kernel` (bit-identical outcome).
        index: prebuilt index to reuse; built here if omitted.
        ordering: entry ordering when the index is built here (Fig. 3).
        use_timers: enable the BOUND+ lazy re-evaluation timers.
        hybrid_threshold: pairs sharing at most this many items use plain
            INDEX accumulation (0 disables hybrid behaviour).
        track_bookkeeping: record :class:`PairBookkeeping` per pair (the
            preparation step of INCREMENTAL).
        method_name: label stored on the result.
        band: Section IV-A's confidence band ``(p_low, p_high)``: early
            *copying* conclusions then guarantee ``Pr(indep) <= p_low``
            and early *no-copy* conclusions ``Pr(indep) > p_high`` (up to
            the Eq. 10 estimate); pairs in between resolve exactly at
            scan end.  ``None`` keeps the binary 0.5/0.5 thresholds.
        epoch_size: entries per epoch for the numpy backend (``None`` =
            :data:`repro.core.bound_kernel.DEFAULT_EPOCH_SIZE`); the
            sequential reference ignores it.
        stop_at: scan only positions ``< stop_at`` (the parallel engine's
            strong-evidence prefix); ``None`` scans everything.
        collect_state: return the raw :class:`PrefixScanState` at the cut
            instead of resolving remaining pairs (engine hand-off).
        eval_log: when a list is passed, every bound evaluation is
            appended as a :class:`BoundEval` (forces the Python
            reference path).

    Raises:
        ValueError: if the band is not ``0 < p_low <= p_high < 1``.
    """
    if index is None:
        index = InvertedIndex.build(
            dataset,
            probabilities,
            accuracies,
            params,
            ordering=ordering,
            shared_items=shared_items_hint,
        )
    cost = CostCounter()
    ln_diff = params.ln_one_minus_s
    if band is None:
        theta_cp = params.theta_cp
        theta_ind = params.theta_ind
    else:
        p_low, p_high = band
        if not 0.0 < p_low <= p_high < 1.0:
            raise ValueError(f"band must satisfy 0 < p_low <= p_high < 1, got {band}")
        theta_cp = params.theta_cp_at(p_low)
        theta_ind = params.theta_ind_at(p_high)
    if params.backend == "numpy" and eval_log is None:
        # Every world size runs vectorized: the epoch scan picks its
        # pair-state layout (dense flat arrays or sparse observed-pair
        # slots) from ``params.pair_layout`` — the former silent
        # fallback to this module's reference loop above
        # DENSE_STATE_LIMIT is retired.
        from .bound_kernel import scan_with_bounds_numpy

        outcome = scan_with_bounds_numpy(
            dataset,
            accuracies,
            params,
            index,
            theta_cp,
            theta_ind,
            use_timers,
            hybrid_threshold,
            track_bookkeeping,
            method_name,
            epoch_size=epoch_size,
            stop_at=stop_at,
            collect_state=collect_state,
        )
        if collect_state:
            return outcome
        result, bookkeeping = outcome
        return ScanOutcome(result=result, index=index, bookkeeping=bookkeeping)
    clamp = params.clamp_accuracy
    acc = [clamp(a) for a in accuracies]
    s = params.s
    one_minus_s = 1.0 - s
    inv_n = 1.0 / params.n
    shared_items = index.shared_items
    items_per_source = index.items_per_source
    suffix_max = index.suffix_max
    n_src = [0] * dataset.n_sources
    n_total_sources = dataset.n_sources
    states: dict[tuple[int, int], _PairState] = {}
    # Exact-mode (HYBRID low-overlap) pairs: [c_fwd, c_bwd, n_shared]
    # keyed by s1 * n_sources + s2, exactly like detect_index.
    exact_state: dict[int, list[float]] = {}
    tail_start = index.tail_start
    ceil = math.ceil
    incidences = 0
    score_updates = 0
    bound_evals = 0
    scan_end = len(index.entries) if stop_at is None else stop_at

    for position, entry in enumerate(index.entries[:scan_end]):
        in_tail = position >= tail_start
        p = entry.probability
        q = 1.0 - p
        q_over_n = q * inv_n
        providers = entry.providers
        for source in providers:
            n_src[source] += 1
        next_max = suffix_max[position + 1]
        k = len(providers)
        # Hoist per-provider terms of Eqs. (3)-(4) out of the pair loop.
        accs = [acc[src] for src in providers]
        nots = [1.0 - a for a in accs]
        singles = [p * a + q * (1.0 - a) for a in accs]
        for i in range(k):
            s1 = providers[i]
            a1 = accs[i]
            na1 = nots[i]
            ps1 = singles[i]
            exact_base = s1 * n_total_sources
            for j in range(i + 1, k):
                s2 = providers[j]
                # Fast path: pairs in exact (INDEX) mode live in flat list
                # cells — no bound upkeep, no per-pair objects.
                cell = exact_state.get(exact_base + s2)
                if cell is not None:
                    incidences += 1
                    score_updates += 2
                    denom = p * a1 * accs[j] + q_over_n * na1 * nots[j]
                    cell[0] += log(one_minus_s + s * singles[j] / denom)
                    cell[1] += log(one_minus_s + s * ps1 / denom)
                    cell[2] += 1.0
                    continue
                pair = (s1, s2)
                state = states.get(pair)
                if state is None:
                    if in_tail:
                        continue  # Step III opens no new pairs
                    l_shared = shared_items[pair]
                    if l_shared <= hybrid_threshold:
                        incidences += 1
                        score_updates += 2
                        denom = p * a1 * accs[j] + q_over_n * na1 * nots[j]
                        exact_state[exact_base + s2] = [
                            log(one_minus_s + s * singles[j] / denom),
                            log(one_minus_s + s * ps1 / denom),
                            1.0,
                        ]
                        continue
                    state = _PairState()
                    states[pair] = state
                if state.status != _ACTIVE:
                    if track_bookkeeping:
                        state.n_after += 1
                    continue

                incidences += 1
                score_updates += 2
                denom = p * a1 * accs[j] + q_over_n * na1 * nots[j]
                state.n0 += 1
                state.c0_fwd += log(one_minus_s + s * singles[j] / denom)
                state.c0_bwd += log(one_minus_s + s * ps1 / denom)

                l_shared = shared_items[pair]
                # --- C^min check (Eq. 9) --------------------------------
                if not use_timers or state.n0 >= state.min_check_at:
                    bound_evals += 1
                    if eval_log is not None:
                        eval_log.append(
                            BoundEval(
                                "min", pair, position, state.n0,
                                n_src[s1], n_src[s2], state.min_check_at,
                                state.max_check_n1, state.max_check_n2,
                            )
                        )
                    penalty = (l_shared - state.n0) * ln_diff
                    cmin_fwd = state.c0_fwd + penalty
                    cmin_bwd = state.c0_bwd + penalty
                    best_min = max(cmin_fwd, cmin_bwd)
                    if best_min >= theta_cp:
                        _conclude(
                            state, position, cmin_fwd, cmin_bwd, True, params
                        )
                        continue
                    if use_timers:
                        step = next_max - ln_diff
                        t_min = ceil((theta_cp - best_min) / step)
                        state.min_check_at = state.n0 + max(t_min, 1)

                # --- C^max check (Eq. 10) -------------------------------
                if not use_timers or (
                    n_src[s1] >= state.max_check_n1
                    or n_src[s2] >= state.max_check_n2
                ):
                    bound_evals += 1
                    if eval_log is not None:
                        eval_log.append(
                            BoundEval(
                                "max", pair, position, state.n0,
                                n_src[s1], n_src[s2], state.min_check_at,
                                state.max_check_n1, state.max_check_n2,
                            )
                        )
                    h = max(
                        n_src[s1] * l_shared / items_per_source[s1],
                        n_src[s2] * l_shared / items_per_source[s2],
                    )
                    h = min(max(h, float(state.n0)), float(l_shared))
                    spread = (h - state.n0) * ln_diff + (l_shared - h) * next_max
                    cmax_fwd = state.c0_fwd + spread
                    cmax_bwd = state.c0_bwd + spread
                    worst_max = max(cmax_fwd, cmax_bwd)
                    if worst_max < theta_ind:
                        _conclude(
                            state, position, cmax_fwd, cmax_bwd, False, params
                        )
                        continue
                    if use_timers:
                        step = next_max - ln_diff
                        t_max0 = ceil((worst_max - theta_ind) / step)
                        needed_diff = t_max0 + (h - state.n0)
                        state.max_check_n1 = ceil(
                            needed_diff * items_per_source[s1] / l_shared
                        )
                        state.max_check_n2 = ceil(
                            needed_diff * items_per_source[s2] / l_shared
                        )

    cost.values_examined = incidences
    cost.computations = score_updates + bound_evals

    if collect_state:
        return PrefixScanState(
            active={
                pair: (state.c0_fwd, state.c0_bwd, state.n0)
                for pair, state in states.items()
                if state.status == _ACTIVE
            },
            exact={
                (key // n_total_sources, key % n_total_sources): (
                    cell[0],
                    cell[1],
                    int(cell[2]),
                )
                for key, cell in exact_state.items()
            },
            done={
                pair: state.decision
                for pair, state in states.items()
                if state.status != _ACTIVE
            },
            incidences=incidences,
            score_updates=score_updates,
            bound_evals=bound_evals,
        )

    # --- Step IV: resolve remaining pairs exactly -----------------------
    end_position = len(index.entries)
    decisions: dict[tuple[int, int], PairDecision] = {}
    bookkeeping: dict[tuple[int, int], PairBookkeeping] | None = (
        {} if track_bookkeeping else None
    )
    for pair, state in states.items():
        cost.pairs_considered += 1
        if state.status == _ACTIVE:
            cost.score_update(2)
            l_shared = shared_items[pair]
            penalty = (l_shared - state.n0) * ln_diff
            c_fwd = state.c0_fwd + penalty
            c_bwd = state.c0_bwd + penalty
            post = posterior(c_fwd, c_bwd, params)
            state.decision = PairDecision(
                c_fwd=c_fwd,
                c_bwd=c_bwd,
                posterior=post,
                copying=post.copying,
                early=False,
            )
            state.decision_pos = end_position
            state.n_before = state.n0
            state.n_after = 0
        decision = state.decision
        assert decision is not None
        decisions[pair] = decision
        if bookkeeping is not None:
            l_shared = shared_items[pair]
            n_total = state.n_before + state.n_after
            base_penalty = (l_shared - n_total) * ln_diff
            # c0 at the decision point, reconstructed: for early pairs the
            # stored c0 already stopped growing at the decision entry.
            bookkeeping[pair] = PairBookkeeping(
                copying=decision.copying,
                early=decision.early,
                c_base_fwd=state.c0_fwd + base_penalty,
                c_base_bwd=state.c0_bwd + base_penalty,
                decision_pos=state.decision_pos,
                n_before=state.n_before,
                n_after=state.n_after,
                l=l_shared,
            )

    # Exact-mode (INDEX-style) pairs resolve at scan end too.
    for key, (c_fwd, c_bwd, n_shared) in exact_state.items():
        pair = (key // n_total_sources, key % n_total_sources)
        cost.pairs_considered += 1
        cost.score_update(2)
        l_shared = shared_items[pair]
        penalty = (l_shared - int(n_shared)) * ln_diff
        c_fwd += penalty
        c_bwd += penalty
        post = posterior(c_fwd, c_bwd, params)
        decisions[pair] = PairDecision(
            c_fwd=c_fwd,
            c_bwd=c_bwd,
            posterior=post,
            copying=post.copying,
            early=False,
        )
        if bookkeeping is not None:
            bookkeeping[pair] = PairBookkeeping(
                copying=post.copying,
                early=False,
                c_base_fwd=c_fwd,
                c_base_bwd=c_bwd,
                decision_pos=end_position,
                n_before=int(n_shared),
                n_after=0,
                l=l_shared,
            )

    result = DetectionResult(
        method=method_name,
        n_sources=dataset.n_sources,
        decisions=decisions,
        cost=cost,
    )
    return ScanOutcome(result=result, index=index, bookkeeping=bookkeeping)


def _conclude(
    state: _PairState,
    position: int,
    c_fwd: float,
    c_bwd: float,
    copying: bool,
    params: CopyParams,
) -> None:
    """Record an early verdict for a pair."""
    post = posterior(c_fwd, c_bwd, params)
    state.status = _DONE_COPY if copying else _DONE_NOCOPY
    state.decision = PairDecision(
        c_fwd=c_fwd,
        c_bwd=c_bwd,
        posterior=post,
        copying=copying,
        early=True,
    )
    state.decision_pos = position
    state.n_before = state.n0
    state.n_after = 0


def detect_bound(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex | None = None,
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
    band: tuple[float, float] | None = None,
    epoch_size: int | None = None,
) -> DetectionResult:
    """BOUND: bounds evaluated at every shared entry (Section IV-A)."""
    return scan_with_bounds(
        dataset,
        probabilities,
        accuracies,
        params,
        index=index,
        ordering=ordering,
        use_timers=False,
        hybrid_threshold=0,
        method_name="bound",
        band=band,
        epoch_size=epoch_size,
    ).result


def detect_bound_plus(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex | None = None,
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
    band: tuple[float, float] | None = None,
    epoch_size: int | None = None,
) -> DetectionResult:
    """BOUND+: BOUND with lazy bound re-evaluation timers (Section IV-B)."""
    return scan_with_bounds(
        dataset,
        probabilities,
        accuracies,
        params,
        index=index,
        ordering=ordering,
        use_timers=True,
        hybrid_threshold=0,
        method_name="bound+",
        band=band,
        epoch_size=epoch_size,
    ).result


#: Pairs sharing at most this many items are handled INDEX-style inside
#: HYBRID.  The paper picked 16 empirically (footnote 6).
DEFAULT_HYBRID_THRESHOLD = 16


def detect_hybrid(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex | None = None,
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
    hybrid_threshold: int = DEFAULT_HYBRID_THRESHOLD,
    track_bookkeeping: bool = False,
    shared_items_hint=None,
    epoch_size: int | None = None,
) -> ScanOutcome:
    """HYBRID: INDEX for low-overlap pairs, BOUND+ for the rest.

    Returns the full :class:`ScanOutcome` because HYBRID doubles as the
    preparation round of INCREMENTAL (``track_bookkeeping=True``).
    """
    return scan_with_bounds(
        dataset,
        probabilities,
        accuracies,
        params,
        index=index,
        ordering=ordering,
        use_timers=True,
        hybrid_threshold=hybrid_threshold,
        track_bookkeeping=track_bookkeeping,
        method_name="hybrid",
        shared_items_hint=shared_items_hint,
        epoch_size=epoch_size,
    )
