"""Detector dispatch: one entry point for every algorithm in the paper.

Two call styles are provided:

* :func:`detect` — run a single detection round with a named method
  (``"pairwise"``, ``"index"``, ``"bound"``, ``"bound+"``, ``"hybrid"``).
* :class:`SingleRoundDetector` / :class:`IncrementalDetector` — stateful
  objects with a uniform per-round interface, which is what the iterative
  fusion loop (:mod:`repro.fusion`) drives.  ``IncrementalDetector``
  implements the paper's INCREMENTAL schedule: HYBRID from scratch in
  rounds 1 and 2 (round 2 doubles as the preparation round), incremental
  updates from round 3 on (Section VI: "applying INCREMENTAL in the second
  round would not save much").
"""

from __future__ import annotations

import random
import time
from dataclasses import replace
from typing import Sequence

from ..data import Dataset
from .bound import (
    DEFAULT_HYBRID_THRESHOLD,
    detect_bound,
    detect_bound_plus,
    detect_hybrid,
)
from .incremental import (
    IncrementalState,
    incremental_round,
    prepare_incremental,
)
from .index import EntryOrdering
from .index_algo import detect_index
from .pairwise import detect_pairwise
from .params import EXECUTORS, PARTITION_AXES, REDUCE_MODES, CopyParams
from .result import DetectionResult

#: Names accepted by :func:`detect` and the CLI.
METHODS = ("pairwise", "index", "bound", "bound+", "hybrid")

#: Methods the parallel engine can partition (everything else is either
#: inherently pairwise or early-terminating over the whole scan order).
PARALLEL_METHODS = ("index", "hybrid")


def _cached_shared_items(
    cache: tuple[Dataset, dict] | None,
    dataset: Dataset,
    params: CopyParams,
) -> tuple[Dataset, dict]:
    """Shared-item counts, computed once per dataset (claims are static).

    The cache is keyed by the dataset object itself (a strong reference),
    not ``id(dataset)``: ids are recycled after garbage collection, so an
    id-keyed cache can serve one dataset's counts to another.
    """
    if cache is not None and cache[0] is dataset:
        return cache
    if params.backend == "numpy":
        from .kernel import count_shared_items_columnar as count
    else:
        from ..simjoin import count_shared_items as count

    return (dataset, count(dataset))


def detect(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    method: str = "hybrid",
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
    rng: random.Random | None = None,
    hybrid_threshold: int = DEFAULT_HYBRID_THRESHOLD,
    shared_items=None,
    backend: str | None = None,
    epoch_size: int | None = None,
    workspace=None,
    pair_layout: str | None = None,
) -> DetectionResult:
    """Run one copy-detection round with the named algorithm.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.
        method: one of :data:`METHODS`.
        ordering: index entry ordering (ignored by ``pairwise``).
        rng: random generator for ``EntryOrdering.RANDOM``.
        hybrid_threshold: HYBRID's shared-item cutoff.
        shared_items: precomputed ``l(S1, S2)`` counts to reuse across
            rounds (the claims are static; see
            :meth:`InvertedIndex.build`).
        backend: overrides ``params.backend`` (``"python"``/``"numpy"``)
            for this call.  ``"numpy"`` routes ``pairwise``/``index``
            through the vectorized kernel and the BOUND family through
            the epoch-batched scan (:mod:`repro.core.bound_kernel`,
            bit-identical decisions).
        epoch_size: entries per epoch for the numpy BOUND scans (``None``
            picks the default; exhaustive methods ignore it).
        workspace: a :class:`~repro.fusion.FusionWorkspace`; under the
            numpy backend the round's columnar entries are assembled
            from its frozen provider skeleton (one vectorized gather)
            instead of re-columnarizing the index with Python loops.
        pair_layout: overrides ``params.pair_layout``
            (``"auto"``/``"dense"``/``"sparse"``) for this call — the
            pair-state layout of the numpy kernels (see
            :mod:`repro.core.pairspace`).

    Returns:
        The round's :class:`DetectionResult`, with ``elapsed_seconds``
        filled in.

    Raises:
        ValueError: for an unknown method name.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    if backend is not None and backend != params.backend:
        params = replace(params, backend=backend)
    if pair_layout is not None and pair_layout != params.pair_layout:
        params = replace(params, pair_layout=pair_layout)
    start = time.perf_counter()
    if method == "pairwise":
        result = detect_pairwise(
            dataset, probabilities, accuracies, params, shared_items=shared_items
        )
    else:
        from .index import InvertedIndex

        index = InvertedIndex.build(
            dataset,
            probabilities,
            accuracies,
            params,
            ordering=ordering,
            rng=rng,
            shared_items=shared_items,
        )
        if (
            workspace is not None
            and workspace.dataset is dataset
            and params.backend == "numpy"
        ):
            index.set_columnar_entries(workspace.columnar_for_index(index))
        if method == "index":
            result = detect_index(
                dataset, probabilities, accuracies, params, index=index
            )
        elif method == "bound":
            result = detect_bound(
                dataset,
                probabilities,
                accuracies,
                params,
                index=index,
                epoch_size=epoch_size,
            )
        elif method == "bound+":
            result = detect_bound_plus(
                dataset,
                probabilities,
                accuracies,
                params,
                index=index,
                epoch_size=epoch_size,
            )
        else:  # hybrid
            result = detect_hybrid(
                dataset,
                probabilities,
                accuracies,
                params,
                index=index,
                hybrid_threshold=hybrid_threshold,
                epoch_size=epoch_size,
            ).result
    result.elapsed_seconds = time.perf_counter() - start
    return result


class _WorkspaceMixin:
    """Fusion-workspace plumbing shared by the stateful detectors.

    :func:`repro.fusion.run_fusion` binds its
    :class:`~repro.fusion.FusionWorkspace` for the duration of a fusion
    run (and unbinds it on the way out, exceptions included).  While
    bound, the workspace supplies the shared-item counts, the frozen
    columnar entry skeleton and — for the parallel methods — persistent
    executor pools and the persistent shared-memory broadcast.
    """

    _workspace = None

    def bind_workspace(self, workspace) -> None:
        """Attach (or, with ``None``, detach) a fusion workspace."""
        self._workspace = workspace

    def _shared_items(self, dataset: Dataset):
        """Per-dataset shared-item counts (see :func:`_cached_shared_items`)."""
        workspace = self._workspace
        if workspace is not None and workspace.dataset is dataset:
            return workspace.shared_items
        self._shared_items_cache = _cached_shared_items(
            self._shared_items_cache, dataset, self.params
        )
        return self._shared_items_cache[1]


class SingleRoundDetector(_WorkspaceMixin):
    """Stateless per-round detector: re-runs the named method every round.

    With ``n_partitions > 1`` (methods ``"index"`` and ``"hybrid"``
    only) each round's scan runs through the parallel engine —
    partitioned, optionally on a thread/process pool, with the chosen
    reduce topology — instead of the sequential dispatch.
    """

    def __init__(
        self,
        params: CopyParams,
        method: str = "hybrid",
        ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
        rng: random.Random | None = None,
        hybrid_threshold: int = DEFAULT_HYBRID_THRESHOLD,
        backend: str | None = None,
        epoch_size: int | None = None,
        n_partitions: int = 1,
        executor: str = "serial",
        reduce: str = "flat",
        partition_by: str = "entries",
        pair_layout: str | None = None,
        cluster=None,
    ):
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
        if backend is not None and backend != params.backend:
            params = replace(params, backend=backend)
        if pair_layout is not None and pair_layout != params.pair_layout:
            params = replace(params, pair_layout=pair_layout)
        if n_partitions < 1:
            raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
        if n_partitions > 1 and method not in PARALLEL_METHODS:
            raise ValueError(
                f"n_partitions > 1 supports methods {PARALLEL_METHODS}, "
                f"not {method!r}"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if reduce not in REDUCE_MODES:
            raise ValueError(
                f"unknown reduce mode {reduce!r}; expected one of {REDUCE_MODES}"
            )
        if partition_by not in PARTITION_AXES:
            raise ValueError(
                f"unknown partition_by {partition_by!r}; "
                f"expected one of {PARTITION_AXES}"
            )
        self.params = params
        self.method = method
        self.ordering = ordering
        self.rng = rng
        self.hybrid_threshold = hybrid_threshold
        self.epoch_size = epoch_size
        self.n_partitions = n_partitions
        self.executor = executor
        self.reduce = reduce
        self.partition_by = partition_by
        #: for ``executor="remote"``: a live ClusterExecutor, a worker
        #: list, or None (the REPRO_CLUSTER_WORKERS environment variable).
        self.cluster = cluster
        self._shared_items_cache: tuple[Dataset, dict] | None = None

    @property
    def wants_workspace(self) -> bool:
        """Whether a fusion workspace would pay off for this detector."""
        return (
            self.params.backend == "numpy"
            or self.n_partitions > 1
            or self.executor != "serial"
        )

    def run_round(
        self,
        round_no: int,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
    ) -> DetectionResult:
        """Detect copying for one fusion round (``round_no`` is 1-based)."""
        # PAIRWISE's Python reference never consults the counts; the
        # numpy backend uses them for the different-value penalty.
        shared = (
            None
            if self.method == "pairwise" and self.params.backend == "python"
            else self._shared_items(dataset)
        )
        if self.n_partitions > 1:
            return self._run_parallel_round(
                dataset, probabilities, accuracies, shared
            )
        workspace = self._workspace
        return detect(
            dataset,
            probabilities,
            accuracies,
            self.params,
            method=self.method,
            ordering=self.ordering,
            rng=self.rng,
            hybrid_threshold=self.hybrid_threshold,
            shared_items=shared,
            epoch_size=self.epoch_size,
            workspace=(
                workspace
                if workspace is not None and workspace.dataset is dataset
                else None
            ),
        )

    def _run_parallel_round(
        self,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
        shared,
    ) -> DetectionResult:
        """One round through the partitioned map/reduce engine."""
        from ..parallel import detect_hybrid_parallel, detect_index_parallel
        from .index import InvertedIndex

        start = time.perf_counter()
        index = InvertedIndex.build(
            dataset,
            probabilities,
            accuracies,
            self.params,
            ordering=self.ordering,
            rng=self.rng,
            shared_items=shared,
        )
        workspace = self._workspace
        if workspace is not None and workspace.dataset is not dataset:
            workspace = None  # bound for another dataset: ignore, like _shared_items
        if workspace is not None and self.params.backend == "numpy":
            index.set_columnar_entries(workspace.columnar_for_index(index))
        if self.method == "index":
            result = detect_index_parallel(
                dataset,
                probabilities,
                accuracies,
                self.params,
                n_partitions=self.n_partitions,
                strategy="work" if self.partition_by == "work" else "stride",
                executor=self.executor,
                index=index,
                reduce=self.reduce,
                workspace=workspace,
                cluster=self.cluster,
            )
        else:  # hybrid
            result = detect_hybrid_parallel(
                dataset,
                probabilities,
                accuracies,
                self.params,
                n_partitions=self.n_partitions,
                executor=self.executor,
                index=index,
                hybrid_threshold=self.hybrid_threshold,
                epoch_size=self.epoch_size,
                reduce=self.reduce,
                partition_by=self.partition_by,
                workspace=workspace,
                cluster=self.cluster,
            )
        result.elapsed_seconds = time.perf_counter() - start
        return result


class IncrementalDetector(_WorkspaceMixin):
    """Stateful detector implementing the paper's INCREMENTAL schedule.

    Rounds 1 and 2 run HYBRID from scratch (round 2 with bookkeeping —
    the preparation round); rounds 3+ run :func:`incremental_round`.

    Attributes:
        state: the cross-round :class:`IncrementalState` (available after
            round 2; exposes per-round :class:`RoundStats` via
            ``state.history`` for Table VIII).
    """

    def __init__(
        self,
        params: CopyParams,
        ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
        hybrid_threshold: int = DEFAULT_HYBRID_THRESHOLD,
        rho_value: float = 1.0,
        rho_accuracy: float = 0.2,
        prepare_round: int = 2,
        backend: str | None = None,
        epoch_size: int | None = None,
        pair_layout: str | None = None,
    ):
        if backend is not None and backend != params.backend:
            # Routes the from-scratch HYBRID rounds (1, 2 and the
            # preparation round's bookkeeping) through the epoch-batched
            # numpy scan; the bookkeeping it hands to incremental_round
            # is bit-identical to the Python reference's.
            params = replace(params, backend=backend)
        if pair_layout is not None and pair_layout != params.pair_layout:
            params = replace(params, pair_layout=pair_layout)
        self.params = params
        self.ordering = ordering
        self.hybrid_threshold = hybrid_threshold
        self.epoch_size = epoch_size
        self.rho_value = rho_value
        self.rho_accuracy = rho_accuracy
        self.prepare_round = prepare_round
        self.state: IncrementalState | None = None
        self._shared_items_cache: tuple[Dataset, dict] | None = None

    @property
    def wants_workspace(self) -> bool:
        """Whether a fusion workspace would pay off for this detector."""
        return self.params.backend == "numpy"

    def run_round(
        self,
        round_no: int,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
    ) -> DetectionResult:
        """Detect copying for one fusion round (``round_no`` is 1-based)."""
        start = time.perf_counter()
        if round_no < self.prepare_round:
            result = detect_hybrid(
                dataset,
                probabilities,
                accuracies,
                self.params,
                ordering=self.ordering,
                hybrid_threshold=self.hybrid_threshold,
                shared_items_hint=self._shared_items(dataset),
                epoch_size=self.epoch_size,
            ).result
        elif round_no == self.prepare_round or self.state is None:
            result, self.state = prepare_incremental(
                dataset,
                probabilities,
                accuracies,
                self.params,
                ordering=self.ordering,
                hybrid_threshold=self.hybrid_threshold,
                shared_items_hint=self._shared_items(dataset),
                epoch_size=self.epoch_size,
            )
        else:
            result = incremental_round(
                self.state,
                probabilities,
                accuracies,
                self.params,
                rho_value=self.rho_value,
                rho_accuracy=self.rho_accuracy,
            )
        result.elapsed_seconds = time.perf_counter() - start
        return result
