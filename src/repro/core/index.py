"""The specialized inverted index of Section III (Definition 3.2).

Each entry corresponds to a value ``D.v`` provided by **at least two**
sources and carries

* ``probability`` — ``P(D.v)``, the current truth probability;
* ``score`` — ``M-hat(D.v)``, the maximum possible contribution of sharing
  the value (Proposition 3.1);
* ``providers`` — the sources providing ``D.v``.  By construction a source
  appears in at most one entry per data item.

Entries are processed in an order chosen by :class:`EntryOrdering`
(the paper's default and best performer is ``BY_CONTRIBUTION`` —
decreasing score).  The low-score *tail* ``E-bar`` — the maximal set of
lowest-score entries whose scores sum to less than ``theta_ind`` — is
always processed last: source pairs whose shared values all lie in the
tail cannot accumulate enough evidence for copying and are never opened
(Section III, "Optimizing with the index").

The index also precomputes the shared-item counts ``l(S1, S2)`` for every
co-occurring source pair (via :mod:`repro.simjoin`) and a suffix-maximum
score array so the BOUND family can read ``M`` — an upper bound on the
contribution of any unscanned entry — in O(1) under *any* processing
order (for ``BY_CONTRIBUTION`` this is simply the next entry's score,
Proposition 3.4).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Sequence

from ..data import Dataset
from ..simjoin import PairCounts, count_shared_items
from .maxscore import max_score
from .params import CopyParams


class EntryOrdering(enum.Enum):
    """Processing order for non-tail index entries (Section VI-C)."""

    BY_CONTRIBUTION = "by_contribution"  #: decreasing M-hat score (paper default)
    BY_PROVIDER = "by_provider"  #: increasing number of providers
    RANDOM = "random"  #: uniformly shuffled


@dataclass
class IndexEntry:
    """One inverted-index entry (Definition 3.2).

    Attributes:
        value_id: the dataset's interned ``(item, value)`` id.
        item_id: the data item the value belongs to.
        probability: ``P(D.v)`` used when the entry was (re)scored.
        score: ``M-hat(D.v)`` under that probability.
        providers: source ids providing the value (>= 2 of them).
    """

    value_id: int
    item_id: int
    probability: float
    score: float
    providers: list[int]


class InvertedIndex:
    """Scored inverted index over shared values, plus pair-level metadata.

    Attributes:
        entries: all entries in *processing order* — the chosen ordering
            over non-tail entries followed by the tail (score-descending).
        tail_start: position of the first tail (``E-bar``) entry;
            ``entries[tail_start:]`` is the tail.
        shared_items: ``l(S1, S2)`` for every source pair sharing >= 1
            item, keyed by sorted id pairs.
        items_per_source: ``|D-bar(S)|`` per source id.
        suffix_max: ``suffix_max[i]`` is the maximum score among entries at
            positions ``>= i`` (``suffix_max[len(entries)] == 0.0``); the
            bound computations read ``M`` at position ``pos`` as
            ``suffix_max[pos + 1]``.
    """

    def __init__(
        self,
        entries: list[IndexEntry],
        tail_start: int,
        shared_items: PairCounts,
        items_per_source: list[int],
    ):
        self.entries = entries
        self.tail_start = tail_start
        self.shared_items = shared_items
        self.items_per_source = items_per_source
        self.suffix_max = self._compute_suffix_max(entries)
        self._columnar_cache = None

    @staticmethod
    def _compute_suffix_max(entries: Sequence[IndexEntry]) -> list[float]:
        suffix = [0.0] * (len(entries) + 1)
        for i in range(len(entries) - 1, -1, -1):
            suffix[i] = max(entries[i].score, suffix[i + 1])
        return suffix

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
        params: CopyParams,
        ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
        rng: random.Random | None = None,
        shared_items: PairCounts | None = None,
    ) -> "InvertedIndex":
        """Build the index for a dataset under current probability estimates.

        Args:
            dataset: the claims.
            probabilities: ``P(D.v)`` per value id.
            accuracies: ``A(S)`` per source id.
            params: model parameters (for scoring and the tail threshold).
            ordering: processing order for non-tail entries.
            rng: random generator for ``EntryOrdering.RANDOM`` (a fixed
                seed is used if omitted, keeping runs reproducible).
            shared_items: precomputed ``l(S1, S2)`` counts to reuse.  The
                claims never change across fusion rounds, so iterative
                callers compute the counts once and pass them back in —
                the paper counts them "at index building time" with
                set-similarity-join techniques for the same reason.
        """
        if len(probabilities) != dataset.n_values:
            raise ValueError(
                f"need one probability per value "
                f"({len(probabilities)} != {dataset.n_values})"
            )
        if len(accuracies) != dataset.n_sources:
            raise ValueError(
                f"need one accuracy per source "
                f"({len(accuracies)} != {dataset.n_sources})"
            )
        entries = []
        for value_id, providers in enumerate(dataset.providers):
            if len(providers) < 2:
                continue
            p_true = probabilities[value_id]
            provider_accuracies = [accuracies[s] for s in providers]
            entries.append(
                IndexEntry(
                    value_id=value_id,
                    item_id=dataset.value_item[value_id],
                    probability=p_true,
                    score=max_score(p_true, provider_accuracies, params),
                    providers=list(providers),
                )
            )

        main, tail = cls._split_tail(entries, params.theta_ind)
        cls._order_main(main, ordering, rng)
        ordered = main + tail
        return cls(
            entries=ordered,
            tail_start=len(main),
            shared_items=(
                shared_items
                if shared_items is not None
                else count_shared_items(dataset)
            ),
            items_per_source=list(dataset.items_per_source),
        )

    @staticmethod
    def _split_tail(
        entries: list[IndexEntry], theta_ind: float
    ) -> tuple[list[IndexEntry], list[IndexEntry]]:
        """Split off ``E-bar``: lowest-score entries summing below theta_ind."""
        by_score = sorted(entries, key=lambda e: e.score)
        cumulative = 0.0
        tail_size = 0
        for entry in by_score:
            cumulative += entry.score
            if cumulative >= theta_ind:
                break
            tail_size += 1
        tail = by_score[:tail_size]
        tail_ids = {id(e) for e in tail}
        main = [e for e in entries if id(e) not in tail_ids]
        tail.sort(key=lambda e: -e.score)
        return main, tail

    @staticmethod
    def _order_main(
        main: list[IndexEntry],
        ordering: EntryOrdering,
        rng: random.Random | None,
    ) -> None:
        if ordering is EntryOrdering.BY_CONTRIBUTION:
            main.sort(key=lambda e: -e.score)
        elif ordering is EntryOrdering.BY_PROVIDER:
            main.sort(key=lambda e: len(e.providers))
        elif ordering is EntryOrdering.RANDOM:
            (rng or random.Random(0)).shuffle(main)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown ordering {ordering!r}")

    # ------------------------------------------------------------------
    # Incremental support
    # ------------------------------------------------------------------
    def rescore(
        self,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
        params: CopyParams,
    ) -> list[float]:
        """Compute fresh ``M-hat`` scores without changing entry order.

        Used by INCREMENTAL, which keeps the processing order of the last
        from-scratch round fixed while probabilities drift.

        Returns:
            New score per entry, aligned with ``self.entries``.
        """
        scores = []
        for entry in self.entries:
            provider_accuracies = [accuracies[s] for s in entry.providers]
            scores.append(
                max_score(probabilities[entry.value_id], provider_accuracies, params)
            )
        return scores

    # ------------------------------------------------------------------
    # Columnar view (numpy backend)
    # ------------------------------------------------------------------
    def columnar_entries(self):
        """The entries as :class:`~repro.core.kernel.ColumnarEntries`.

        Built lazily and cached for the index's lifetime: the entry list
        is frozen after construction (INCREMENTAL's ``rescore`` returns
        fresh scores without touching it), while the numpy scans and the
        parallel engine each used to re-columnarize on every ``detect()``
        call — recomputed every fusion round.  Imports NumPy only when
        first called, keeping :mod:`repro.core` import-light.
        """
        if self._columnar_cache is None:
            from .kernel import ColumnarEntries

            self._columnar_cache = ColumnarEntries.from_index(self)
        return self._columnar_cache

    def set_columnar_entries(self, cols) -> None:
        """Pre-seed the columnar cache.

        The round-persistent :class:`~repro.fusion.FusionWorkspace`
        assembles the columnar view from its frozen provider skeleton
        (a vectorized gather instead of the per-entry Python loops in
        ``ColumnarEntries.from_index``) and hands it to the index here.
        """
        self._columnar_cache = cols

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Total number of entries (main + tail)."""
        return len(self.entries)

    def pairs_in_main(self) -> set[tuple[int, int]]:
        """Source pairs co-occurring in at least one non-tail entry.

        These are exactly the pairs INDEX/BOUND will open; everything else
        is concluded independent for free.
        """
        pairs: set[tuple[int, int]] = set()
        for entry in self.entries[: self.tail_start]:
            providers = entry.providers
            for i in range(len(providers)):
                for j in range(i + 1, len(providers)):
                    pairs.add((providers[i], providers[j]))
        return pairs
