"""NumPy-vectorized scoring kernel shared by PAIRWISE, INDEX and the engine.

The hot path of every non-early-terminating detector is the *entry scan*:
for each inverted-index entry (a value provided by ``k >= 2`` sources),
add Eq. (6)'s forward/backward log-contributions to every one of the
``k*(k-1)/2`` provider pairs.  The pure-Python implementations in
:mod:`repro.core.index_algo`, :mod:`repro.core.pairwise` and
:mod:`repro.parallel.engine` do this with nested loops and dict-keyed
accumulators — one dict probe and two ``math.log`` calls per
(pair, shared value) incidence.  This module performs the same
computation columnarly:

1. **Columnar entries** (:class:`ColumnarEntries`): an entry set is four
   flat arrays — per-entry probability, per-entry main/tail flag, provider
   ids concatenated, and CSR-style offsets.  This is also the payload the
   parallel engine ships to worker processes (far cheaper to pickle than
   per-entry tuples of Python lists).
2. **Incidence expansion** (:func:`expand_incidences`): entries are
   grouped by provider count ``k`` so each group's upper triangle is
   produced by one fancy-indexing broadcast (``np.triu_indices``), giving
   flat ``(src1, src2, probability, main)`` streams over *all* incidences.
3. **Scoring** (:func:`score_incidences` / :func:`entry_triangle_scores`):
   ``p*a_i*a_j + (q/n)*(1-a_i)*(1-a_j)`` is broadcast over the provider
   arrays and the forward/backward contributions come out of a single
   ``np.log`` per direction over the whole stream — no per-incidence
   Python bytecode at all.
4. **Compact pair accumulation** (:class:`PairTable`): pairs are keyed
   by the single integer ``s1 * n_sources + s2`` (``s1 < s2``) and the
   incidence stream is reduced into compact per-pair arrays by
   :func:`repro.core.pairspace.reduce_by_key` — a dense ``np.bincount``
   scatter while the key space fits under :data:`DENSE_KEY_SPACE`, a
   sort-based ``np.unique`` + ``np.add.at`` beyond it (or on request via
   ``CopyParams.pair_layout``), with identical floats either way.
   ``keys`` holds the sorted unique pair keys and ``c_fwd`` / ``c_bwd``
   / ``n_shared`` / ``saw_main`` are aligned with it.  Because the
   reduction is a plain sum, tables from disjoint entry shares merge
   associatively (:meth:`PairTable.merge`) — which is exactly what the
   map/reduce engine needs.

The pure-Python loops are deliberately **kept** as the reference
implementation (``backend="python"`` on :class:`~repro.core.params.CopyParams`,
the default): they are the bit-exactness anchor the property tests compare
against (the vectorized path reorders floating-point additions, so
agreement is asserted to 1e-9 rather than bit-identity), they document the
paper's algorithms line-by-line, and they keep :mod:`repro.core` free of
NumPy at import time (this module is loaded lazily, only when a numpy
backend is actually requested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .contribution import CopyPosterior
from .pairspace import encode_pair_keys, reduce_by_key, resolve_pair_layout
from .params import CopyParams
from .result import PairDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data import Dataset
    from .index import InvertedIndex

#: Largest flat pair-key space (``n_sources ** 2``) the ``"auto"``
#: layout reduces with the dense ``np.bincount`` scatter; beyond it
#: (> ~2k sources) :func:`repro.core.pairspace.resolve_pair_layout`
#: switches — with a logged warning — to the sort-based ``np.unique`` +
#: ``np.add.at`` layout, which keeps memory bounded by the number of
#: *observed* pairs instead.
DENSE_KEY_SPACE = 1 << 22


@dataclass
class ColumnarEntries:
    """A set of index entries in struct-of-arrays (columnar) layout.

    Attributes:
        probs: ``P(D.v)`` per entry, shape ``(E,)``.
        main: True for non-tail entries, shape ``(E,)``.
        offsets: CSR offsets into ``providers``, shape ``(E + 1,)``.
        providers: concatenated provider ids, shape ``(offsets[-1],)``.
    """

    probs: np.ndarray
    main: np.ndarray
    offsets: np.ndarray
    providers: np.ndarray

    @property
    def n_entries(self) -> int:
        return len(self.probs)

    @classmethod
    def _from_rows(
        cls,
        probs: list[float],
        main: list[bool],
        provider_lists: list[list[int]],
    ) -> "ColumnarEntries":
        counts = np.fromiter(
            (len(p) for p in provider_lists), dtype=np.int64, count=len(provider_lists)
        )
        offsets = np.zeros(len(provider_lists) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        flat: list[int] = []
        for providers in provider_lists:
            flat.extend(providers)
        return cls(
            probs=np.asarray(probs, dtype=np.float64),
            main=np.asarray(main, dtype=bool),
            offsets=offsets,
            providers=np.asarray(flat, dtype=np.int64),
        )

    @classmethod
    def from_index(
        cls, index: "InvertedIndex", positions: Sequence[int] | None = None
    ) -> "ColumnarEntries":
        """Columnarize ``index.entries`` (or a subset, for partitions).

        Args:
            index: the built inverted index.
            positions: entry positions to include (the parallel engine's
                partition payloads); all entries when omitted.
        """
        tail_start = index.tail_start
        entries = index.entries
        if positions is None:
            positions = range(len(entries))
        probs = [entries[pos].probability for pos in positions]
        main = [pos < tail_start for pos in positions]
        provider_lists = [entries[pos].providers for pos in positions]
        return cls._from_rows(probs, main, provider_lists)

    def take(self, positions: Sequence[int] | np.ndarray) -> "ColumnarEntries":
        """Gather a subset of entries into a new columnar block.

        This is the worker-side half of the parallel engine's
        shared-memory broadcast: the whole world is shipped once and each
        worker slices out its partition with one vectorized gather instead
        of receiving a pickled per-partition payload.

        Args:
            positions: entry positions to keep, in the order they should
                appear in the result (the engine passes them in
                processing order).
        """
        pos = np.asarray(positions, dtype=np.int64)
        counts = self.offsets[pos + 1] - self.offsets[pos]
        offsets = np.zeros(len(pos) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        if total:
            starts = self.offsets[pos]
            # Flat source index per kept provider slot: within group g the
            # running arange minus the group's destination start gives
            # 0..counts[g]-1, offset by the group's source start.
            idx = (
                np.repeat(starts, counts)
                + np.arange(total, dtype=np.int64)
                - np.repeat(offsets[:-1], counts)
            )
            providers = self.providers[idx]
        else:
            providers = np.empty(0, dtype=np.int64)
        return ColumnarEntries(
            probs=self.probs[pos],
            main=self.main[pos],
            offsets=offsets,
            providers=providers,
        )

    @classmethod
    def from_value_groups(
        cls, dataset: "Dataset", probabilities: Sequence[float]
    ) -> "ColumnarEntries":
        """Columnarize every multi-provider value of a dataset.

        This is PAIRWISE's view of the world: no index, no tail — every
        shared value contributes, so ``main`` is all-True.
        """
        probs: list[float] = []
        provider_lists: list[list[int]] = []
        for value_id, providers in enumerate(dataset.providers):
            if len(providers) < 2:
                continue
            probs.append(probabilities[value_id])
            provider_lists.append(providers)
        return cls._from_rows(probs, [True] * len(probs), provider_lists)


def expand_incidences(
    cols: ColumnarEntries,
    with_meta: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand entries into flat per-incidence streams.

    Entries are grouped by provider count ``k``; each group's full upper
    triangle is produced by one broadcast, so the Python-level loop runs
    once per *distinct k*, not once per entry.

    Args:
        cols: the columnar entries.
        with_meta: also expand the per-entry probability and main flag
            to per-incidence streams.  Pass False on counting-only paths
            (the meta streams are the dominant allocation and would be
            discarded).

    Returns:
        ``(src1, src2, probs, main)`` — for every (pair, shared value)
        incidence, the smaller/larger provider id, the entry probability
        and the entry's main flag (``probs``/``main`` stay empty when
        ``with_meta`` is False).  Empty arrays when no entry has two
        providers.
    """
    counts = np.diff(cols.offsets)
    src1_parts: list[np.ndarray] = []
    src2_parts: list[np.ndarray] = []
    prob_parts: list[np.ndarray] = []
    main_parts: list[np.ndarray] = []
    for k in np.unique(counts):
        if k < 2:
            continue
        rows = np.nonzero(counts == k)[0]
        starts = cols.offsets[rows]
        mat = cols.providers[starts[:, None] + np.arange(k)]
        iu, ju = np.triu_indices(int(k), 1)
        a = mat[:, iu].ravel()
        b = mat[:, ju].ravel()
        # Providers are sorted per entry, but normalise anyway so the
        # pair key is always (min, max).
        src1_parts.append(np.minimum(a, b))
        src2_parts.append(np.maximum(a, b))
        if with_meta:
            t = len(iu)
            prob_parts.append(np.repeat(cols.probs[rows], t))
            main_parts.append(np.repeat(cols.main[rows], t))
    empty_probs = np.empty(0)
    empty_main = np.empty(0, dtype=bool)
    if not src1_parts:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i.copy(), empty_probs, empty_main
    return (
        np.concatenate(src1_parts),
        np.concatenate(src2_parts),
        np.concatenate(prob_parts) if with_meta else empty_probs,
        np.concatenate(main_parts) if with_meta else empty_main,
    )


def expand_incidences_ordered(
    offsets: np.ndarray, providers: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand a columnar entry block into *entry-ordered* incidence streams.

    Like :func:`expand_incidences`, entries are grouped by provider count
    ``k`` so each group's upper triangle comes out of one broadcast — but
    the concatenated group outputs are then scattered back into **entry
    processing order** (computed arithmetically from per-entry incidence
    counts, no sort).  The early-terminating scans need this: their
    per-pair accumulation must replay the reference's left-to-right
    addition order bit-for-bit, and ``np.add.at`` preserves exactly the
    stream order it is handed.

    Args:
        offsets: CSR offsets into ``providers``, shape ``(E + 1,)``.
        providers: concatenated provider ids (sorted within each entry).

    Returns:
        ``(row, islot, jslot)`` aligned streams over all incidences, in
        entry order (and triangle order within an entry): the entry index
        ``row`` and the flat ``providers`` slots of the smaller-/larger-id
        provider.  Everything else (pair ids, probabilities, per-slot
        scan counts) is a gather away.
    """
    counts = np.diff(offsets)
    tri = counts * (counts - 1) // 2
    total = int(tri.sum())
    row = np.empty(total, dtype=np.int64)
    islot = np.empty(total, dtype=np.int64)
    jslot = np.empty(total, dtype=np.int64)
    if total == 0:
        return row, islot, jslot
    # Destination offset of each entry's first incidence in stream order.
    dest_start = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(tri, out=dest_start[1:])
    for k in np.unique(counts):
        if k < 2:
            continue
        rows_k = np.nonzero(counts == k)[0]
        slot_mat = offsets[rows_k][:, None] + np.arange(int(k))
        iu, ju = np.triu_indices(int(k), 1)
        t = len(iu)
        dest = (dest_start[rows_k][:, None] + np.arange(t)).ravel()
        row[dest] = np.repeat(rows_k, t)
        islot[dest] = slot_mat[:, iu].ravel()
        jslot[dest] = slot_mat[:, ju].ravel()
    return row, islot, jslot


def score_incidence_args(
    probs: np.ndarray,
    acc1: np.ndarray,
    acc2: np.ndarray,
    params: CopyParams,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (6) *log arguments* with the reference's exact arithmetic.

    :func:`score_incidences` is free to associate the float math however
    is fastest because the exhaustive scans are compared at 1e-9.  The
    bound scans are held to a harder standard — bit-identical decisions —
    so this variant mirrors the scalar reference expression by expression
    (``q * (1/n)`` rather than ``q / n``, same multiplication order) and
    stops *before* the log: IEEE-754 ``+ * /`` are correctly rounded and
    therefore identical between NumPy and scalar Python, whereas
    ``np.log``'s SIMD path may differ from ``math.log`` by an ulp.  The
    caller applies ``math.log`` per element to finish the job.

    Returns:
        ``(arg_fwd, arg_bwd)`` — the operands of the forward/backward
        ``ln`` per incidence.
    """
    s = params.s
    one_minus_s = 1.0 - s
    inv_n = 1.0 / params.n
    q = 1.0 - probs
    q_over_n = q * inv_n
    na1 = 1.0 - acc1
    na2 = 1.0 - acc2
    singles1 = probs * acc1 + q * na1
    singles2 = probs * acc2 + q * na2
    denom = probs * acc1 * acc2 + q_over_n * na1 * na2
    arg_fwd = one_minus_s + s * singles2 / denom
    arg_bwd = one_minus_s + s * singles1 / denom
    return arg_fwd, arg_bwd


def clamp_accuracies(accuracies: Sequence[float], params: CopyParams) -> np.ndarray:
    """Vectorized :meth:`CopyParams.clamp_accuracy` over a source array."""
    return np.clip(
        np.asarray(accuracies, dtype=np.float64),
        params.accuracy_clamp,
        1.0 - params.accuracy_clamp,
    )


def score_incidences(
    probs: np.ndarray,
    acc1: np.ndarray,
    acc2: np.ndarray,
    params: CopyParams,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (6) in both directions over an incidence stream.

    Args:
        probs: ``P(D.v)`` per incidence.
        acc1: clamped accuracy of the smaller-id provider per incidence.
        acc2: clamped accuracy of the larger-id provider per incidence.
        params: model parameters.

    Returns:
        ``(fwd, bwd)`` — the ``C->`` / ``C<-`` log-contributions.
    """
    s = params.s
    one_minus_s = 1.0 - s
    q = 1.0 - probs
    denom = probs * acc1 * acc2 + (q / params.n) * (1.0 - acc1) * (1.0 - acc2)
    fwd = np.log(one_minus_s + s * (probs * acc2 + q * (1.0 - acc2)) / denom)
    bwd = np.log(one_minus_s + s * (probs * acc1 + q * (1.0 - acc1)) / denom)
    return fwd, bwd


def entry_triangle_scores(
    p_true: float,
    accuracies: Sequence[float],
    params: CopyParams,
) -> tuple[np.ndarray, np.ndarray]:
    """Full ``k x k`` upper triangle of one entry's contributions.

    Broadcasts ``p*a_i*a_j + (q/n)*(1-a_i)*(1-a_j)`` over the provider
    accuracies and takes a single ``np.log`` per direction — the
    one-entry building block the batch path generalises.

    Args:
        p_true: the entry's ``P(D.v)``.
        accuracies: raw accuracies of the entry's ``k`` providers.
        params: model parameters.

    Returns:
        ``(fwd, bwd)`` flattened in ``np.triu_indices(k, 1)`` order:
        ``fwd[m]`` is ``C(S_i -> S_j)(D)`` for the m-th pair ``(i, j)``,
        ``bwd[m]`` the opposite direction.
    """
    a = clamp_accuracies(accuracies, params)
    q = 1.0 - p_true
    s = params.s
    singles = p_true * a + q * (1.0 - a)
    denom = p_true * np.outer(a, a) + (q / params.n) * np.outer(1.0 - a, 1.0 - a)
    full = np.log(1.0 - s + s * singles[None, :] / denom)
    iu = np.triu_indices(len(a), 1)
    # full[i, j] scores "i copies j" (uses pr_single of j); its transpose
    # scores the opposite direction (denom is symmetric).
    return full[iu], full.T[iu]


@dataclass
class PairTable:
    """Per-pair accumulators in flat-array layout.

    Pairs are keyed by ``s1 * n_sources + s2`` with ``s1 < s2``; ``keys``
    is sorted and unique, and the value arrays are aligned with it.

    Attributes:
        n_sources: key stride (needed to decode keys back into pairs).
        keys: unique pair keys, sorted ascending.
        c_fwd: accumulated ``C->`` per pair.
        c_bwd: accumulated ``C<-`` per pair.
        n_shared: number of shared-value incidences per pair.
        saw_main: True when at least one incidence came from a non-tail
            entry (INDEX opens only such pairs).
    """

    n_sources: int
    keys: np.ndarray
    c_fwd: np.ndarray
    c_bwd: np.ndarray
    n_shared: np.ndarray
    saw_main: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def empty(cls, n_sources: int) -> "PairTable":
        return cls(
            n_sources=n_sources,
            keys=np.empty(0, dtype=np.int64),
            c_fwd=np.empty(0),
            c_bwd=np.empty(0),
            n_shared=np.empty(0, dtype=np.int64),
            saw_main=np.empty(0, dtype=bool),
        )

    @classmethod
    def _reduce_keyed(
        cls,
        n_sources: int,
        keys: np.ndarray,
        fwd: np.ndarray,
        bwd: np.ndarray,
        incidence_counts: np.ndarray,
        main: np.ndarray,
        layout: str = "auto",
    ) -> "PairTable":
        """Scatter-add a keyed stream into compact per-pair arrays.

        The grouping is :func:`repro.core.pairspace.reduce_by_key` —
        dense ``np.bincount`` under :data:`DENSE_KEY_SPACE`, sparse
        ``np.unique`` + ``np.add.at`` beyond it (or on request), with
        identical floats either way.  Occupancy comes from key
        *presence*, not incidence counts: merged tables may carry pairs
        with zero incidences (e.g. PAIRWISE's pure-penalty rows) that
        must survive.  Either way this is the vectorized replacement for
        the Python backend's per-incidence dict churn (``cell[0] += ...``).
        """
        if len(keys) == 0:
            return cls.empty(n_sources)
        layout = resolve_pair_layout(
            layout, n_sources, DENSE_KEY_SPACE, "kernel.PairTable"
        )
        main_f = main.astype(np.float64)
        counts_f = incidence_counts.astype(np.float64)
        uniq, (c_fwd, c_bwd, n_shared, saw_main) = reduce_by_key(
            n_sources, keys, (fwd, bwd, counts_f, main_f), layout
        )
        return cls(
            n_sources=n_sources,
            keys=uniq,
            c_fwd=c_fwd,
            c_bwd=c_bwd,
            n_shared=n_shared.astype(np.int64),
            saw_main=saw_main > 0.0,
        )

    @classmethod
    def from_incidences(
        cls,
        n_sources: int,
        keys: np.ndarray,
        fwd: np.ndarray,
        bwd: np.ndarray,
        main: np.ndarray,
        layout: str = "auto",
    ) -> "PairTable":
        """Reduce an incidence stream to per-pair accumulators."""
        return cls._reduce_keyed(
            n_sources,
            keys,
            fwd,
            bwd,
            np.ones(len(keys), dtype=np.int64),
            main,
            layout=layout,
        )

    @classmethod
    def merge(
        cls, tables: Sequence["PairTable"], layout: str = "auto"
    ) -> "PairTable":
        """Associatively merge partial tables (the engine's reduce step)."""
        tables = [t for t in tables if len(t)]
        if not tables:
            raise ValueError("cannot merge zero non-empty tables")
        n_sources = tables[0].n_sources
        if any(t.n_sources != n_sources for t in tables):
            raise ValueError("cannot merge tables with different key strides")
        if len(tables) == 1:
            return tables[0]
        return cls._reduce_keyed(
            n_sources,
            np.concatenate([t.keys for t in tables]),
            np.concatenate([t.c_fwd for t in tables]),
            np.concatenate([t.c_bwd for t in tables]),
            np.concatenate([t.n_shared for t in tables]),
            np.concatenate([t.saw_main for t in tables]),
            layout=layout,
        )

    def pairs(self) -> list[tuple[int, int]]:
        """Decode ``keys`` back into ``(s1, s2)`` id pairs."""
        s1 = (self.keys // self.n_sources).tolist()
        s2 = (self.keys % self.n_sources).tolist()
        return list(zip(s1, s2))


def scan_columnar(
    cols: ColumnarEntries,
    accuracies: Sequence[float],
    params: CopyParams,
    n_sources: int,
) -> PairTable:
    """The vectorized entry scan: columnar entries in, pair table out.

    Top-level (picklable) so the parallel engine can submit it directly
    to worker processes.
    """
    src1, src2, probs, main = expand_incidences(cols)
    acc = clamp_accuracies(accuracies, params)
    fwd, bwd = score_incidences(probs, acc[src1], acc[src2], params)
    keys = encode_pair_keys(src1, src2, n_sources)
    return PairTable.from_incidences(
        n_sources, keys, fwd, bwd, main, layout=params.pair_layout
    )


def count_shared_items_columnar(
    dataset: "Dataset", layout: str = "auto"
) -> dict[tuple[int, int], int]:
    """Vectorized ``l(S1, S2)`` counting (see :func:`repro.simjoin.count_shared_items`).

    Items play the role of entries: each item's provider set expands to
    its pair triangle and one dense bincount tallies the co-occurrence
    counts.  Produces exactly the same mapping as the inverted-list join
    in :mod:`repro.simjoin`, an order of magnitude faster on dense worlds.
    """
    provider_lists: list[list[int]] = [[] for _ in range(dataset.n_items)]
    for source_id, claim in enumerate(dataset.claims):
        for item_id in claim:
            provider_lists[item_id].append(source_id)
    provider_lists = [p for p in provider_lists if len(p) >= 2]
    if not provider_lists:
        return {}
    cols = ColumnarEntries._from_rows(
        [0.0] * len(provider_lists), [True] * len(provider_lists), provider_lists
    )
    src1, src2, _, _ = expand_incidences(cols, with_meta=False)
    n_sources = dataset.n_sources
    keys = encode_pair_keys(src1, src2, n_sources)
    layout = resolve_pair_layout(
        layout, n_sources, DENSE_KEY_SPACE, "kernel.count_shared_items_columnar"
    )
    if layout == "dense":
        dense = np.bincount(keys, minlength=n_sources * n_sources)
        uniq = np.nonzero(dense)[0]
        counts = dense[uniq]
    else:
        uniq, counts = np.unique(keys, return_counts=True)
    s1 = (uniq // n_sources).tolist()
    s2 = (uniq % n_sources).tolist()
    return dict(zip(zip(s1, s2), counts.tolist()))


def posterior_arrays(
    c_fwd: np.ndarray, c_bwd: np.ndarray, params: CopyParams
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Eq. (2): the three-way posterior per pair.

    Same max-shift stabilisation as :func:`repro.core.contribution.posterior`.

    Returns:
        ``(independent, forward, backward)`` probability arrays.
    """
    log_beta = math.log(params.beta)
    log_alpha = math.log(params.alpha)
    t1 = log_alpha + c_fwd
    t2 = log_alpha + c_bwd
    shift = np.maximum(np.maximum(t1, t2), log_beta)
    e0 = np.exp(log_beta - shift)
    e1 = np.exp(t1 - shift)
    e2 = np.exp(t2 - shift)
    total = e0 + e1 + e2
    return e0 / total, e1 / total, e2 / total


def decide_pairs(
    table: PairTable,
    shared_items,
    params: CopyParams,
    require_main: bool = True,
) -> dict[tuple[int, int], PairDecision]:
    """Finalize a pair table into INDEX-style verdicts.

    Applies the different-value penalty ``ln(1-s) * (l - n)`` and Eq. (2)
    to every pair (dropping tail-only pairs when ``require_main``); the
    posteriors come from the vectorized :func:`posterior_arrays`, which
    performs the same stabilised computation as the scalar
    :func:`~repro.core.contribution.posterior`.

    Args:
        table: accumulated per-pair scores.
        shared_items: ``l(S1, S2)`` counts keyed by sorted id pairs.
        params: model parameters.
        require_main: drop pairs never seen in a non-tail entry (INDEX's
            skip rule); pass False to decide every accumulated pair.
    """
    if require_main and not table.saw_main.all():
        keep = table.saw_main
        table = PairTable(
            n_sources=table.n_sources,
            keys=table.keys[keep],
            c_fwd=table.c_fwd[keep],
            c_bwd=table.c_bwd[keep],
            n_shared=table.n_shared[keep],
            saw_main=table.saw_main[keep],
        )
    pairs = table.pairs()
    ln_diff = params.ln_one_minus_s
    n_diff = np.fromiter(
        (shared_items[pair] for pair in pairs), dtype=np.int64, count=len(pairs)
    ) - table.n_shared
    c_fwd = table.c_fwd + n_diff * ln_diff
    c_bwd = table.c_bwd + n_diff * ln_diff
    independent, forward, backward = posterior_arrays(c_fwd, c_bwd, params)
    decisions: dict[tuple[int, int], PairDecision] = {}
    for pair, cf, cb, p_ind, p_fwd, p_bwd in zip(
        pairs,
        c_fwd.tolist(),
        c_bwd.tolist(),
        independent.tolist(),
        forward.tolist(),
        backward.tolist(),
    ):
        post = CopyPosterior(independent=p_ind, forward=p_fwd, backward=p_bwd)
        decisions[pair] = PairDecision(
            c_fwd=cf,
            c_bwd=cb,
            posterior=post,
            copying=post.copying,
            early=False,
        )
    return decisions
