"""INCREMENTAL — iterative copy detection without starting over (Section V).

After the second fusion round, value probabilities and source accuracies
change only slightly, and so do copy decisions.  INCREMENTAL therefore
keeps per-pair state between rounds and *patches* it instead of
recomputing:

* The index structure (entries, providers, processing order, shared-item
  counts) is frozen after the preparation round — the underlying claims
  never change across rounds, only the probabilities do.
* Every entry carries *reference* values: the probability ``P_old`` and
  score used the last time its contribution was folded into pair scores.
  Each round, the entry's score change is computed against the reference
  (on reference accuracies, isolating the value-probability change, as the
  paper prescribes) and classified as big or small by the threshold
  ``rho_value``; sources are classified by ``rho_accuracy``.
* Stored pair scores ``C-hat`` live entirely in the reference frame:
  contributions of shared entries before the pair's decision point at
  reference probabilities/accuracies, plus the exact (static)
  different-value penalty.  Big changes are applied exactly (and the
  reference advances); small changes are never folded in — they are
  covered transiently each round by a pessimistic bulk estimate
  (``Delta-rho`` per small-changed shared entry), so the stored score's
  drift stays bounded by the rho thresholds.

Each round runs up to three passes over the index (Fig. 1 of the paper):

1. **Pass 1** applies big score changes exactly, counts small-changed
   shared entries, and re-checks every pair's decision under pessimistic
   estimates (for a copying pair: small decreases at worst-case magnitude,
   increases and after-decision entries ignored, then a minimum-score
   credit ``m`` per after-decision entry; symmetrically for no-copying
   pairs with the maximum-score bound ``M``).  Almost all pairs
   re-confirm here (Table VIII: 86-99%).
2. **Pass 2** resolves pairs whose verdict now depends on the entries
   after their old decision point, by computing those contributions
   exactly; resolved pairs absorb them and their decision point moves to
   the end of the index.
3. **Pass 3** fully recomputes the remaining ambiguous pairs — including
   every pair touching a source whose accuracy drifted by at least
   ``rho_accuracy`` since its reference ("big accuracy change" pairs,
   which the paper recomputes from scratch).

Deviations from the paper's step ordering, chosen for storage consistency
and documented in DESIGN.md: big *increases* are applied in pass 1
together with big decreases (the paper defers favourable changes to its
second pass), and pass 3 performs a full exact rebuild rather than
entry-wise patching of small changes (the paper's Example 5.1 does the
same "compute precise scores" for the ambiguous pair).  Both produce the
same verdicts; only the pass at which a rare pair terminates can differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..data import Dataset
from .bound import DEFAULT_HYBRID_THRESHOLD, PairBookkeeping, detect_hybrid
from .contribution import posterior, same_value_scores_both
from .index import EntryOrdering, InvertedIndex
from .maxscore import max_score
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision

# Entry change categories.
_UNCHANGED = 0
_SMALL_INC = 1
_BIG_INC = 2
_SMALL_DEC = -1
_BIG_DEC = -2

#: Score changes below this magnitude are treated as no change at all.
_NEGLIGIBLE = 1e-9


class _PairRecord:
    """Cross-round state for one opened pair."""

    __slots__ = (
        "s1",
        "s2",
        "copying",
        "c_base_fwd",
        "c_base_bwd",
        "decision_pos",
        "n_after",
        "n_total",
        "l",
    )

    def __init__(self, s1: int, s2: int, book: PairBookkeeping) -> None:
        self.s1 = s1
        self.s2 = s2
        self.copying = book.copying
        self.c_base_fwd = book.c_base_fwd
        self.c_base_bwd = book.c_base_bwd
        self.decision_pos = book.decision_pos
        self.n_after = book.n_after
        self.n_total = book.n_before + book.n_after
        self.l = book.l


@dataclass
class RoundStats:
    """Per-round instrumentation for Table VIII."""

    pairs_total: int = 0
    done_pass1: int = 0
    done_pass2: int = 0
    done_pass3: int = 0
    refresh_pairs: int = 0  #: pairs recomputed due to big accuracy change
    reopened_pairs: int = 0  #: tail-only pairs opened after tail-score growth
    entries_big: int = 0
    entries_small: int = 0
    entries_unchanged: int = 0
    flips: int = 0  #: pairs whose decision changed this round


@dataclass
class IncrementalState:
    """Everything INCREMENTAL carries between rounds."""

    index: InvertedIndex
    p_ref: list[float]  #: reference probability per entry position
    s_ref: list[float]  #: reference M-hat score per entry position
    a_ref: list[float]  #: reference accuracy per source
    pairs: dict[tuple[int, int], _PairRecord]
    entry_pairs: list[list[_PairRecord]]  #: booked pairs per entry position
    source_entries: list[list[int]]  #: entry positions touching each source
    history: list[RoundStats] = field(default_factory=list)
    #: tail-score-sum level above which unbooked tail pairs are
    #: re-examined (see ``_reopen_tail_pairs``); starts at theta_ind.
    reopen_level: float = float("inf")


def prepare_incremental(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
    hybrid_threshold: int = DEFAULT_HYBRID_THRESHOLD,
    shared_items_hint=None,
    epoch_size: int | None = None,
) -> tuple[DetectionResult, IncrementalState]:
    """Run the from-scratch (HYBRID) round and set up incremental state.

    Returns the round's detection result and the state that
    :func:`incremental_round` will evolve in subsequent rounds.  With
    ``params.backend == "numpy"`` the preparation scan runs epoch-batched
    (:mod:`repro.core.bound_kernel`); the bookkeeping it yields — and
    therefore every subsequent incremental round — is bit-identical to
    the pure-Python scan's.
    """
    outcome = detect_hybrid(
        dataset,
        probabilities,
        accuracies,
        params,
        ordering=ordering,
        hybrid_threshold=hybrid_threshold,
        track_bookkeeping=True,
        shared_items_hint=shared_items_hint,
        epoch_size=epoch_size,
    )
    assert outcome.bookkeeping is not None
    index = outcome.index
    pairs = {
        key: _PairRecord(key[0], key[1], book)
        for key, book in outcome.bookkeeping.items()
    }
    entry_pairs: list[list[_PairRecord]] = []
    for entry in index.entries:
        providers = entry.providers
        records = []
        for i in range(len(providers)):
            for j in range(i + 1, len(providers)):
                record = pairs.get((providers[i], providers[j]))
                if record is not None:
                    records.append(record)
        entry_pairs.append(records)
    source_entries: list[list[int]] = [[] for _ in range(dataset.n_sources)]
    for position, entry in enumerate(index.entries):
        for source in entry.providers:
            source_entries[source].append(position)
    state = IncrementalState(
        index=index,
        p_ref=[entry.probability for entry in index.entries],
        s_ref=[entry.score for entry in index.entries],
        a_ref=list(accuracies),
        pairs=pairs,
        entry_pairs=entry_pairs,
        source_entries=source_entries,
        reopen_level=params.theta_ind,
    )
    return outcome.result, state


def incremental_round(
    state: IncrementalState,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    rho_value: float = 1.0,
    rho_accuracy: float = 0.2,
) -> DetectionResult:
    """Run one incremental detection round against fresh probabilities.

    Args:
        state: cross-round state from :func:`prepare_incremental` (mutated).
        probabilities: current ``P(D.v)`` per value id.
        accuracies: current ``A(S)`` per source id.
        params: model parameters.
        rho_value: big/small threshold on entry *score* change (the paper
            sets 1.0 from the largest observed gap).
        rho_accuracy: big/small threshold on source accuracy change
            (paper: 0.2).

    Returns:
        The round's :class:`DetectionResult`; per-pass statistics are
        appended to ``state.history``.
    """
    index = state.index
    entries = index.entries
    n_entries = len(entries)
    cost = CostCounter()
    stats = RoundStats(pairs_total=len(state.pairs))
    ln_diff = params.ln_one_minus_s

    # ------------------------------------------------------------------
    # Categorize entries by score change on reference accuracies.
    # ------------------------------------------------------------------
    categories = [_UNCHANGED] * n_entries
    new_scores = [0.0] * n_entries
    delta_small_dec = 0.0
    delta_small_inc = 0.0
    a_ref = state.a_ref
    for pos, entry in enumerate(entries):
        ref_accs = [a_ref[s] for s in entry.providers]
        score_now = max_score(probabilities[entry.value_id], ref_accs, params)
        new_scores[pos] = score_now
        delta = score_now - state.s_ref[pos]
        magnitude = abs(delta)
        if magnitude < _NEGLIGIBLE:
            stats.entries_unchanged += 1
        elif magnitude >= rho_value:
            categories[pos] = _BIG_INC if delta > 0 else _BIG_DEC
            stats.entries_big += 1
        else:
            categories[pos] = _SMALL_INC if delta > 0 else _SMALL_DEC
            stats.entries_small += 1
            if delta > 0:
                delta_small_inc = max(delta_small_inc, delta)
            else:
                delta_small_dec = max(delta_small_dec, magnitude)

    # Suffix maxima of the fresh scores: M for no-copy pairs' after-entry
    # bound.  m = the smallest entry score, the paper's minimum-credit
    # estimate for a copying pair's after-entries.
    suffix_max_new = [0.0] * (n_entries + 1)
    for pos in range(n_entries - 1, -1, -1):
        suffix_max_new[pos] = max(new_scores[pos], suffix_max_new[pos + 1])
    m_credit = min(new_scores) if new_scores else 0.0

    # ------------------------------------------------------------------
    # Tail re-opening.  The prep round skipped pairs whose shared values
    # all sit in the tail because the tail's scores summed below
    # theta_ind; if probability drift pushes the tail's *current* score
    # sum past that level the argument weakens, so unbooked tail pairs
    # whose own entries could now reach theta_ind are opened (and exactly
    # rebuilt in pass 3).  The enumeration is gated on tail-sum growth —
    # a rho_value-scaled hysteresis keeps it rare under the default
    # configuration while rho_value = 0 re-checks on any growth.
    # ------------------------------------------------------------------
    reopened: set[tuple[int, int]] = set()
    tail_sum = sum(new_scores[index.tail_start :])
    if tail_sum >= state.reopen_level:
        reopened = _reopen_tail_pairs(state, new_scores, params)
        if rho_value > 0.0:
            state.reopen_level = tail_sum + 0.25 * rho_value
        stats.reopened_pairs = len(reopened)
        stats.pairs_total = len(state.pairs)

    # ------------------------------------------------------------------
    # Pairs with a big accuracy change get a full recompute (pass 3).
    # ------------------------------------------------------------------
    refresh_sources = {
        s
        for s in range(len(a_ref))
        if abs(accuracies[s] - a_ref[s]) >= rho_accuracy
    }
    pending_full: set[tuple[int, int]] = set(reopened)
    if refresh_sources:
        for key, record in state.pairs.items():
            if record.s1 in refresh_sources or record.s2 in refresh_sources:
                pending_full.add(key)
        stats.refresh_pairs = len(pending_full) - len(reopened)

    # ------------------------------------------------------------------
    # Pass 1: apply big changes, count small ones, re-check decisions.
    # ------------------------------------------------------------------
    small_dec_counts: dict[tuple[int, int], int] = {}
    small_inc_counts: dict[tuple[int, int], int] = {}
    for pos, entry in enumerate(entries):
        category = categories[pos]
        if category == _UNCHANGED:
            continue
        p_now = probabilities[entry.value_id]
        p_ref = state.p_ref[pos]
        for record in state.entry_pairs[pos]:
            key = (record.s1, record.s2)
            if key in pending_full:
                continue
            if pos >= record.decision_pos:
                continue  # after-decision entries handled in pass 2
            if category in (_BIG_INC, _BIG_DEC):
                ra1 = a_ref[record.s1]
                ra2 = a_ref[record.s2]
                old_fwd, old_bwd = same_value_scores_both(p_ref, ra1, ra2, params)
                new_fwd, new_bwd = same_value_scores_both(p_now, ra1, ra2, params)
                cost.score_update(4)
                record.c_base_fwd += new_fwd - old_fwd
                record.c_base_bwd += new_bwd - old_bwd
            elif category == _SMALL_DEC:
                small_dec_counts[key] = small_dec_counts.get(key, 0) + 1
            else:  # _SMALL_INC
                small_inc_counts[key] = small_inc_counts.get(key, 0) + 1

    pass2: list[_PairRecord] = []
    decisions: dict[tuple[int, int], PairDecision] = {}
    for key, record in state.pairs.items():
        if key in pending_full:
            continue
        n_dec = small_dec_counts.get(key, 0)
        n_inc = small_inc_counts.get(key, 0)
        verdict = _check_pass1(
            record, n_dec, n_inc, delta_small_dec, delta_small_inc,
            m_credit, suffix_max_new, params,
        )
        if verdict is not None:
            stats.done_pass1 += 1
            decisions[key] = verdict
        else:
            pass2.append(record)

    # ------------------------------------------------------------------
    # Pass 2: exact contributions of entries after the old decision point.
    # Iterates only the affected pairs' own shared entries (intersection
    # of the two sources' entry lists) instead of rescanning the index.
    # ------------------------------------------------------------------
    # Pairs whose stored verdict/scores actually moved this round —
    # pass-2 resolutions and pass-3 rebuilds.  Pass-1 re-confirmations
    # are excluded on purpose: the verdict stands and the reported
    # scores are pessimistic estimates, not exact values (see
    # ``DetectionResult.changed_pairs``).
    changed_pairs: set[tuple[int, int]] = set()
    pass3: list[_PairRecord] = []
    if pass2:
        for record in pass2:
            key = (record.s1, record.s2)
            cur_fwd = cur_bwd = ref_fwd = ref_bwd = 0.0
            for pos in _shared_positions(state, record.s1, record.s2):
                if pos < record.decision_pos:
                    continue
                entry = entries[pos]
                p_now = probabilities[entry.value_id]
                is_big = categories[pos] in (_BIG_INC, _BIG_DEC)
                p_store = p_now if is_big else state.p_ref[pos]
                fwd, bwd = same_value_scores_both(
                    p_now, accuracies[record.s1], accuracies[record.s2], params
                )
                rf, rb = same_value_scores_both(
                    p_store, a_ref[record.s1], a_ref[record.s2], params
                )
                cost.score_update(4)
                cur_fwd += fwd
                cur_bwd += bwd
                ref_fwd += rf
                ref_bwd += rb
            n_dec = small_dec_counts.get(key, 0)
            n_inc = small_inc_counts.get(key, 0)
            verdict = _check_pass2(
                record, cur_fwd, cur_bwd, n_dec, n_inc,
                delta_small_dec, delta_small_inc, params,
            )
            if verdict is not None:
                stats.done_pass2 += 1
                decisions[key] = verdict
                changed_pairs.add(key)
                # Absorb the after-decision entries (reference frame) and
                # move the decision point to the end of the index.
                record.c_base_fwd += ref_fwd
                record.c_base_bwd += ref_bwd
                record.decision_pos = n_entries
                record.n_after = 0
            else:
                pass3.append(record)

    # ------------------------------------------------------------------
    # Pass 3: full exact rebuild for ambiguous / big-accuracy pairs.
    # ------------------------------------------------------------------
    rebuild = [state.pairs[key] for key in pending_full] + pass3
    if rebuild:
        # Storage frame after this round: current accuracy for refreshed
        # sources (their reference advances below), reference otherwise.
        a_store = [
            accuracies[s] if s in refresh_sources else a_ref[s]
            for s in range(len(a_ref))
        ]
        for record in rebuild:
            key = (record.s1, record.s2)
            cur_fwd = cur_bwd = ref_fwd = ref_bwd = 0.0
            for pos in _shared_positions(state, record.s1, record.s2):
                entry = entries[pos]
                p_now = probabilities[entry.value_id]
                is_big = categories[pos] in (_BIG_INC, _BIG_DEC)
                p_store = p_now if is_big else state.p_ref[pos]
                fwd, bwd = same_value_scores_both(
                    p_now, accuracies[record.s1], accuracies[record.s2], params
                )
                rf, rb = same_value_scores_both(
                    p_store, a_store[record.s1], a_store[record.s2], params
                )
                cost.score_update(4)
                cur_fwd += fwd
                cur_bwd += bwd
                ref_fwd += rf
                ref_bwd += rb
            penalty = (record.l - record.n_total) * ln_diff
            c_fwd = cur_fwd + penalty
            c_bwd = cur_bwd + penalty
            post = posterior(c_fwd, c_bwd, params)
            if post.copying != record.copying:
                stats.flips += 1
            record.copying = post.copying
            record.c_base_fwd = ref_fwd + penalty
            record.c_base_bwd = ref_bwd + penalty
            record.decision_pos = n_entries
            record.n_after = 0
            stats.done_pass3 += 1
            decisions[key] = PairDecision(
                c_fwd=c_fwd, c_bwd=c_bwd, posterior=post,
                copying=post.copying, early=False,
            )
            changed_pairs.add(key)

    # ------------------------------------------------------------------
    # Advance references.
    # ------------------------------------------------------------------
    for pos in range(n_entries):
        if categories[pos] in (_BIG_INC, _BIG_DEC):
            state.p_ref[pos] = probabilities[entries[pos].value_id]
            state.s_ref[pos] = new_scores[pos]
    if refresh_sources:
        for s in refresh_sources:
            state.a_ref[s] = accuracies[s]
        touched = {pos for s in refresh_sources for pos in state.source_entries[s]}
        for pos in touched:
            entry = entries[pos]
            ref_accs = [state.a_ref[src] for src in entry.providers]
            state.s_ref[pos] = max_score(state.p_ref[pos], ref_accs, params)

    state.history.append(stats)
    cost.pairs_considered = len(state.pairs)
    return DetectionResult(
        method="incremental",
        n_sources=len(state.a_ref),
        decisions=decisions,
        cost=cost,
        changed_pairs=changed_pairs,
    )


def _shared_positions(state: IncrementalState, s1: int, s2: int) -> list[int]:
    """Entry positions where both sources appear (their shared values).

    Linear merge of the two sources' (sorted) entry-position lists.
    """
    left = state.source_entries[s1]
    right = state.source_entries[s2]
    out: list[int] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        a, b = left[i], right[j]
        if a == b:
            out.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return out


def _reopen_tail_pairs(
    state: IncrementalState,
    new_scores: list[float],
    params: CopyParams,
) -> set[tuple[int, int]]:
    """Open not-yet-booked tail pairs that could now reach the copy region.

    An unbooked pair co-occurs only in tail entries, so its best possible
    score is the sum of its own tail entries' current scores *plus the
    exact (static) different-value penalty* ``(l - n_shared) ln(1-s)`` —
    both are cheap to accumulate during one tail enumeration.  Pairs whose
    ceiling stays below ``theta_ind`` remain provably independent and stay
    closed; this keeps re-opening from booking the mass of
    share-two-popular-values pairs that the index exists to skip.
    Qualifying pairs get a fresh record (with the no-copying verdict
    skipping implied) and are handed to the pass-3 rebuild for exact
    scoring; the record is registered in ``entry_pairs`` at every position
    where the two sources co-occur, which is exactly their set of shared
    values.
    """
    index = state.index
    n_entries = len(index.entries)
    theta_ind = params.theta_ind
    ln_diff = params.ln_one_minus_s
    potential: dict[tuple[int, int], list[float]] = {}
    for pos in range(index.tail_start, n_entries):
        providers = index.entries[pos].providers
        score = new_scores[pos]
        k = len(providers)
        for i in range(k):
            s1 = providers[i]
            for j in range(i + 1, k):
                key = (s1, providers[j])
                if key in state.pairs:
                    continue
                cell = potential.get(key)
                if cell is None:
                    potential[key] = [score, 1.0]
                else:
                    cell[0] += score
                    cell[1] += 1.0

    shared_items = index.shared_items
    opened: set[tuple[int, int]] = set()
    for key, (reachable, n_shared) in potential.items():
        ceiling = reachable + (shared_items[key] - n_shared) * ln_diff
        if ceiling < theta_ind:
            continue
        shared_positions = _shared_positions(state, key[0], key[1])
        record = _PairRecord(
            key[0],
            key[1],
            PairBookkeeping(
                copying=False,
                early=False,
                c_base_fwd=0.0,
                c_base_bwd=0.0,
                decision_pos=n_entries,
                n_before=len(shared_positions),
                n_after=0,
                l=index.shared_items[key],
            ),
        )
        state.pairs[key] = record
        for position in shared_positions:
            state.entry_pairs[position].append(record)
        opened.add(key)
    return opened


def _check_pass1(
    record: _PairRecord,
    n_dec: int,
    n_inc: int,
    delta_small_dec: float,
    delta_small_inc: float,
    m_credit: float,
    suffix_max_new: list[float],
    params: CopyParams,
) -> PairDecision | None:
    """Re-check a pair's verdict under pass-1 pessimistic estimates.

    Returns a decision when the old verdict is re-confirmed, else None.
    """
    if record.copying:
        # Pessimistic: small decreases at worst magnitude, increases and
        # after-decision entries ignored.
        work_fwd = record.c_base_fwd - delta_small_dec * n_dec
        work_bwd = record.c_base_bwd - delta_small_dec * n_dec
        post = posterior(work_fwd, work_bwd, params)
        if post.copying:
            return PairDecision(
                c_fwd=work_fwd, c_bwd=work_bwd, posterior=post,
                copying=True, early=True,
            )
        if record.n_after:
            # Step 2: minimum credit per after-decision shared entry.
            credit = m_credit * record.n_after
            post = posterior(work_fwd + credit, work_bwd + credit, params)
            if post.copying:
                return PairDecision(
                    c_fwd=work_fwd + credit, c_bwd=work_bwd + credit,
                    posterior=post, copying=True, early=True,
                )
        return None
    # No-copying pair: pessimistic means *over*-estimating the score.
    bound_pos = min(record.decision_pos + 1, len(suffix_max_new) - 1)
    ceiling = suffix_max_new[bound_pos] * record.n_after
    work_fwd = record.c_base_fwd + delta_small_inc * n_inc + ceiling
    work_bwd = record.c_base_bwd + delta_small_inc * n_inc + ceiling
    post = posterior(work_fwd, work_bwd, params)
    if not post.copying:
        return PairDecision(
            c_fwd=work_fwd, c_bwd=work_bwd, posterior=post,
            copying=False, early=True,
        )
    return None


def _check_pass2(
    record: _PairRecord,
    after_fwd: float,
    after_bwd: float,
    n_dec: int,
    n_inc: int,
    delta_small_dec: float,
    delta_small_inc: float,
    params: CopyParams,
) -> PairDecision | None:
    """Re-check with exact after-decision contributions (pass 2)."""
    if record.copying:
        work_fwd = record.c_base_fwd - delta_small_dec * n_dec + after_fwd
        work_bwd = record.c_base_bwd - delta_small_dec * n_dec + after_bwd
        post = posterior(work_fwd, work_bwd, params)
        if post.copying:
            return PairDecision(
                c_fwd=work_fwd, c_bwd=work_bwd, posterior=post,
                copying=True, early=True,
            )
        return None
    work_fwd = record.c_base_fwd + delta_small_inc * n_inc + after_fwd
    work_bwd = record.c_base_bwd + delta_small_inc * n_inc + after_bwd
    post = posterior(work_fwd, work_bwd, params)
    if not post.copying:
        return PairDecision(
            c_fwd=work_fwd, c_bwd=work_bwd, posterior=post,
            copying=False, early=True,
        )
    return None
