"""Evidence explanations: *why* was a pair judged to be copying?

Copy detection verdicts carry real-world weight (the paper motivates
"protecting the rights of data providers"), so a production library must
be able to justify them.  :func:`explain_pair` recomputes a pair's
evidence item by item and returns a structured breakdown — every shared
value with its probability and directed contributions, the count of
disagreements and their penalty, and the resulting posterior — which the
CLI renders for ``detect --explain``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..data import Dataset
from .contribution import CopyPosterior, posterior, same_value_scores_both
from .params import CopyParams
from .result import DetectionResult, PairDecision, PairNotObservedError


@dataclass(frozen=True)
class EvidenceItem:
    """One shared data item's contribution to a pair's verdict."""

    item: str
    value_a: str
    value_b: str
    shared: bool
    probability: float | None  #: P(D.v) of the shared value (None if differing)
    c_fwd: float
    c_bwd: float
    #: Dempster conflict ``K`` of the item under a DS fusion run (None
    #: when fused with ACCU, or when no conflict map was supplied).
    conflict: float | None = None


@dataclass(frozen=True)
class PairExplanation:
    """Full evidence breakdown for one source pair.

    Attributes:
        source_a: first source's name.
        source_b: second source's name.
        items: per-item evidence, strongest forward contribution first.
        n_shared_values: items where the sources agree.
        n_different: items where both claim but disagree.
        c_fwd: total ``C(a -> b)``.
        c_bwd: total ``C(a <- b)``.
        posterior: the three-way verdict distribution.
        detected: the detector's stored verdict for the pair, when a
            :class:`~repro.core.result.DetectionResult` was supplied to
            :func:`explain_pair`; None otherwise.  May differ from the
            recomputed ``posterior`` when the stored verdict is an early
            (bound-based) one.
        credibility_a / credibility_b: each source's effective
            credibility weight under a DS fusion run — how much the
            :class:`~repro.fusion.credibility.CredibilityModel` scaled
            its evidence (None outside DS runs).
    """

    source_a: str
    source_b: str
    items: list[EvidenceItem]
    n_shared_values: int
    n_different: int
    c_fwd: float
    c_bwd: float
    posterior: CopyPosterior
    detected: PairDecision | None = None
    credibility_a: float | None = None
    credibility_b: float | None = None

    @property
    def copying(self) -> bool:
        return self.posterior.copying

    def top_evidence(self, k: int = 5) -> list[EvidenceItem]:
        """The k strongest pieces of copying evidence."""
        return self.items[:k]

    def render(self, max_items: int = 10) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"{self.source_a} vs {self.source_b}: "
            f"Pr(independent) = {self.posterior.independent:.4f} "
            f"({'COPYING' if self.copying else 'independent'})",
            f"  C-> = {self.c_fwd:.3f}   C<- = {self.c_bwd:.3f}   "
            f"shared values = {self.n_shared_values}, "
            f"disagreements = {self.n_different}",
        ]
        if self.credibility_a is not None and self.credibility_b is not None:
            lines.append(
                f"  credibility: {self.source_a} = {self.credibility_a:.3f}, "
                f"{self.source_b} = {self.credibility_b:.3f}"
            )
        for ev in self.items[:max_items]:
            conflict = "" if ev.conflict is None else f" [K={ev.conflict:.3f}]"
            if ev.shared:
                lines.append(
                    f"  + {ev.item} = {ev.value_a!r} "
                    f"(P={ev.probability:.3f}) -> {ev.c_fwd:+.3f}{conflict}"
                )
            else:
                lines.append(
                    f"  - {ev.item}: {ev.value_a!r} vs {ev.value_b!r} "
                    f"-> {ev.c_fwd:+.3f}{conflict}"
                )
        hidden = len(self.items) - max_items
        if hidden > 0:
            lines.append(f"  ... and {hidden} more items")
        return "\n".join(lines)


def explain_pair(
    dataset: Dataset,
    source_a: int,
    source_b: int,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    result: DetectionResult | None = None,
    credibility: Sequence[float] | None = None,
    conflict: Mapping[int, float] | None = None,
) -> PairExplanation:
    """Break down the evidence between two sources item by item.

    Args:
        dataset: the claims.
        source_a: first source id.
        source_b: second source id (distinct from ``source_a``).
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.
        result: optionally, the detection run whose verdict is being
            explained.  When given, the detector's stored decision is
            attached as :attr:`PairExplanation.detected` — and a pair
            the run never observed (no shared scored value; possible
            under both dense and sparse ``pair_layout``) raises
            :class:`~repro.core.result.PairNotObservedError` instead of
            leaking a raw ``KeyError``/``IndexError`` from the decision
            lookup or slot decode.
        credibility: effective per-source credibility weights of a DS
            fusion run (:attr:`~repro.fusion.FusionResult.credibility`);
            surfaces the pair's weights on the explanation.
        conflict: per-item Dempster conflict degrees of a DS run
            (:meth:`~repro.fusion.FusionResult.final_conflict`);
            annotates each shared item's evidence with its ``K``.

    Raises:
        ValueError: if the two ids coincide or are out of range.
        PairNotObservedError: ``result`` was given but never opened the
            pair.
    """
    if source_a == source_b:
        raise ValueError("cannot explain a source against itself")
    for source in (source_a, source_b):
        if not 0 <= source < dataset.n_sources:
            raise ValueError(f"source id {source} out of range")

    detected = None
    if result is not None:
        detected = result.decision_for(source_a, source_b)
        if detected is None:
            raise PairNotObservedError(source_a, source_b, result.method)

    ln_diff = params.ln_one_minus_s
    claims_a = dataset.claims[source_a]
    claims_b = dataset.claims[source_b]
    items: list[EvidenceItem] = []
    c_fwd = c_bwd = 0.0
    n_shared = n_diff = 0
    for item_id, value_a in claims_a.items():
        value_b = claims_b.get(item_id)
        if value_b is None:
            continue
        item_name = dataset.item_names[item_id]
        item_conflict = None if conflict is None else conflict.get(item_id)
        if value_a == value_b:
            p_true = probabilities[value_a]
            fwd, bwd = same_value_scores_both(
                p_true, accuracies[source_a], accuracies[source_b], params
            )
            items.append(
                EvidenceItem(
                    item=item_name,
                    value_a=dataset.value_label[value_a],
                    value_b=dataset.value_label[value_b],
                    shared=True,
                    probability=p_true,
                    c_fwd=fwd,
                    c_bwd=bwd,
                    conflict=item_conflict,
                )
            )
            c_fwd += fwd
            c_bwd += bwd
            n_shared += 1
        else:
            items.append(
                EvidenceItem(
                    item=item_name,
                    value_a=dataset.value_label[value_a],
                    value_b=dataset.value_label[value_b],
                    shared=False,
                    probability=None,
                    c_fwd=ln_diff,
                    c_bwd=ln_diff,
                    conflict=item_conflict,
                )
            )
            c_fwd += ln_diff
            c_bwd += ln_diff
            n_diff += 1

    items.sort(key=lambda ev: -ev.c_fwd)
    return PairExplanation(
        source_a=dataset.source_names[source_a],
        source_b=dataset.source_names[source_b],
        items=items,
        n_shared_values=n_shared,
        n_different=n_diff,
        c_fwd=c_fwd,
        c_bwd=c_bwd,
        posterior=posterior(c_fwd, c_bwd, params),
        detected=detected,
        credibility_a=None if credibility is None else float(credibility[source_a]),
        credibility_b=None if credibility is None else float(credibility[source_b]),
    )
