"""Shared sparse pair-state abstraction for the vectorized kernels.

Every vectorized layer of the detector keys source pairs by the single
integer ``s1 * n_sources + s2`` (``s1 < s2`` for undirected pair state,
either order for directed copy probabilities).  Until PR 6 each layer
then allocated *dense* flat arrays over the full ``n_sources ** 2`` key
space — and silently fell back to the pure-Python reference loops the
moment that quadratic allocation crossed a limit
(:data:`repro.core.kernel.DENSE_KEY_SPACE`,
:data:`repro.core.bound_kernel.DENSE_STATE_LIMIT`,
:data:`repro.fusion.accu_kernel.DENSE_MATRIX_LIMIT`).  Real worlds are
sparse in exactly the regime where those limits bite: with Zipf-shaped
coverage a 10k-source world observes tens of thousands of pairs out of a
10\\ :sup:`8` key space.

This module factorizes the *observed* pairs once — a sorted-unique int64
key array — and gives every kernel compact per-pair slots:

* :func:`encode_pair_keys` / :func:`decode_pair_keys` — the one true
  int64 key codec (at 50k sources the key reaches ``~2.5e9`` and would
  silently wrap in int32; everything routes through here).
* :class:`PairSpace` — the slot universe: ``slots()`` maps a key stream
  to compact indices (identity for the dense layout,
  ``np.searchsorted`` for the sparse one), ``decode()`` maps slots back
  to ``(s1, s2)`` pairs, ``zeros()`` allocates aligned state arrays.
  Because the sparse slot numbering comes from *sorted* unique keys it
  is monotone in the key — so stable sorts, ``np.unique`` grouping and
  ``np.add.at`` stream-order scatter-adds behave identically whether
  indexed by key or by slot, which is what lets the bound scans stay
  bit-identical to the reference in either layout.
* :func:`reduce_by_key` — scatter-add a keyed incidence stream into
  compact per-pair sums (dense ``np.bincount`` or sparse ``np.unique`` +
  ``np.add.at``; both are stream-order left folds, so the two layouts
  produce identical floats).
* :class:`PairValueMap` — a directed-pair float lookup (ACCUCOPY's copy
  probabilities) backed by sorted keys + ``np.searchsorted`` gather with
  a default for unobserved pairs, replacing the dense
  ``n_sources x n_sources`` matrix.
* :func:`resolve_pair_layout` — the ``"auto"`` heuristic: dense below a
  kernel's limit, sparse above it, with a module-level ``logging``
  warning naming the limit and the layout chosen, so leaving the dense
  fast path is observable, never silent (the former behaviour — a
  silent fallback to the pure-Python loops — is retired).
"""

from __future__ import annotations

from typing import Iterable, Sequence
import logging

import numpy as np

from .params import PAIR_LAYOUTS

logger = logging.getLogger(__name__)


def encode_pair_keys(
    src1: np.ndarray | Sequence[int],
    src2: np.ndarray | Sequence[int],
    n_sources: int,
) -> np.ndarray:
    """``s1 * n_sources + s2`` as int64, whatever the input dtype.

    The multiplication is forced to int64 so keys never wrap: at
    ``n_sources > 2**16`` the product exceeds int32 (the regression
    tests pin this at 70k sources).
    """
    s1 = np.asarray(src1).astype(np.int64, copy=False)
    s2 = np.asarray(src2).astype(np.int64, copy=False)
    return s1 * np.int64(n_sources) + s2


def decode_pair_keys(
    keys: np.ndarray, n_sources: int
) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode_pair_keys` into ``(s1, s2)`` arrays."""
    keys = np.asarray(keys).astype(np.int64, copy=False)
    return keys // n_sources, keys % n_sources


def resolve_pair_layout(
    requested: str, n_sources: int, dense_limit: int, kernel: str
) -> str:
    """Resolve ``"auto"`` into a concrete layout for one kernel.

    The heuristic: dense flat arrays while ``n_sources ** 2`` fits under
    the kernel's ``dense_limit`` (scatter via ``np.bincount``, no sort),
    sparse compact slots beyond it.  Crossing the limit under ``"auto"``
    emits a :mod:`logging` warning naming the kernel, the limit hit and
    the layout chosen — the observable replacement for the silent
    pure-Python fallbacks this package shipped before the sparse layer.

    Args:
        requested: ``"auto"``, ``"dense"`` or ``"sparse"`` (explicit
            layouts are honoured unconditionally).
        n_sources: the world's source count.
        dense_limit: the kernel's largest acceptable flat key space.
        kernel: label for the log record, e.g. ``"bound_kernel.EpochScan"``.

    Raises:
        ValueError: for an unknown layout name.
    """
    if requested not in PAIR_LAYOUTS:
        raise ValueError(
            f"pair_layout must be one of {PAIR_LAYOUTS}, got {requested!r}"
        )
    if requested != "auto":
        return requested
    key_space = int(n_sources) * int(n_sources)
    if key_space <= dense_limit:
        return "dense"
    logger.warning(
        "%s: pair key space %d (n_sources=%d) exceeds the dense limit %d; "
        "auto-selected the sparse pair layout",
        kernel,
        key_space,
        n_sources,
        dense_limit,
    )
    return "sparse"


class PairSpace:
    """The slot universe of a pair-keyed kernel.

    A *slot* is a compact index into per-pair state arrays.  The dense
    layout spends one slot per point of the full ``n_sources ** 2`` key
    space (slot == key, no indirection); the sparse layout spends one
    slot per *observed* pair, numbered by the rank of its key in the
    sorted-unique key array.  Sparse slot numbering is therefore
    monotone in the key, so any key-ordered computation (stable sorts,
    ``np.unique`` grouping, ascending-slot iteration) is order-identical
    between the two layouts.

    Attributes:
        n_sources: key stride.
        layout: ``"dense"`` or ``"sparse"``.
        keys: sorted unique int64 keys of the observed pairs (sparse
            layout only; ``None`` when dense).
        n_slots: state-array length (``n_sources ** 2`` dense, observed
            pair count sparse).
    """

    __slots__ = ("n_sources", "layout", "keys", "n_slots")

    def __init__(
        self, n_sources: int, layout: str, keys: np.ndarray | None = None
    ) -> None:
        self.n_sources = int(n_sources)
        self.layout = layout
        if layout == "dense":
            self.keys = None
            self.n_slots = self.n_sources * self.n_sources
        elif layout == "sparse":
            if keys is None:
                raise ValueError("sparse PairSpace needs the observed keys")
            self.keys = keys
            self.n_slots = len(keys)
        else:
            raise ValueError(f"layout must be 'dense' or 'sparse', got {layout!r}")

    @classmethod
    def dense(cls, n_sources: int) -> "PairSpace":
        """The identity space: slot == key over the full key space."""
        return cls(n_sources, "dense")

    @classmethod
    def from_keys(cls, n_sources: int, keys: np.ndarray) -> "PairSpace":
        """Sparse space over a (possibly duplicated, unsorted) key stream."""
        uniq = np.unique(np.asarray(keys).astype(np.int64, copy=False))
        return cls(n_sources, "sparse", uniq)

    @classmethod
    def from_pairs(
        cls, n_sources: int, pairs: Iterable[tuple[int, int]]
    ) -> "PairSpace":
        """Sparse space over an iterable of ``(s1, s2)`` pairs.

        The bound scan builds its universe this way from
        ``index.shared_items`` — every pair that can ever appear in the
        entry stream shares at least one item, so the dict's keys are a
        superset of the scan's live pairs.
        """
        pairs = list(pairs) if not isinstance(pairs, (list, tuple)) else pairs
        keys = np.fromiter(
            (s1 * n_sources + s2 for s1, s2 in pairs),
            dtype=np.int64,
            count=len(pairs),
        )
        return cls(n_sources, "sparse", np.unique(keys))

    def __len__(self) -> int:
        return self.n_slots

    def slots(self, keys: np.ndarray) -> np.ndarray:
        """Map member keys to their slots (identity dense, rank sparse).

        Sparse lookups assume membership: a key outside the observed set
        would alias another slot, so callers must build the space from a
        superset of every key they will ever present (use
        :meth:`PairValueMap.gather` for maybe-missing lookups).
        """
        if self.layout == "dense":
            return keys
        return np.searchsorted(self.keys, keys)

    def slot_keys(self, slots: np.ndarray) -> np.ndarray:
        """The int64 keys behind a slot array."""
        if self.layout == "dense":
            return np.asarray(slots).astype(np.int64, copy=False)
        return self.keys[slots]

    def decode(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Slots back to ``(s1, s2)`` id arrays."""
        return decode_pair_keys(self.slot_keys(slots), self.n_sources)

    def zeros(self, dtype=np.float64) -> np.ndarray:
        """A zeroed per-slot state array."""
        return np.zeros(self.n_slots, dtype=dtype)


def reduce_by_key(
    n_sources: int,
    keys: np.ndarray,
    columns: Sequence[np.ndarray],
    layout: str,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Scatter-add aligned float columns into compact per-key sums.

    Two strategies, identical floats:

    * ``"dense"``: scatter directly into the full flat key space with
      ``np.bincount`` and compact the *present* slots (presence comes
      from key occurrence, not column weight, so zero-weight rows
      survive);
    * ``"sparse"``: ``np.unique`` compacts the keys first and the sums
      land via ``np.add.at`` on the compacted arrays.

    Both scatters apply additions in stream order (exact left folds), so
    the layouts agree bit for bit.

    Returns:
        ``(uniq_keys, sums)`` — the sorted unique keys and one aligned
        float64 sum array per input column.
    """
    if layout == "dense":
        key_space = n_sources * n_sources
        present = np.bincount(keys, minlength=key_space)
        uniq = np.nonzero(present)[0]
        sums = [
            np.bincount(keys, weights=col, minlength=key_space)[uniq]
            for col in columns
        ]
    else:
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = []
        for col in columns:
            acc = np.zeros(len(uniq))
            np.add.at(acc, inverse, col)
            sums.append(acc)
    return uniq, sums


class PairValueMap:
    """Directed-pair float lookup with a default for unobserved pairs.

    ACCUCOPY's independence discounts read ``Pr(S -> S' | Phi)`` for
    arbitrary provider pairs; pairs the detector never opened are
    independent (probability 0).  The dense layout materializes the full
    ``n_sources x n_sources`` matrix; this sparse form keeps only the
    decided pairs — sorted int64 keys plus aligned values — and gathers
    with ``np.searchsorted`` + an equality mask, so memory is bounded by
    the number of *decisions*, not the key space, while the gathered
    floats are identical to the dense matrix lookup.
    """

    __slots__ = ("n_sources", "keys", "values", "default")

    def __init__(
        self,
        n_sources: int,
        keys: np.ndarray,
        values: np.ndarray,
        default: float = 0.0,
    ) -> None:
        self.n_sources = int(n_sources)
        self.keys = keys
        self.values = values
        self.default = default

    @classmethod
    def from_items(
        cls,
        n_sources: int,
        items: Iterable[tuple[tuple[int, int], float]],
        default: float = 0.0,
    ) -> "PairValueMap":
        """Build from ``((src, dst), value)`` items (directed keys)."""
        items = list(items)
        keys = np.fromiter(
            (src * n_sources + dst for (src, dst), _ in items),
            dtype=np.int64,
            count=len(items),
        )
        values = np.fromiter(
            (value for _, value in items), dtype=np.float64, count=len(items)
        )
        order = np.argsort(keys, kind="stable")
        return cls(n_sources, keys[order], values[order], default)

    def gather(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Values for (broadcast) directed pairs; misses read ``default``."""
        query = encode_pair_keys(src, dst, self.n_sources)
        if len(self.keys) == 0:
            return np.full(query.shape, self.default)
        pos = np.searchsorted(self.keys, query)
        pos = np.minimum(pos, len(self.keys) - 1)
        hit = self.keys[pos] == query
        return np.where(hit, self.values[pos], self.default)
