"""Proposition 3.1: the maximum contribution score of an index entry.

The contribution of sharing ``D.v`` differs per source pair (it depends on
both accuracies), so each index entry is scored with the *maximum*
contribution over every ordered pair of its providers, written
``M-hat(D.v)``.  Proposition 3.1 shows the maximiser always involves
providers with extreme (minimum / second-minimum / maximum) accuracies, so
``M-hat`` is computable in O(k) from the provider accuracy list instead of
O(k^2) over pairs.

Why extremes suffice: Eq. (6) is ``ln(1 - s + s * N(a2) / D(a1, a2))``
with ``N`` linear in ``a2`` and ``D`` bilinear in ``(a1, a2)``.  For fixed
``a2`` the score is monotone in ``a1`` (the denominator is linear in
``a1``), and for fixed ``a1`` the ratio ``N/D`` is a Moebius function of
``a2``, hence monotone on the unit interval.  The maximiser therefore uses
accuracies from the extremes of the provider list.  We evaluate every
ordered pair among the four extreme providers (min, second-min,
second-max, max — at most 12 candidate pairs), a superset of the
proposition's three cases that is immune to boundary-condition slips.
``max_score_bruteforce`` checks every ordered pair and is used by the test
suite to validate this reasoning numerically.
"""

from __future__ import annotations

from typing import Sequence

from .contribution import same_value_score
from .params import CopyParams


def max_score(
    p_true: float,
    accuracies: Sequence[float],
    params: CopyParams,
) -> float:
    """``M-hat(D.v)`` — maximum Eq. (6) score over ordered provider pairs.

    Evaluates the proposition's candidate configurations — (max copier,
    min original), (second-min copier, min original), (min copier,
    second-min original) plus their two symmetric completions for safety
    at degenerate accuracy regimes — after a single O(k) extremes pass.
    This function is the inner loop of index (re)scoring, so it avoids
    sorting and list allocation.

    Args:
        p_true: probability of the entry's value being true.
        accuracies: accuracies of the entry's providers (length >= 2).
        params: model parameters.

    Raises:
        ValueError: if fewer than two providers are given (such values
            never enter the index — Definition 3.2).
    """
    if len(accuracies) < 2:
        raise ValueError("an index entry needs at least two providers")
    a_min = a_second = float("inf")
    a_max = a_second_max = float("-inf")
    for a in accuracies:
        if a < a_min:
            a_second = a_min
            a_min = a
        elif a < a_second:
            a_second = a
        if a > a_max:
            a_second_max = a_max
            a_max = a
        elif a > a_second_max:
            a_second_max = a
    best = float("-inf")
    for copier, original in (
        (a_max, a_min),
        (a_second, a_min),
        (a_min, a_second),
        (a_min, a_max),
        (a_second_max, a_max),
    ):
        score = same_value_score(p_true, copier, original, params)
        if score > best:
            best = score
    return best


def max_score_bruteforce(
    p_true: float,
    accuracies: Sequence[float],
    params: CopyParams,
) -> float:
    """Reference implementation: maximise over every ordered provider pair.

    O(k^2); used only in tests to validate :func:`max_score` (and with it
    Proposition 3.1).
    """
    if len(accuracies) < 2:
        raise ValueError("an index entry needs at least two providers")
    best = float("-inf")
    for i, a1 in enumerate(accuracies):
        for j, a2 in enumerate(accuracies):
            if i == j:
                continue
            score = same_value_score(p_true, a1, a2, params)
            if score > best:
                best = score
    return best
