"""Model parameters for Bayesian copy detection (Section II of the paper).

Three inputs drive the Bayesian analysis (footnote 4 of the paper: "alpha,
n, s are inputs and can be set/refined according to [5], [6]"):

* ``alpha`` — a-priori probability that one source copies from another in a
  given direction, ``0 < alpha < 0.5``; ``beta = 1 - 2*alpha`` is the prior
  of independence.
* ``s`` — copy *selectivity*: the probability that a copier copies on any
  particular data item.
* ``n`` — the number of (uniformly distributed) false values in the domain
  of each data item.

The early-termination thresholds of Section IV follow from these:
``theta_ind = ln(beta / 2 alpha)`` (no-copying can be concluded when both
upper bounds fall below it) and ``theta_cp = ln(beta / alpha)`` (copying
can be concluded when either lower bound reaches it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Score-accumulation backends accepted by :attr:`CopyParams.backend`
#: (and every ``backend=`` parameter downstream).  Lives here rather
#: than in :mod:`repro.core.kernel` so validation never imports NumPy.
BACKENDS = ("python", "numpy")

#: Executors accepted by the parallel engine's ``executor=`` parameter
#: (and the CLI's ``--executor``): ``"serial"`` runs partitions in
#: order in-process, ``"threads"``/``"processes"`` use local pools
#: (shared-memory world broadcast under processes), and ``"remote"``
#: ships partitions to cluster workers over TCP
#: (:mod:`repro.cluster`; requires ``backend="numpy"`` and a worker
#: list).  Lives here so validation never imports NumPy or sockets.
EXECUTORS = ("serial", "threads", "processes", "remote")

#: Reduction topologies accepted by the parallel engine's ``reduce=``
#: parameter (and the CLI's ``--reduce``): ``"flat"`` merges all partial
#: results in one pass, ``"tree"`` merges them pairwise so the reduce is
#: O(log P) deep at large partition counts.  Defined alongside
#: :data:`BACKENDS` so argument validation stays import-light.
REDUCE_MODES = ("flat", "tree")

#: CLI-level partitioning axes (``--partition-by``): ``"entries"`` splits
#: by entry count (stride/blocks), ``"work"`` by estimated incidence work
#: (see :mod:`repro.parallel.partition`).
PARTITION_AXES = ("entries", "work")

#: Pair-state layouts accepted by :attr:`CopyParams.pair_layout`:
#: ``"dense"`` allocates flat arrays over the full ``n_sources ** 2``
#: key space, ``"sparse"`` compacts state to the observed pairs
#: (:mod:`repro.core.pairspace`), and ``"auto"`` picks dense below each
#: kernel's documented limit and sparse above it — with a logged
#: warning, never a silent fallback.  Defined alongside :data:`BACKENDS`
#: so validation stays NumPy-free.
PAIR_LAYOUTS = ("auto", "dense", "sparse")


@dataclass(frozen=True)
class CopyParams:
    """Immutable parameter bundle shared by every detector.

    The defaults are the values used in the paper's worked examples
    (Example 2.1: ``alpha = 0.1``, ``s = 0.8``, ``n = 50``).

    Attributes:
        alpha: prior probability of directed copying.
        s: copy selectivity (probability the copier copies a given item).
        n: number of false values per data item domain.
        accuracy_clamp: accuracies are clamped into
            ``[accuracy_clamp, 1 - accuracy_clamp]`` before any log/ratio
            computation so that scores stay finite (sources with accuracy
            exactly 0 or 1 would otherwise produce infinities).
        backend: score-accumulation backend.  ``"numpy"`` (the default
            since the conformance soak completed) routes PAIRWISE,
            INDEX and the parallel engine through the vectorized kernel
            (:mod:`repro.core.kernel`), which agrees with the reference
            to within float re-association error (property-tested at
            1e-9), and the early-terminating BOUND/BOUND+/HYBRID scans
            through the epoch-batched implementation
            (:mod:`repro.core.bound_kernel`), which is *bit-identical*
            to the reference — decisions, decision positions, cost
            counters and INCREMENTAL bookkeeping included.
            ``"python"`` selects the pure-Python reference loops — the
            paper-literal implementation that stays the conformance
            anchor forever (``repro conformance`` diffs every
            configuration against it; the golden fixtures pin it
            byte-for-byte).
        pair_layout: pair-state layout for the numpy kernels.  ``"auto"``
            (the default) keeps the dense flat-array fast path while
            ``n_sources ** 2`` fits under the kernel's documented limit
            and switches to the sparse observed-pair layout
            (:mod:`repro.core.pairspace`) beyond it, logging the switch;
            ``"dense"`` / ``"sparse"`` force a layout.  Both layouts are
            bit-identical for the bound family and agree at the usual
            1e-9 for the exhaustive/fusion kernels; the python backend
            ignores the knob (its dict state is inherently sparse).
    """

    alpha: float = 0.1
    s: float = 0.8
    n: int = 50
    accuracy_clamp: float = 0.005
    backend: str = "numpy"
    pair_layout: str = "auto"

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 0.5:
            raise ValueError(f"alpha must be in (0, 0.5), got {self.alpha}")
        if not 0.0 < self.s < 1.0:
            raise ValueError(f"s must be in (0, 1), got {self.s}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if not 0.0 < self.accuracy_clamp < 0.5:
            raise ValueError(
                f"accuracy_clamp must be in (0, 0.5), got {self.accuracy_clamp}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.pair_layout not in PAIR_LAYOUTS:
            raise ValueError(
                f"pair_layout must be one of {PAIR_LAYOUTS}, "
                f"got {self.pair_layout!r}"
            )

    @property
    def beta(self) -> float:
        """Prior probability of independence, ``1 - 2*alpha``."""
        return 1.0 - 2.0 * self.alpha

    @property
    def theta_cp(self) -> float:
        """Copying threshold ``ln(beta/alpha)`` (Section IV-A)."""
        return math.log(self.beta / self.alpha)

    @property
    def theta_ind(self) -> float:
        """No-copying threshold ``ln(beta/(2*alpha))`` (Section IV-A)."""
        return math.log(self.beta / (2.0 * self.alpha))

    def theta_cp_at(self, p_independent: float) -> float:
        """Copying threshold guaranteeing ``Pr(indep | Phi) <= p_independent``.

        Section IV-A's banded variant: to *conclude copying with
        confidence* (e.g. posterior independence below 0.1 rather than
        merely below 0.5), require either direction's lower bound to reach
        ``ln(beta (1-p) / (alpha p))``.  At ``p = 0.5`` this reduces to
        :attr:`theta_cp`.

        Raises:
            ValueError: if ``p_independent`` is not in (0, 1).
        """
        if not 0.0 < p_independent < 1.0:
            raise ValueError(
                f"p_independent must be in (0, 1), got {p_independent}"
            )
        return math.log(
            self.beta * (1.0 - p_independent) / (self.alpha * p_independent)
        )

    def theta_ind_at(self, p_independent: float) -> float:
        """No-copy threshold guaranteeing ``Pr(indep | Phi) > p_independent``.

        Both directions' upper bounds below
        ``ln(beta (1-p) / (2 alpha p))`` force the posterior independence
        probability above ``p`` (e.g. 0.9).  At ``p = 0.5`` this reduces
        to :attr:`theta_ind`.

        Raises:
            ValueError: if ``p_independent`` is not in (0, 1).
        """
        if not 0.0 < p_independent < 1.0:
            raise ValueError(
                f"p_independent must be in (0, 1), got {p_independent}"
            )
        return math.log(
            self.beta * (1.0 - p_independent) / (2.0 * self.alpha * p_independent)
        )

    @property
    def ln_one_minus_s(self) -> float:
        """``ln(1-s)``, the contribution of a differing data item (Eq. 8)."""
        return math.log(1.0 - self.s)

    def clamp_accuracy(self, accuracy: float) -> float:
        """Clamp an accuracy into the open interval the math requires."""
        low = self.accuracy_clamp
        high = 1.0 - self.accuracy_clamp
        if accuracy < low:
            return low
        if accuracy > high:
            return high
        return accuracy
