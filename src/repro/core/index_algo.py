"""INDEX — copy detection driven by the inverted index (Section III).

INDEX scans the index in processing order and maintains exact accumulated
scores for every pair of sources it encounters:

1. For each entry outside the tail ``E-bar`` and each pair of providers in
   the entry, add the entry's contribution to ``C->`` / ``C<-`` and bump
   the shared-value count ``n(S1, S2)``.
2. For tail entries, do the same but only for pairs already opened —
   pairs whose shared values all sit in the tail can never reach the
   copying region and are skipped outright.
3. After the scan, add the different-value penalty
   ``ln(1-s) * (l(S1,S2) - n(S1,S2))`` to every opened pair and apply
   Eq. (2).

INDEX produces *exactly* the same verdicts as PAIRWISE for every opened
pair (Proposition 3.5); skipped pairs are provably independent.  Its win
comes from never touching the (typically vast) majority of pairs that
share nothing, and from touching shared values once instead of per-pair
item scans.

Implementation note: the per-entry pair loop is the hottest code in the
library (it runs once per (pair, shared value) incidence), so Eq. (6) is
inlined with per-provider terms hoisted out of the inner loop and pair
state lives in flat lists keyed by a single integer.  The inlined math is
checked against :func:`repro.core.contribution.same_value_scores_both` by
the test suite.  With ``params.backend == "numpy"`` the whole scan is
instead delegated to the vectorized kernel (:mod:`repro.core.kernel`);
the Python loop below stays as the bit-exact reference.
"""

from __future__ import annotations

from math import log
from typing import Sequence

from ..data import Dataset
from .contribution import posterior
from .index import EntryOrdering, InvertedIndex
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision


def detect_index(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex | None = None,
    ordering: EntryOrdering = EntryOrdering.BY_CONTRIBUTION,
) -> DetectionResult:
    """Run the INDEX algorithm.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.
        index: a prebuilt index to reuse (must have been built from the
            same dataset/probabilities/accuracies); built here if omitted.
        ordering: entry ordering when the index is built here.  INDEX's
            results are order-independent; the knob exists for the
            ordering ablation (Fig. 3).

    Returns:
        Verdicts for every pair co-occurring in a non-tail entry.
    """
    if index is None:
        index = InvertedIndex.build(
            dataset, probabilities, accuracies, params, ordering=ordering
        )
    if params.backend == "numpy":
        return _detect_index_numpy(dataset, accuracies, params, index)
    n_sources = dataset.n_sources
    clamp = params.clamp_accuracy
    acc = [clamp(a) for a in accuracies]
    s = params.s
    one_minus_s = 1.0 - s
    inv_n = 1.0 / params.n
    tail_start = index.tail_start

    # state[pair_key] = [c_fwd, c_bwd, n_shared]; pair_key = s1*n_sources+s2
    state: dict[int, list[float]] = {}
    incidences = 0

    for position, entry in enumerate(index.entries):
        in_tail = position >= tail_start
        p = entry.probability
        q = 1.0 - p
        q_over_n = q * inv_n
        providers = entry.providers
        k = len(providers)
        # Hoist per-provider terms of Eqs. (3)-(4).
        accs = [acc[src] for src in providers]
        nots = [1.0 - a for a in accs]
        singles = [p * a + q * (1.0 - a) for a in accs]
        for i in range(k):
            s1 = providers[i]
            a1 = accs[i]
            na1 = nots[i]
            ps1 = singles[i]
            base = s1 * n_sources
            for j in range(i + 1, k):
                key = base + providers[j]
                cell = state.get(key)
                if cell is None:
                    if in_tail:
                        continue  # never opened outside the tail: skip
                    cell = [0.0, 0.0, 0.0]
                    state[key] = cell
                incidences += 1
                denom = p * a1 * accs[j] + q_over_n * na1 * nots[j]
                cell[0] += log(one_minus_s + s * singles[j] / denom)
                cell[1] += log(one_minus_s + s * ps1 / denom)
                cell[2] += 1.0

    ln_diff = params.ln_one_minus_s
    decisions: dict[tuple[int, int], PairDecision] = {}
    shared_items = index.shared_items
    for key, (c_fwd, c_bwd, n_shared) in state.items():
        pair = (key // n_sources, key % n_sources)
        n_diff = shared_items[pair] - int(n_shared)
        c_fwd += n_diff * ln_diff
        c_bwd += n_diff * ln_diff
        post = posterior(c_fwd, c_bwd, params)
        decisions[pair] = PairDecision(
            c_fwd=c_fwd,
            c_bwd=c_bwd,
            posterior=post,
            copying=post.copying,
            early=False,
        )

    cost = CostCounter(
        computations=2 * incidences + 2 * len(state),
        values_examined=incidences,
        pairs_considered=len(state),
    )
    return DetectionResult(
        method="index",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )


def _detect_index_numpy(
    dataset: Dataset,
    accuracies: Sequence[float],
    params: CopyParams,
    index: InvertedIndex,
) -> DetectionResult:
    """INDEX via the vectorized kernel; verdicts match the Python scan.

    Tail entries are scanned together with the rest; the skip rule is
    applied at reduction time by dropping pairs that never co-occur in a
    non-tail entry — equivalent to the sequential rule because the tail
    is processed last, so a pair is "already opened" at a tail entry
    exactly when some non-tail entry contains it.
    """
    from .kernel import decide_pairs, scan_columnar

    n_sources = dataset.n_sources
    cols = index.columnar_entries()
    table = scan_columnar(cols, accuracies, params, n_sources)
    decisions = decide_pairs(table, index.shared_items, params, require_main=True)
    # Mirror the Python scan's accounting: incidences of never-opened
    # (tail-only) pairs are skipped, not counted.
    kept_incidences = int(table.n_shared[table.saw_main].sum())
    cost = CostCounter(
        computations=2 * kept_incidences + 2 * len(decisions),
        values_examined=kept_incidences,
        pairs_considered=len(decisions),
    )
    return DetectionResult(
        method="index",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )
