"""PAIRWISE — the exhaustive baseline (Dong et al., VLDB 2009; Section II-B).

For every pair of sources, iterate over every data item they share,
accumulate the contribution scores ``C->`` and ``C<-`` (Eqs. 6 and 8), and
apply Eq. (2).  Complexity ``O(|D| |S|^2)`` per round — the bottleneck the
paper sets out to remove.

The implementation iterates the smaller claim set of each pair and probes
the larger one, which is the fastest exhaustive strategy available without
indexes; all of the paper's speed-ups are measured against this.

With ``params.backend == "numpy"`` the same totals are computed
columnarly: every multi-provider value contributes its provider-pair
triangle through the vectorized kernel, and the different-value penalty
``ln(1-s) * (l - n_same)`` is applied per pair from precomputed
shared-item counts.  The nested-loop path stays as the bit-exact
reference.
"""

from __future__ import annotations

from typing import Sequence

from ..data import Dataset
from .contribution import posterior, same_value_scores_both
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision


def detect_pairwise(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    shared_items=None,
) -> DetectionResult:
    """Run exhaustive pairwise copy detection.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.
        shared_items: precomputed ``l(S1, S2)`` counts to reuse (only
            consulted by the numpy backend; computed there if omitted).

    Returns:
        A :class:`DetectionResult` with a verdict for every pair of
        sources that shares at least one item.
    """
    if params.backend == "numpy":
        return _detect_pairwise_numpy(
            dataset, probabilities, accuracies, params, shared_items
        )
    cost = CostCounter()
    decisions: dict[tuple[int, int], PairDecision] = {}
    ln_diff = params.ln_one_minus_s
    n_sources = dataset.n_sources
    claims = dataset.claims

    for s1 in range(n_sources):
        claim1 = claims[s1]
        for s2 in range(s1 + 1, n_sources):
            claim2 = claims[s2]
            cost.pairs_considered += 1
            # Probe the smaller claim set against the larger.
            if len(claim2) < len(claim1):
                small, large = claim2, claim1
            else:
                small, large = claim1, claim2

            c_fwd = 0.0
            c_bwd = 0.0
            shared = 0
            for item_id, value_id in small.items():
                other_value = large.get(item_id)
                if other_value is None:
                    continue
                shared += 1
                cost.value_incidence()
                cost.score_update(2)
                if other_value == value_id:
                    fwd, bwd = same_value_scores_both(
                        probabilities[value_id], accuracies[s1], accuracies[s2], params
                    )
                    c_fwd += fwd
                    c_bwd += bwd
                else:
                    c_fwd += ln_diff
                    c_bwd += ln_diff

            if shared == 0:
                continue
            post = posterior(c_fwd, c_bwd, params)
            decisions[(s1, s2)] = PairDecision(
                c_fwd=c_fwd,
                c_bwd=c_bwd,
                posterior=post,
                copying=post.copying,
                early=False,
            )

    return DetectionResult(
        method="pairwise",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )


def _detect_pairwise_numpy(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    shared_items=None,
) -> DetectionResult:
    """PAIRWISE via the vectorized kernel; verdicts match the item scan.

    A pair's score decomposes into the same-value triangle contributions
    (accumulated by the kernel over every multi-provider value) plus
    ``ln(1-s)`` per shared item with differing values — so the per-pair
    item probing of the reference loop reduces to one columnar scan and
    one penalty broadcast.
    """
    import numpy as np

    from .kernel import (
        ColumnarEntries,
        PairTable,
        count_shared_items_columnar,
        decide_pairs,
        scan_columnar,
    )

    if shared_items is None:
        shared_items = count_shared_items_columnar(dataset)
    n_sources = dataset.n_sources
    cols = ColumnarEntries.from_value_groups(dataset, probabilities)
    table = scan_columnar(cols, accuracies, params, n_sources)
    # Pairs sharing items but never a value still get decided (their
    # score is pure penalty); splice zero-score rows into the table.
    decided_keys = set(table.keys.tolist())
    missing = [
        s1 * n_sources + s2
        for (s1, s2) in shared_items
        if s1 * n_sources + s2 not in decided_keys
    ]
    if missing:
        zeros = PairTable(
            n_sources=n_sources,
            keys=np.asarray(sorted(missing), dtype=np.int64),
            c_fwd=np.zeros(len(missing)),
            c_bwd=np.zeros(len(missing)),
            n_shared=np.zeros(len(missing), dtype=np.int64),
            saw_main=np.ones(len(missing), dtype=bool),
        )
        table = PairTable.merge([table, zeros], layout=params.pair_layout)
    decisions = decide_pairs(table, shared_items, params, require_main=False)
    total_shared = sum(shared_items.values())
    cost = CostCounter(
        computations=2 * total_shared,
        values_examined=total_shared,
        pairs_considered=n_sources * (n_sources - 1) // 2,
    )
    return DetectionResult(
        method="pairwise",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )
