"""PAIRWISE — the exhaustive baseline (Dong et al., VLDB 2009; Section II-B).

For every pair of sources, iterate over every data item they share,
accumulate the contribution scores ``C->`` and ``C<-`` (Eqs. 6 and 8), and
apply Eq. (2).  Complexity ``O(|D| |S|^2)`` per round — the bottleneck the
paper sets out to remove.

The implementation iterates the smaller claim set of each pair and probes
the larger one, which is the fastest exhaustive strategy available without
indexes; all of the paper's speed-ups are measured against this.
"""

from __future__ import annotations

from typing import Sequence

from ..data import Dataset
from .contribution import posterior, same_value_scores_both
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision


def detect_pairwise(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
) -> DetectionResult:
    """Run exhaustive pairwise copy detection.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.

    Returns:
        A :class:`DetectionResult` with a verdict for every pair of
        sources that shares at least one item.
    """
    cost = CostCounter()
    decisions: dict[tuple[int, int], PairDecision] = {}
    ln_diff = params.ln_one_minus_s
    n_sources = dataset.n_sources
    claims = dataset.claims

    for s1 in range(n_sources):
        claim1 = claims[s1]
        for s2 in range(s1 + 1, n_sources):
            claim2 = claims[s2]
            cost.pairs_considered += 1
            # Probe the smaller claim set against the larger.
            if len(claim2) < len(claim1):
                small, large = claim2, claim1
            else:
                small, large = claim1, claim2

            c_fwd = 0.0
            c_bwd = 0.0
            shared = 0
            for item_id, value_id in small.items():
                other_value = large.get(item_id)
                if other_value is None:
                    continue
                shared += 1
                cost.value_incidence()
                cost.score_update(2)
                if other_value == value_id:
                    fwd, bwd = same_value_scores_both(
                        probabilities[value_id], accuracies[s1], accuracies[s2], params
                    )
                    c_fwd += fwd
                    c_bwd += bwd
                else:
                    c_fwd += ln_diff
                    c_bwd += ln_diff

            if shared == 0:
                continue
            post = posterior(c_fwd, c_bwd, params)
            decisions[(s1, s2)] = PairDecision(
                c_fwd=c_fwd,
                c_bwd=c_bwd,
                posterior=post,
                copying=post.copying,
                early=False,
            )

    return DetectionResult(
        method="pairwise",
        n_sources=n_sources,
        decisions=decisions,
        cost=cost,
    )
