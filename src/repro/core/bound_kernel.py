"""Epoch-batched NumPy backend for the BOUND/BOUND+/HYBRID scans.

The early-terminating scans of Section IV are sequential *per pair*: each
shared-value incidence may update a pair's running scores, fire a BOUND+
timer, and conclude the pair on the spot.  They are, however, only weakly
sequential *across* pairs — and between two consecutive bound evaluations
of one pair, its state evolves by plain summation.  This module exploits
that structure to batch the scan without changing a single observable bit:

1. **Epochs.**  The ordered entry stream is processed in fixed-size
   blocks.  Within an epoch, incidences are expanded columnarly
   (:func:`repro.core.kernel.expand_incidences_ordered` — entry order is
   preserved so per-pair addition order matches the reference).
2. **Exact contributions.**  The Eq. (6) log *arguments* are computed
   with :func:`repro.core.kernel.score_incidence_args`, which mirrors the
   reference's scalar arithmetic expression by expression; the log itself
   is taken with ``math.log`` per element because ``np.log``'s SIMD path
   can differ from ``math.log`` by an ulp.  Contributions are therefore
   bit-equal to the pure-Python scan's.
3. **Compact per-pair state.**  ``(n0, C0_fwd, C0_bwd)``, the BOUND+
   timer milestones and the pair lifecycle live in flat arrays indexed
   by :class:`repro.core.pairspace.PairSpace` slots — the full
   ``s1 * n_sources + s2`` key space in the dense layout, one slot per
   *observed* pair (every key in ``index.shared_items``) in the sparse
   one.  Bulk accumulation uses ``np.add.at`` / ``np.bincount``, whose
   scatter-adds apply in stream order — an exact left fold, identical
   to the reference's ``+=`` sequence.  Sparse slots are the ranks of
   the sorted observed keys, so slot order is key order and every
   ordering-sensitive step (stable sorts, ``np.unique`` grouping,
   ascending-slot finalization) is identical between the layouts: the
   bit-exactness contract below holds for both.
4. **Epoch-boundary screening.**  At each epoch boundary the pairs that
   could possibly have evaluated a bound inside the epoch are identified
   vectorially:

   * with timers (BOUND+/HYBRID) the triggers are integer comparisons on
     ``n0`` and the per-source scan counts, evaluated conservatively at
     their epoch-end values — exact, no tolerance needed;
   * without timers (BOUND) a pair may conclude *copying* iff its
     epoch-end ``C^min`` reaches ``theta_cp`` (``C^min`` is monotone
     nondecreasing along the scan, so the epoch-end value is the epoch
     maximum), and may conclude *no-copying* only if a conservative lower
     bound on its in-epoch ``C^max`` drops below ``theta_ind``; both
     screens carry a small absolute slack so float re-association in the
     screen itself can never hide a conclusion.

5. **Exact replay.**  Screened-in pairs (the few whose timers fire or
   that approach a threshold) are *replayed* through the reference's
   per-incidence logic in scalar Python, using the precomputed exact
   contributions — so their recorded decision position is the first entry
   that crosses the threshold, their concluding bound values, timers,
   cost counters and INCREMENTAL bookkeeping are bit-identical to the
   pure-Python scan.  Screened-out pairs take the bulk path: their state
   after the epoch is the same left-fold sum the reference would have
   produced, and (for BOUND) their evaluation count is added in closed
   form.

HYBRID's low-overlap pairs (``l <= hybrid_threshold``) skip bound upkeep
entirely: they are accumulated with the same exact contributions in
*exact mode*, mirroring the ``detect_index``-style flat cells of the
reference, and resolve at scan end.

The net effect: decisions, decision positions, ``CostCounter`` fields and
:class:`~repro.core.bound.PairBookkeeping` — including the stored float
scores — are bit-identical to ``backend="python"``, while the per-entry
Python interpreter work collapses to two ``math.log`` calls per *live*
incidence plus a handful of vector operations per epoch.

State sizing: ``CopyParams.pair_layout`` picks the layout — ``"auto"``
keeps the dense flat key space while ``n_sources ** 2`` fits under
:data:`DENSE_STATE_LIMIT` and switches (with a logged warning) to the
sparse observed-pair layout beyond it.  The former behaviour — silently
falling back to the pure-Python reference scan above the limit — is
retired: big worlds now run vectorized.
"""

from __future__ import annotations

from itertools import chain
from math import exp, log
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .contribution import CopyPosterior
from .kernel import (
    clamp_accuracies,
    expand_incidences_ordered,
    score_incidence_args,
)
from .pairspace import PairSpace, encode_pair_keys, resolve_pair_layout
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data import Dataset
    from .index import InvertedIndex

# Pair lifecycle in the dense status array.
_UNSEEN = 0
_ACTIVE = 1
_EXACT = 2
_DONE_COPY = 3
_DONE_NOCOPY = 4

#: Entries per epoch when the caller does not choose.  Small enough that
#: replay windows stay short (a concluding pair is replayed only within
#: the epoch it concludes in), large enough that the per-epoch vector
#: overhead amortises; ``benchmarks/bench_bound_backend.py`` sweeps the
#: knob and 128 sits at the sweet spot on the dense reference world.
DEFAULT_EPOCH_SIZE = 128

#: Largest flat key space (``n_sources ** 2``) the ``"auto"`` layout
#: allocates dense per-pair state arrays for (eight dense arrays at this
#: limit cost ~64 MB); larger worlds switch — with a logged warning —
#: to the sparse observed-pair layout, whose state is bounded by
#: ``len(index.shared_items)`` instead.  (Before the sparse layer this
#: limit triggered a silent fallback to the pure-Python scan.)
DENSE_STATE_LIMIT = 1 << 20

#: Absolute slack on the BOUND conclusion screens.  The screens evaluate
#: mathematically-conservative bounds, but with float re-association; the
#: slack (orders of magnitude above the achievable rounding error, orders
#: of magnitude below any meaningful score gap) guarantees a pair within
#: reach of a threshold is always replayed — and replay decides exactly.
SCREEN_MARGIN = 1e-6


def _cumcount(values: np.ndarray) -> np.ndarray:
    """0-based rank of each element among its equals, in stream order."""
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_v = values[order]
    starts = np.r_[0, np.nonzero(np.diff(sorted_v))[0] + 1]
    sizes = np.diff(np.r_[starts, n])
    rank_sorted = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    out = np.empty(n, dtype=np.int64)
    out[order] = rank_sorted
    return out


class EpochScan:
    """Mutable scan state for one epoch-batched pass over an index.

    Drive it with :meth:`run`, then read the outcome with
    :meth:`finalize` (full-scan results) or :meth:`raw_state` (the
    mid-scan per-pair accumulators the parallel engine's prefix
    partitioning consumes).
    """

    def __init__(
        self,
        dataset: "Dataset",
        accuracies: Sequence[float],
        params: CopyParams,
        index: "InvertedIndex",
        theta_cp: float,
        theta_ind: float,
        use_timers: bool,
        hybrid_threshold: int,
        track_bookkeeping: bool,
        epoch_size: int | None = None,
    ) -> None:
        self.n_sources = dataset.n_sources
        layout = resolve_pair_layout(
            params.pair_layout,
            self.n_sources,
            DENSE_STATE_LIMIT,
            "bound_kernel.EpochScan",
        )
        if layout == "dense":
            self.space = PairSpace.dense(self.n_sources)
            self._l_by_slot = None
        else:
            # Every pair the entry stream can produce shares at least one
            # item, so the shared-items universe covers every live slot.
            # Flatten the dict once at C speed (fromiter over chained
            # keys and over values) and sort: the keys become the slot
            # universe and the aligned l(S1, S2) counts ride along, so
            # opening a pair later never touches the Python dict.
            shared = index.shared_items
            flat = np.fromiter(
                chain.from_iterable(shared.keys()),
                dtype=np.int64,
                count=2 * len(shared),
            )
            keys = flat[0::2] * np.int64(dataset.n_sources) + flat[1::2]
            l_values = np.fromiter(
                shared.values(), dtype=np.int64, count=len(shared)
            )
            order = np.argsort(keys, kind="stable")
            self.space = PairSpace(self.n_sources, "sparse", keys[order])
            self._l_by_slot = l_values[order]
        self.index = index
        self.entries = index.entries
        self.tail_start = index.tail_start
        self.suffix_list = index.suffix_max
        self.suffix_arr = np.asarray(index.suffix_max, dtype=np.float64)
        self.shared_items = index.shared_items
        self.ips = np.asarray(index.items_per_source, dtype=np.int64)
        self.params = params
        self.theta_cp = theta_cp
        self.theta_ind = theta_ind
        self.use_timers = use_timers
        self.hybrid_threshold = hybrid_threshold
        self.track = track_bookkeeping
        self.ln_diff = params.ln_one_minus_s
        # Hoisted Eq. (2) constants: the decision materialization below
        # replays contribution.posterior's arithmetic term for term, so
        # the two logs can be taken once without moving a single bit.
        self._log_alpha = log(params.alpha)
        self._log_beta = log(params.beta)
        self.acc = clamp_accuracies(accuracies, params)
        # Factorized accuracies for the grid-deduplicated log path: when
        # few distinct accuracy values exist (synthetic worlds often use
        # one), every incidence's log argument is one of
        # (entry, acc, acc) grid cells — math.log per cell, gather per
        # incidence, bit-identical to the direct computation.
        self.acc_unique, self.acc_ids = np.unique(self.acc, return_inverse=True)
        self.epoch_size = (
            DEFAULT_EPOCH_SIZE
            if epoch_size is None
            else max(int(epoch_size), 1)
        )
        space = self.space
        self.status = space.zeros(dtype=np.int8)
        self.n0 = space.zeros(dtype=np.int64)
        self.c0_fwd = space.zeros()
        self.c0_bwd = space.zeros()
        # BOUND+ timer milestones; integer-valued but stored as float64
        # (math.ceil products stay well under 2**53, so comparisons
        # against integer counts are exact).
        self.min_check_at = space.zeros()
        self.max_check_n1 = space.zeros()
        self.max_check_n2 = space.zeros()
        self.l_arr = space.zeros(dtype=np.int64)
        self.n_after = space.zeros(dtype=np.int64)
        #: queued early conclusions, one compact array batch per epoch
        #: flush: (slots, c_fwd, c_bwd, a0, a1, a2, is_min, positions,
        #: n_before).  Decision objects are materialized once, lazily —
        #: building ~1 dataclass per pair inside the scan loop costs
        #: more than the scan itself on large sparse worlds.
        self._done_batches: list[tuple[np.ndarray, ...]] = []
        self._done_cache: dict[int, tuple[PairDecision, int, int]] | None = None
        self.n_src = np.zeros(self.n_sources, dtype=np.int64)
        self.incidences = 0
        self.score_updates = 0
        self.bound_evals = 0

    # ------------------------------------------------------------------
    # Scan driver
    # ------------------------------------------------------------------
    def run(self, stop_at: int | None = None) -> None:
        """Scan entries ``[0, stop_at)`` (the whole index by default)."""
        end = len(self.entries) if stop_at is None else stop_at
        for e0 in range(0, end, self.epoch_size):
            self._run_epoch(e0, min(e0 + self.epoch_size, end))

    def _run_epoch(self, e0: int, e1: int) -> None:
        rows = self.entries[e0:e1]
        n_rows = e1 - e0
        counts = np.fromiter(
            (len(entry.providers) for entry in rows), np.int64, count=n_rows
        )
        offsets = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        prov = np.fromiter(
            (src for entry in rows for src in entry.providers),
            np.int64,
            count=int(offsets[-1]),
        )
        probs_e = np.fromiter(
            (entry.probability for entry in rows), np.float64, count=n_rows
        )
        # Per-slot scan counts n(S) *after* the owning entry's bump —
        # the value the reference reads at that entry's pair loop.
        nsrc_slot = self.n_src[prov] + _cumcount(prov) + 1
        self.n_src += np.bincount(prov, minlength=self.n_sources)

        row, islot, jslot = expand_incidences_ordered(offsets, prov)
        if len(row) == 0:
            return
        src1 = prov[islot]
        src2 = prov[jslot]
        slots = self.space.slots(
            encode_pair_keys(src1, src2, self.n_sources)
        )
        st = self.status[slots]

        # --- open pairs first seen in a non-tail entry ----------------
        unseen = st == _UNSEEN
        if unseen.any():
            new_slots, first_idx = np.unique(slots[unseen], return_index=True)
            opened = (row[unseen][first_idx] + e0) < self.tail_start
            open_slots = new_slots[opened]
            if len(open_slots):
                if self._l_by_slot is not None:
                    l_new = self._l_by_slot[open_slots]
                else:
                    shared = self.shared_items
                    s1_o, s2_o = self.space.decode(open_slots)
                    l_new = np.fromiter(
                        (
                            shared[pair]
                            for pair in zip(s1_o.tolist(), s2_o.tolist())
                        ),
                        np.int64,
                        count=len(open_slots),
                    )
                self.l_arr[open_slots] = l_new
                self.status[open_slots] = np.where(
                    l_new <= self.hybrid_threshold, _EXACT, _ACTIVE
                ).astype(np.int8)
                st = self.status[slots]

        # --- count post-decision incidences (INCREMENTAL bookkeeping) -
        done_mask = st >= _DONE_COPY
        if done_mask.any():
            np.add.at(self.n_after, slots[done_mask], 1)

        # --- exact contributions for live incidences ------------------
        live = (st == _ACTIVE) | (st == _EXACT)
        if not live.any():
            return
        lrow = row[live]
        li = islot[live]
        lj = jslot[live]
        lk = slots[live]
        ls = st[live]
        fwd, bwd = self._exact_contributions(
            probs_e, lrow, src1[live], src2[live]
        )

        exact_mask = ls == _EXACT
        if exact_mask.any():
            ek = lk[exact_mask]
            np.add.at(self.c0_fwd, ek, fwd[exact_mask])
            np.add.at(self.c0_bwd, ek, bwd[exact_mask])
            np.add.at(self.n0, ek, 1)
            n_exact = int(exact_mask.sum())
            self.incidences += n_exact
            self.score_updates += 2 * n_exact

        act_mask = ls == _ACTIVE
        if not act_mask.any():
            return
        ak = lk[act_mask]
        act_fwd = fwd[act_mask]
        act_bwd = bwd[act_mask]
        # Per-slot aggregation: the slot space is capped (dense by
        # DENSE_STATE_LIMIT, sparse by the observed pair count), so
        # bincount scatter beats a sort-based np.unique.
        ns = self.space.n_slots
        cnt_dense = np.bincount(ak, minlength=ns)
        uk = np.nonzero(cnt_dense)[0]
        cnt = cnt_dense[uk]
        n0_u = self.n0[uk]
        n0_end = n0_u + cnt
        s1_u, s2_u = self.space.decode(uk)

        if self.use_timers:
            # Integer trigger screen at conservative (epoch-end) counts:
            # a timer can only have fired if it fires against the largest
            # counts the epoch reaches.  Replay re-checks each incidence
            # against the counts of *its* position, exactly.
            replay_u = (
                (n0_end >= self.min_check_at[uk])
                | (self.n_src[s1_u] >= self.max_check_n1[uk])
                | (self.n_src[s2_u] >= self.max_check_n2[uk])
            )
        else:
            l_u = self.l_arr[uk].astype(np.float64)
            c0f_u = self.c0_fwd[uk]
            c0b_u = self.c0_bwd[uk]
            sum_f = np.bincount(ak, weights=act_fwd, minlength=ns)[uk]
            sum_b = np.bincount(ak, weights=act_bwd, minlength=ns)[uk]
            # C^min is monotone nondecreasing, so the epoch-end value is
            # the epoch maximum: no copy conclusion below theta_cp.
            end_min = (
                np.maximum(c0f_u + sum_f, c0b_u + sum_b)
                + (l_u - n0_end) * self.ln_diff
            )
            min_cand = end_min >= self.theta_cp - SCREEN_MARGIN
            # Conservative lower bound on any in-epoch C^max: h at its
            # epoch ceiling, the unseen-entry bound M at its epoch
            # extremes (suffix_max is nonincreasing).
            h_raw = np.maximum(
                self.n_src[s1_u] * l_u / self.ips[s1_u],
                self.n_src[s2_u] * l_u / self.ips[s2_u],
            )
            h_ub = np.minimum(np.maximum(h_raw, n0_end), l_u)
            m_big = self.suffix_list[e0 + 1]
            m_small = self.suffix_list[e1]
            lower_max = (
                np.maximum(c0f_u, c0b_u)
                + (h_ub - n0_u) * self.ln_diff
                - h_ub * m_big
                + l_u * m_small
            )
            max_cand = lower_max < self.theta_ind + SCREEN_MARGIN
            replay_u = min_cand | max_cand

        replay_dense = np.zeros(ns, dtype=bool)
        replay_dense[uk[replay_u]] = True
        inc_replay = replay_dense[ak]
        bulk = ~inc_replay
        n_bulk = int(bulk.sum())
        if n_bulk:
            bk = ak[bulk]
            np.add.at(self.c0_fwd, bk, act_fwd[bulk])
            np.add.at(self.c0_bwd, bk, act_bwd[bulk])
            bulk_u = ~replay_u
            self.n0[uk[bulk_u]] += cnt[bulk_u]
            self.incidences += n_bulk
            self.score_updates += 2 * n_bulk
            if not self.use_timers:
                # BOUND evaluates both bounds at every incidence; a bulk
                # pair concludes at none of them, so the count is closed
                # form.
                self.bound_evals += 2 * n_bulk
        if n_bulk < len(ak):
            arow = lrow[act_mask]
            ai = li[act_mask]
            aj = lj[act_mask]
            ridx = np.nonzero(inc_replay)[0]
            rk = ak[ridx]
            order = np.argsort(rk, kind="stable")
            ridx = ridx[order]
            rk = rk[order]
            # Group boundaries of the key-sorted replay stream.
            cuts = np.nonzero(np.diff(rk))[0] + 1
            starts = np.r_[0, cuts]
            ends = np.r_[cuts, np.int64(len(rk))]
            self._replay(
                rk[starts],
                starts,
                ends,
                arow[ridx] + e0,
                act_fwd[ridx],
                act_bwd[ridx],
                nsrc_slot[ai[ridx]],
                nsrc_slot[aj[ridx]],
            )

    def _exact_contributions(
        self,
        probs_e: np.ndarray,
        lrow: np.ndarray,
        s1: np.ndarray,
        s2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq. (6) per live incidence, bit-equal to the scalar reference.

        The log arguments come out of
        :func:`~repro.core.kernel.score_incidence_args` (exact
        arithmetic); the logs themselves must be ``math.log`` (NumPy's
        SIMD log can stray by an ulp).  When the distinct accuracy count
        is small, arguments are computed once per
        ``(entry, accuracy, accuracy)`` grid cell and gathered per
        incidence — identical floats in, identical floats out, at a
        fraction of the per-incidence log cost.
        """
        n_acc = len(self.acc_unique)
        n_rows = len(probs_e)
        n_inc = len(lrow)
        if n_acc * n_acc * n_rows < n_inc:
            grid_f, grid_b = score_incidence_args(
                probs_e[:, None, None],
                self.acc_unique[None, :, None],
                self.acc_unique[None, None, :],
                self.params,
            )
            flat_f = grid_f.ravel()
            flat_b = grid_b.ravel()
            logs_f = np.fromiter(
                map(log, flat_f.tolist()), np.float64, count=len(flat_f)
            )
            logs_b = np.fromiter(
                map(log, flat_b.tolist()), np.float64, count=len(flat_b)
            )
            cell = (
                lrow * (n_acc * n_acc)
                + self.acc_ids[s1] * n_acc
                + self.acc_ids[s2]
            )
            return logs_f[cell], logs_b[cell]
        arg_f, arg_b = score_incidence_args(
            probs_e[lrow], self.acc[s1], self.acc[s2], self.params
        )
        fwd = np.fromiter(map(log, arg_f.tolist()), np.float64, count=n_inc)
        bwd = np.fromiter(map(log, arg_b.tolist()), np.float64, count=n_inc)
        return fwd, bwd

    # ------------------------------------------------------------------
    # Exact replay (trajectory-vectorized reference inner loop)
    # ------------------------------------------------------------------
    def _replay(
        self,
        gkeys: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        pos: np.ndarray,
        fwd: np.ndarray,
        bwd: np.ndarray,
        n1: np.ndarray,
        n2: np.ndarray,
    ) -> None:
        """Exact replay of the screened-in pairs, trajectory-first.

        A pair's ``(n0, C0)`` trajectory over its epoch incidences does
        not depend on which bounds get evaluated along the way — so every
        per-incidence quantity the reference's inner loop derives
        (``C^min``/``C^max`` in both directions, the conclusion flags,
        and the *would-be* post-evaluation timer milestones) is computed
        columnarly first, with arithmetic mirroring the scalar reference
        (the seeded row-cumsum is an exact left fold, like ``np.add.at``).
        What remains sequential is only the decision of *which* cells
        evaluate: trivial for BOUND (every cell — the first concluding
        cell comes straight out of ``argmax``), a cheap precomputed-value
        walk per pair for the BOUND+ timer chain.

        Groups (``[starts, ends)`` slices of the key-sorted incidence
        streams) are bucketed by power-of-two length so the padded
        per-bucket matrices waste at most half their cells.
        """
        glen = ends - starts
        max_len = int(glen.max())
        size = 1
        while True:
            sel = np.nonzero((glen > size // 2) & (glen <= size))[0]
            if len(sel):
                self._replay_bucket(
                    gkeys[sel], starts[sel], glen[sel], size,
                    pos, fwd, bwd, n1, n2,
                )
            if size >= max_len:
                break
            size *= 2

    def _replay_bucket(
        self,
        keys_b: np.ndarray,
        starts_b: np.ndarray,
        len_b: np.ndarray,
        width: int,
        pos: np.ndarray,
        fwd: np.ndarray,
        bwd: np.ndarray,
        n1: np.ndarray,
        n2: np.ndarray,
    ) -> None:
        n_groups = len(keys_b)
        col = np.arange(width, dtype=np.int64)
        idx = np.minimum(starts_b[:, None] + col, (starts_b + len_b - 1)[:, None])
        valid = col < len_b[:, None]
        fwd_m = np.where(valid, fwd[idx], 0.0)
        bwd_m = np.where(valid, bwd[idx], 0.0)
        pos_m = pos[idx]  # padded cells repeat the last position: harmless
        n1_m = n1[idx]
        n2_m = n2[idx]
        next_max = self.suffix_arr[pos_m + 1]
        ln_diff = self.ln_diff
        n00 = self.n0[keys_b]
        # Seeded cumulative sums: np.cumsum is a left fold, so row k holds
        # exactly ((c0 + x_1) + x_2) + ... — the reference's += order
        # (padding zeros are exact no-ops).
        c0f_m = np.cumsum(
            np.concatenate([self.c0_fwd[keys_b][:, None], fwd_m], axis=1), axis=1
        )[:, 1:]
        c0b_m = np.cumsum(
            np.concatenate([self.c0_bwd[keys_b][:, None], bwd_m], axis=1), axis=1
        )[:, 1:]
        n0_m = n00[:, None] + col + 1
        l_m = self.l_arr[keys_b][:, None]
        # --- C^min trajectory (Eq. 9) ---------------------------------
        penalty = (l_m - n0_m) * ln_diff
        cmin_f = c0f_m + penalty
        cmin_b = c0b_m + penalty
        best_min = np.maximum(cmin_f, cmin_b)
        concl_min = best_min >= self.theta_cp
        # --- C^max trajectory (Eq. 10) --------------------------------
        s1_b, s2_b = self.space.decode(keys_b)
        ips1 = self.ips[s1_b][:, None]
        ips2 = self.ips[s2_b][:, None]
        h = np.maximum(n1_m * l_m / ips1, n2_m * l_m / ips2)
        h = np.minimum(np.maximum(h, n0_m), l_m)
        spread = (h - n0_m) * ln_diff + (l_m - h) * next_max
        cmax_f = c0f_m + spread
        cmax_b = c0b_m + spread
        worst_max = np.maximum(cmax_f, cmax_b)
        concl_max = worst_max < self.theta_ind

        if not self.use_timers:
            # BOUND: both bounds evaluate at every incidence, so the
            # concluding cell is simply the first flagged one.
            concl_any = (concl_min | concl_max) & valid
            has = concl_any.any(axis=1)
            kc = np.argmax(concl_any, axis=1)
            rows = np.arange(n_groups)
            stop = np.where(has, kc, len_b - 1)
            active = np.where(has, kc + 1, len_b)
            min_concluded = concl_min[rows, kc] & has
            n_active = int(active.sum())
            self.incidences += n_active
            self.score_updates += 2 * n_active
            # 2 evaluations per non-concluding incidence; the concluding
            # one stops after 1 when C^min decides.
            self.bound_evals += int(
                (2 * active - np.where(has, np.where(min_concluded, 1, 0), 0)).sum()
            )
            self.n0[keys_b] = n0_m[rows, stop]
            self.c0_fwd[keys_b] = c0f_m[rows, stop]
            self.c0_bwd[keys_b] = c0b_m[rows, stop]
            if has.any():
                hrows = np.nonzero(has)[0]
                hkeys = keys_b[hrows]
                hkc = kc[hrows]
                is_min = min_concluded[hrows]
                self.status[hkeys] = np.where(
                    is_min, _DONE_COPY, _DONE_NOCOPY
                ).astype(np.int8)
                self.n_after[hkeys] += len_b[hrows] - hkc - 1
                self._record_conclusions(
                    hrows, hkc, is_min, keys_b, cmin_f, cmin_b,
                    cmax_f, cmax_b, pos_m, n0_m,
                )
            return

        # BOUND+: walk the timer chain over precomputed cell values.  The
        # conclusion flags ride along *inside* the milestone arrays as -1
        # markers (real milestones are always >= 0), so the chain reads
        # five matrices, not seven.
        step = next_max - ln_diff
        min_next = n0_m + np.maximum(np.ceil((self.theta_cp - best_min) / step), 1.0)
        min_next = np.where(concl_min, -1.0, min_next)
        needed = np.ceil((worst_max - self.theta_ind) / step) + (h - n0_m)
        mx1_new = np.where(concl_max, -1.0, np.ceil(needed * ips1 / l_m))
        mx2_new = np.ceil(needed * ips2 / l_m)
        min_next_l = min_next.tolist()
        mx1_l = mx1_new.tolist()
        mx2_l = mx2_new.tolist()
        n1_l = n1_m.tolist()
        n2_l = n2_m.tolist()
        n00_l = n00.tolist()
        len_l = len_b.tolist()
        m_out = self.min_check_at[keys_b].tolist()
        x1_out = self.max_check_n1[keys_b].tolist()
        x2_out = self.max_check_n2[keys_b].tolist()
        stops = [0] * n_groups
        kinds = [0] * n_groups  # 0 active, 1 copy, 2 no-copy
        active_total = 0
        evals = 0
        for g in range(n_groups):
            m = m_out[g]
            x1 = x1_out[g]
            x2 = x2_out[g]
            n0k = n00_l[g]
            length = len_l[g]
            mn_g = min_next_l[g]
            mx1_g = mx1_l[g]
            mx2_g = mx2_l[g]
            r1 = n1_l[g]
            r2 = n2_l[g]
            kind = 0
            k = 0
            while k < length:
                n0k += 1
                if n0k >= m:
                    evals += 1
                    m = mn_g[k]
                    if m < 0.0:
                        kind = 1
                        break
                if r1[k] >= x1 or r2[k] >= x2:
                    evals += 1
                    x1 = mx1_g[k]
                    if x1 < 0.0:
                        kind = 2
                        break
                    x2 = mx2_g[k]
                k += 1
            if kind:
                stops[g] = k
                kinds[g] = kind
                active_total += k + 1
            else:
                stops[g] = length - 1
                active_total += length
            m_out[g] = m
            x1_out[g] = x1
            x2_out[g] = x2
        self.incidences += active_total
        self.score_updates += 2 * active_total
        self.bound_evals += evals
        rows = np.arange(n_groups)
        stop = np.asarray(stops, dtype=np.int64)
        self.n0[keys_b] = n0_m[rows, stop]
        self.c0_fwd[keys_b] = c0f_m[rows, stop]
        self.c0_bwd[keys_b] = c0b_m[rows, stop]
        self.min_check_at[keys_b] = np.asarray(m_out)
        self.max_check_n1[keys_b] = np.asarray(x1_out)
        self.max_check_n2[keys_b] = np.asarray(x2_out)
        kind_arr = np.asarray(kinds)
        concluded = kind_arr > 0
        if concluded.any():
            hrows = np.nonzero(concluded)[0]
            hkeys = keys_b[hrows]
            is_min = kind_arr[hrows] == 1
            self.status[hkeys] = np.where(
                is_min, _DONE_COPY, _DONE_NOCOPY
            ).astype(np.int8)
            self.n_after[hkeys] += len_b[hrows] - stop[hrows] - 1
            self._record_conclusions(
                hrows, stop[hrows], is_min, keys_b, cmin_f, cmin_b,
                cmax_f, cmax_b, pos_m, n0_m,
            )

    def _record_conclusions(
        self,
        rows: np.ndarray,
        cells: np.ndarray,
        is_min: np.ndarray,
        keys_b: np.ndarray,
        cmin_f: np.ndarray,
        cmin_b: np.ndarray,
        cmax_f: np.ndarray,
        cmax_b: np.ndarray,
        pos_m: np.ndarray,
        n0_m: np.ndarray,
    ) -> None:
        """Queue early verdicts for concluded (row, cell) pairs.

        Only compact arrays are stored here — the hot scan never builds
        a Python object per conclusion.  ``finalize`` (or the ``done``
        property) materializes :class:`PairDecision` objects exactly
        once.  contribution.posterior's additions, max, and shift
        subtractions are lifted into numpy: those operations are IEEE
        order-independent (max of finite floats, subtract of the same
        operands), so the scalars later fed to ``exp`` — and therefore
        every float stored — match the reference bit for bit.
        """
        la = self._log_alpha
        lb = self._log_beta
        c_fwd = np.where(is_min, cmin_f[rows, cells], cmax_f[rows, cells])
        c_bwd = np.where(is_min, cmin_b[rows, cells], cmax_b[rows, cells])
        t1 = la + c_fwd
        t2 = la + c_bwd
        shift = np.maximum(np.maximum(t1, t2), lb)
        self._done_batches.append((
            keys_b[rows], c_fwd, c_bwd,
            lb - shift, t1 - shift, t2 - shift,
            is_min, pos_m[rows, cells], n0_m[rows, cells],
        ))
        self._done_cache = None

    @property
    def done(self) -> dict[int, tuple[PairDecision, int, int]]:
        """Concluded pairs: slot -> (decision, decision_pos, n_before).

        Materialized lazily from the queued array batches; the scan
        itself never pays for decision-object construction.
        """
        if self._done_cache is None:
            self._done_cache = self._materialize_done()
        return self._done_cache

    def _materialize_done(self) -> dict[int, tuple[PairDecision, int, int]]:
        done: dict[int, tuple[PairDecision, int, int]] = {}
        # The frozen-dataclass __init__ costs ~1us per decision in
        # object.__setattr__ calls; at one decision per concluded pair
        # that dominates, so construction goes through __new__ +
        # __dict__ directly.  Field values, __eq__, and pickling are
        # unaffected.
        new_decision = object.__new__
        new_posterior = tuple.__new__
        for batch in self._done_batches:
            keys, c_fwd, c_bwd, a0, a1, a2, is_min, positions, n_before = batch
            keys_l = keys.tolist()
            cf_l = c_fwd.tolist()
            cb_l = c_bwd.tolist()
            a0_l = a0.tolist()
            a1_l = a1.tolist()
            a2_l = a2.tolist()
            pos_l = positions.tolist()
            nb_l = n_before.tolist()
            for i, copying in enumerate(is_min.tolist()):
                e0 = exp(a0_l[i])
                e1 = exp(a1_l[i])
                e2 = exp(a2_l[i])
                total = e0 + e1 + e2
                decision = new_decision(PairDecision)
                decision.__dict__.update({
                    "c_fwd": cf_l[i],
                    "c_bwd": cb_l[i],
                    "posterior": new_posterior(
                        CopyPosterior, (e0 / total, e1 / total, e2 / total)
                    ),
                    "copying": copying,
                    "early": True,
                })
                done[keys_l[i]] = (decision, pos_l[i], nb_l[i])
        return done

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def finalize(self, method_name: str):
        """Step IV: resolve surviving pairs exactly; assemble the result.

        Returns:
            ``(result, bookkeeping)`` matching the reference scan's
            values bit for bit (bookkeeping ``None`` unless tracked).
        """
        end_position = len(self.entries)
        cost = CostCounter()
        cost.values_examined = self.incidences
        cost.computations = self.score_updates + self.bound_evals
        decisions: dict[tuple[int, int], PairDecision] = {}
        bookkeeping = {} if self.track else None
        n = self.n_sources
        ln_diff = self.ln_diff
        if bookkeeping is not None:
            from .bound import PairBookkeeping
        live_slots = np.nonzero(self.status)[0]
        status_live = self.status[live_slots]
        cost.pairs_considered += len(live_slots)
        la = self._log_alpha
        lb = self._log_beta
        if bookkeeping is None:
            # Fast path: the scan queued concluded pairs as compact
            # array batches; survivors (active/exact) get the same
            # vectorized posterior-argument treatment (IEEE
            # order-independent ops, bit-identical scalars), then one
            # key-sorted pass materializes every PairDecision exactly
            # once.  Ascending keys reproduce the dense path's dict
            # population order.
            surv_idx = np.nonzero(status_live <= _EXACT)[0]
            parts = [
                (b[0], b[1], b[2], b[3], b[4], b[5], b[6].astype(np.int8))
                for b in self._done_batches
            ]
            if len(surv_idx):
                cost.score_update(2 * len(surv_idx))
                surv_keys = live_slots[surv_idx]
                penalty = (
                    self.l_arr[surv_keys] - self.n0[surv_keys]
                ) * ln_diff
                c_fwd_s = self.c0_fwd[surv_keys] + penalty
                c_bwd_s = self.c0_bwd[surv_keys] + penalty
                t1 = la + c_fwd_s
                t2 = la + c_bwd_s
                shift = np.maximum(np.maximum(t1, t2), lb)
                # flag -1: decision from the posterior, early=False.
                parts.append((
                    surv_keys, c_fwd_s, c_bwd_s,
                    lb - shift, t1 - shift, t2 - shift,
                    np.full(len(surv_idx), -1, dtype=np.int8),
                ))
            if parts:
                keys_all = np.concatenate([p[0] for p in parts])
                order = np.argsort(keys_all)
                s1_all, s2_all = self.space.decode(keys_all[order])
                s1_l = s1_all.tolist()
                s2_l = s2_all.tolist()
                cf_l = np.concatenate([p[1] for p in parts])[order].tolist()
                cb_l = np.concatenate([p[2] for p in parts])[order].tolist()
                a0_l = np.concatenate([p[3] for p in parts])[order].tolist()
                a1_l = np.concatenate([p[4] for p in parts])[order].tolist()
                a2_l = np.concatenate([p[5] for p in parts])[order].tolist()
                flags = np.concatenate([p[6] for p in parts])[order]
                # math.exp per scalar (the reference's exp), batched
                # through map; the fold (e0 + e1) + e2 and the
                # divisions then run vectorized over the same operands
                # in the same order — bit-identical posteriors.
                e0 = np.array(list(map(exp, a0_l)))
                e1 = np.array(list(map(exp, a1_l)))
                e2 = np.array(list(map(exp, a2_l)))
                total = (e0 + e1) + e2
                ind_l = (e0 / total).tolist()
                fwd_l = (e1 / total).tolist()
                bwd_l = (e2 / total).tolist()
                cop_l = np.where(
                    flags < 0, np.asarray(ind_l) <= 0.5, flags == 1
                ).tolist()
                early_l = (flags >= 0).tolist()
                new_decision = object.__new__
                new_posterior = tuple.__new__
                for i in range(len(s1_l)):
                    decision = new_decision(PairDecision)
                    decision.__dict__.update({
                        "c_fwd": cf_l[i],
                        "c_bwd": cb_l[i],
                        "posterior": new_posterior(
                            CopyPosterior, (ind_l[i], fwd_l[i], bwd_l[i])
                        ),
                        "copying": cop_l[i],
                        "early": early_l[i],
                    })
                    decisions[(s1_l[i], s2_l[i])] = decision
        else:
            # Ascending slots iterate in ascending key order in both
            # layouts (sparse slots are sorted-key ranks), so the
            # result dicts are populated in the same order as the dense
            # path always was.
            s1_live, s2_live = self.space.decode(live_slots)
            slots_l = live_slots.tolist()
            s1_l = s1_live.tolist()
            s2_l = s2_live.tolist()
            status_l = status_live.tolist()
            l_list = self.l_arr[live_slots].tolist()
            c0f_list = self.c0_fwd[live_slots].tolist()
            c0b_list = self.c0_bwd[live_slots].tolist()
            n0_list = self.n0[live_slots].tolist()
            n_aft_list = self.n_after[live_slots].tolist()
            for i, key in enumerate(slots_l):
                pair = (s1_l[i], s2_l[i])
                l_shared = l_list[i]
                c0f = c0f_list[i]
                c0b = c0b_list[i]
                if status_l[i] in (_ACTIVE, _EXACT):
                    # Scan-end resolution (Step IV): contribution.
                    # posterior inlined with the logs hoisted —
                    # identical operations in identical order, so the
                    # floats match the reference bit for bit.
                    cost.score_update(2)
                    n0 = n0_list[i]
                    penalty = (l_shared - n0) * ln_diff
                    c_fwd = c0f + penalty
                    c_bwd = c0b + penalty
                    t1 = la + c_fwd
                    t2 = la + c_bwd
                    shift = lb
                    if t1 > shift:
                        shift = t1
                    if t2 > shift:
                        shift = t2
                    e0 = exp(lb - shift)
                    e1 = exp(t1 - shift)
                    e2 = exp(t2 - shift)
                    total = e0 + e1 + e2
                    post = CopyPosterior(
                        independent=e0 / total,
                        forward=e1 / total,
                        backward=e2 / total,
                    )
                    decision = PairDecision(
                        c_fwd=c_fwd,
                        c_bwd=c_bwd,
                        posterior=post,
                        copying=post.copying,
                        early=False,
                    )
                    decision_pos = end_position
                    n_before = n0
                    n_aft = 0
                else:
                    decision, decision_pos, n_before = self.done[key]
                    n_aft = n_aft_list[i]
                decisions[pair] = decision
                n_total = n_before + n_aft
                base_penalty = (l_shared - n_total) * ln_diff
                bookkeeping[pair] = PairBookkeeping(
                    copying=decision.copying,
                    early=decision.early,
                    c_base_fwd=c0f + base_penalty,
                    c_base_bwd=c0b + base_penalty,
                    decision_pos=decision_pos,
                    n_before=n_before,
                    n_after=n_aft,
                    l=l_shared,
                )
        result = DetectionResult(
            method=method_name,
            n_sources=n,
            decisions=decisions,
            cost=cost,
        )
        return result, bookkeeping

    def raw_state(self):
        """Mid-scan accumulators for the prefix-partitioned engine.

        Returns:
            An ``repro.core.bound.PrefixScanState`` snapshot: live pair
            accumulators (bound-mode and exact-mode separately), early
            decisions, and the cost tallies so far.
        """
        from .bound import PrefixScanState

        active: dict[tuple[int, int], tuple[float, float, int]] = {}
        exact: dict[tuple[int, int], tuple[float, float, int]] = {}
        live_slots = np.nonzero(self.status)[0]
        s1_live, s2_live = self.space.decode(live_slots)
        for key, s1, s2 in zip(
            live_slots.tolist(), s1_live.tolist(), s2_live.tolist()
        ):
            state = int(self.status[key])
            pair = (s1, s2)
            if state == _ACTIVE:
                active[pair] = (
                    float(self.c0_fwd[key]),
                    float(self.c0_bwd[key]),
                    int(self.n0[key]),
                )
            elif state == _EXACT:
                exact[pair] = (
                    float(self.c0_fwd[key]),
                    float(self.c0_bwd[key]),
                    int(self.n0[key]),
                )
        if self.done:
            done_slots = np.fromiter(
                self.done.keys(), np.int64, count=len(self.done)
            )
            ds1, ds2 = self.space.decode(done_slots)
            done = {
                (a, b): rec[0]
                for a, b, rec in zip(
                    ds1.tolist(), ds2.tolist(), self.done.values()
                )
            }
        else:
            done = {}
        return PrefixScanState(
            active=active,
            exact=exact,
            done=done,
            incidences=self.incidences,
            score_updates=self.score_updates,
            bound_evals=self.bound_evals,
        )


def scan_with_bounds_numpy(
    dataset: "Dataset",
    accuracies: Sequence[float],
    params: CopyParams,
    index: "InvertedIndex",
    theta_cp: float,
    theta_ind: float,
    use_timers: bool,
    hybrid_threshold: int,
    track_bookkeeping: bool,
    method_name: str,
    epoch_size: int | None = None,
    stop_at: int | None = None,
    collect_state: bool = False,
):
    """Run the epoch-batched scan; the numpy half of ``scan_with_bounds``.

    Returns ``(result, bookkeeping)``, or a
    :class:`~repro.core.bound.PrefixScanState` when ``collect_state``.
    """
    scan = EpochScan(
        dataset,
        accuracies,
        params,
        index,
        theta_cp,
        theta_ind,
        use_timers,
        hybrid_threshold,
        track_bookkeeping,
        epoch_size=epoch_size,
    )
    scan.run(stop_at=stop_at)
    if collect_state:
        return scan.raw_state()
    return scan.finalize(method_name)
