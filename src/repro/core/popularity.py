"""Popularity-aware contribution scores (the paper's footnote 2).

The base model assumes each item's ``n`` false values are *uniformly*
distributed, so any two erring sources collide with probability ``1/n``.
Footnote 2 notes the assumption "can be relaxed to take value
distributions into account [6]".  In the wild false values are heavily
skewed — a stale price or a common misspelling is repeated by many
independent sources — and the uniform model over-reads those collisions
as copying.

We parameterise each value with a *relative popularity*
``rho(v) = n * pop(v)``, where ``pop(v)`` is the chance an erring source
picks ``v`` (uniform model: ``rho = 1`` everywhere).  The generalised
formulas, reducing exactly to Eqs. (3)-(4) at ``rho = 1``:

* both independently provide the false ``v``:
  ``(1-A1)(1-A2) * rho(v)^2 / n``  (collision scales with popularity
  squared);
* one source provides the false ``v``: ``(1-A) * rho(v) / n * n
  = (1-A) * rho(v)`` inside the same normalisation the paper uses.

Sharing a *popular* false value is weaker evidence of copying whenever
the false-collision channel dominates Eq. (3) — i.e. for values that are
clearly false (small ``P(D.v)``) provided by error-prone sources, exactly
the "popular falsehood spread by independent sloppy sources" situation
the footnote targets.  (For highly accurate providers the ``P * A1 * A2``
"might actually be true" channel dominates the denominator and the
correction is small or even reversed — the model, not a bug; the test
suite pins down both regimes.)

``estimate_relative_popularity`` infers ``rho`` from the data itself:
within each item, a value's expected false-provider mass (providers
weighted by ``1 - P(v)``) is Laplace-smoothed against the ``n`` false
slots.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..data import Dataset
from .contribution import posterior
from .params import CopyParams
from .result import CostCounter, DetectionResult, PairDecision


def pr_independent_popular(
    p_true: float,
    acc1: float,
    acc2: float,
    rel_popularity: float,
    n: int,
) -> float:
    """Popularity-aware Eq. (3); equals ``pr_independent`` at rho = 1."""
    return (
        p_true * acc1 * acc2
        + (1.0 - p_true)
        * (1.0 - acc1)
        * (1.0 - acc2)
        * rel_popularity
        * rel_popularity
        / n
    )


def pr_single_popular(p_true: float, acc: float, rel_popularity: float) -> float:
    """Popularity-aware Eq. (4); equals ``pr_single`` at rho = 1."""
    return p_true * acc + (1.0 - p_true) * (1.0 - acc) * rel_popularity


def same_value_scores_popular(
    p_true: float,
    acc1: float,
    acc2: float,
    rel_popularity: float,
    params: CopyParams,
) -> tuple[float, float]:
    """Both directed Eq. (6) contributions under the popularity model."""
    a1 = params.clamp_accuracy(acc1)
    a2 = params.clamp_accuracy(acc2)
    denominator = pr_independent_popular(p_true, a1, a2, rel_popularity, params.n)
    fwd = math.log(
        1.0 - params.s + params.s * pr_single_popular(p_true, a2, rel_popularity) / denominator
    )
    bwd = math.log(
        1.0 - params.s + params.s * pr_single_popular(p_true, a1, rel_popularity) / denominator
    )
    return fwd, bwd


def estimate_relative_popularity(
    dataset: Dataset,
    probabilities: Sequence[float],
    params: CopyParams,
) -> list[float]:
    """Estimate ``rho(v)`` per value id from observed provider counts.

    Within each item, a value's share of the *false* provider mass is
    ``w(v) = |providers(v)| * (1 - P(v))``, Laplace-smoothed so each of
    the item's ``n`` false slots keeps one pseudo-count:

        pop(v) = (w(v) + 1) / (sum_w + n),     rho(v) = n * pop(v).

    Values never provided falsely get rho slightly below 1; heavily
    repeated false values get rho well above 1.
    """
    weights = [0.0] * dataset.n_values
    totals = [0.0] * dataset.n_items
    for value_id, providers in enumerate(dataset.providers):
        w = len(providers) * (1.0 - probabilities[value_id])
        weights[value_id] = w
        totals[dataset.value_item[value_id]] += w
    n = params.n
    return [
        n * (weights[value_id] + 1.0) / (totals[dataset.value_item[value_id]] + n)
        for value_id in range(dataset.n_values)
    ]


def detect_pairwise_popular(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    params: CopyParams,
    rel_popularity: Sequence[float] | None = None,
) -> DetectionResult:
    """Exhaustive detection under the popularity-aware model.

    Args:
        dataset: the claims.
        probabilities: ``P(D.v)`` per value id.
        accuracies: ``A(S)`` per source id.
        params: model parameters.
        rel_popularity: ``rho(v)`` per value id; estimated from the data
            when omitted.

    Returns:
        A :class:`DetectionResult` (method ``"pairwise-popular"``).
    """
    if rel_popularity is None:
        rel_popularity = estimate_relative_popularity(
            dataset, probabilities, params
        )
    if len(rel_popularity) != dataset.n_values:
        raise ValueError(
            f"need one popularity per value "
            f"({len(rel_popularity)} != {dataset.n_values})"
        )
    cost = CostCounter()
    decisions: dict[tuple[int, int], PairDecision] = {}
    ln_diff = params.ln_one_minus_s
    claims = dataset.claims

    for s1 in range(dataset.n_sources):
        claim1 = claims[s1]
        for s2 in range(s1 + 1, dataset.n_sources):
            claim2 = claims[s2]
            cost.pairs_considered += 1
            small, large = (
                (claim2, claim1) if len(claim2) < len(claim1) else (claim1, claim2)
            )
            c_fwd = c_bwd = 0.0
            shared = 0
            for item_id, value_id in small.items():
                other = large.get(item_id)
                if other is None:
                    continue
                shared += 1
                cost.value_incidence()
                cost.score_update(2)
                if other == value_id:
                    fwd, bwd = same_value_scores_popular(
                        probabilities[value_id],
                        accuracies[s1],
                        accuracies[s2],
                        rel_popularity[value_id],
                        params,
                    )
                    c_fwd += fwd
                    c_bwd += bwd
                else:
                    c_fwd += ln_diff
                    c_bwd += ln_diff
            if shared == 0:
                continue
            post = posterior(c_fwd, c_bwd, params)
            decisions[(s1, s2)] = PairDecision(
                c_fwd=c_fwd,
                c_bwd=c_bwd,
                posterior=post,
                copying=post.copying,
                early=False,
            )

    return DetectionResult(
        method="pairwise-popular",
        n_sources=dataset.n_sources,
        decisions=decisions,
        cost=cost,
    )
