"""Text copy-detection baselines: Q-grams, sketches, winnowing, dSCAM."""

from .document_copy import (
    DocumentMatch,
    detect_document_copies,
    serialize_source,
)
from .sketches import (
    brin_chunks,
    mod_k_sketch,
    qgram_fingerprints,
    sketch_containment,
    sketch_resemblance,
    winnow,
)

__all__ = [
    "DocumentMatch",
    "brin_chunks",
    "detect_document_copies",
    "mod_k_sketch",
    "qgram_fingerprints",
    "serialize_source",
    "sketch_containment",
    "sketch_resemblance",
    "winnow",
]
