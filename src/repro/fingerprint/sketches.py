"""Document-fingerprinting sketches from the copy-detection literature.

Section VII of the paper contrasts its index with the classic *text*
copy-detection toolchain, which this module implements so the examples and
ablations can demonstrate the paper's motivating claim: text techniques
hinge on long shared substrings, and structured data has "no natural way
to order records and attributes", so serialising sources and fingerprinting
them misses copying that the Bayesian detector finds.

Implemented sketches (each maps a token sequence to a set of fingerprints):

* **full Q-gram fingerprints** — every window of Q consecutive tokens,
  hashed (the unsampled baseline);
* **Manber's 0 mod K sketch** (USENIX 1994) — keep fingerprints divisible
  by K; expected 1/K of the Q-grams survive;
* **Brin's chunking** (SIGMOD 1995, COPS) — split the sequence at units
  whose fingerprint is 0 mod K and hash each variable-length chunk;
* **winnowing** (Schleimer, Wilkerson & Aiken, SIGMOD 2003) — keep the
  minimum fingerprint in every window of K consecutive Q-gram
  fingerprints; guarantees any shared run of at least K + Q - 1 tokens
  yields a shared fingerprint.

Hashes are CRC-32 (deterministic across processes, unlike Python's salted
``hash``), which is plenty for similarity sketching.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence


def _crc(tokens: Sequence[str]) -> int:
    return zlib.crc32("\x1f".join(tokens).encode("utf-8"))


def qgram_fingerprints(tokens: Sequence[str], q: int) -> list[int]:
    """Fingerprint every window of ``q`` consecutive tokens, in order.

    Raises:
        ValueError: if ``q < 1``.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if len(tokens) < q:
        return []
    return [_crc(tokens[i : i + q]) for i in range(len(tokens) - q + 1)]


def mod_k_sketch(tokens: Sequence[str], q: int, k: int) -> set[int]:
    """Manber's sketch: Q-gram fingerprints that are 0 mod K.

    Expected size is ``1/k`` of the full fingerprint set; two documents
    sharing many Q-grams share (in expectation) the same fraction of
    sketch entries.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return {fp for fp in qgram_fingerprints(tokens, q) if fp % k == 0}


def brin_chunks(tokens: Sequence[str], k: int) -> set[int]:
    """Brin's chunking sketch: hash chunks delimited by 0-mod-K units.

    The token stream is cut *after* every token whose own fingerprint is
    0 mod K; each resulting chunk is hashed whole.  Chunk boundaries are
    content-defined, so insertions only perturb neighbouring chunks.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sketch: set[int] = set()
    chunk: list[str] = []
    for token in tokens:
        chunk.append(token)
        if _crc((token,)) % k == 0:
            sketch.add(_crc(chunk))
            chunk = []
    if chunk:
        sketch.add(_crc(chunk))
    return sketch


def winnow(tokens: Sequence[str], q: int, window: int) -> set[int]:
    """Winnowing sketch: minimum fingerprint per window of ``window`` grams.

    Guarantee (Schleimer et al.): any substring match of length at least
    ``window + q - 1`` tokens produces at least one shared fingerprint.

    Raises:
        ValueError: if ``window < 1`` or ``q < 1``.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    grams = qgram_fingerprints(tokens, q)
    if not grams:
        return set()
    if len(grams) <= window:
        return {min(grams)}
    sketch: set[int] = set()
    for start in range(len(grams) - window + 1):
        sketch.add(min(grams[start : start + window]))
    return sketch


def sketch_resemblance(a: Iterable[int], b: Iterable[int]) -> float:
    """Jaccard resemblance of two sketches (0 when both are empty)."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def sketch_containment(a: Iterable[int], b: Iterable[int]) -> float:
    """Fraction of sketch ``a`` contained in ``b`` (0 when ``a`` is empty).

    Containment, not resemblance, is the right measure for copy detection
    when one document may be a small excerpt of another.
    """
    set_a, set_b = set(a), set(b)
    if not set_a:
        return 0.0
    return len(set_a & set_b) / len(set_a)
