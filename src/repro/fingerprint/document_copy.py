"""A dSCAM-style document copy detector over fingerprint sketches.

Completes the related-work toolchain (Garcia-Molina et al., PDIS 1996):
sketch every document, index the fingerprints, and compare only document
pairs that share at least one fingerprint — the text-world analogue of the
paper's inverted index over shared values.

Also provides :func:`serialize_source`, which renders a structured source
as a token stream so the text pipeline can be pointed at structured data.
The ``order`` parameter is the crux of the paper's motivating argument
(Section I): with ``"aligned"`` ordering every source lists items in the
same global order, so copied regions form long shared substrings and text
fingerprinting works; with the realistic ``"native"`` ordering each source
emits its items in its own (crawl-dependent) order, shared fragments
shatter, and the text pipeline misses copying that
:mod:`repro.core` still finds.  ``examples/structured_vs_text.py`` runs
this head-to-head.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal, Sequence

from ..data import Dataset
from .sketches import sketch_containment, winnow


@dataclass(frozen=True)
class DocumentMatch:
    """A candidate copy between two documents.

    Attributes:
        doc_a: id of the first document.
        doc_b: id of the second document.
        containment: max of the two directional containments.
    """

    doc_a: int
    doc_b: int
    containment: float


def detect_document_copies(
    documents: Sequence[Sequence[str]],
    q: int = 4,
    window: int = 4,
    threshold: float = 0.25,
) -> list[DocumentMatch]:
    """Find candidate copies among token sequences via winnowing + index.

    Args:
        documents: token sequences, ids are positions.
        q: Q-gram size.
        window: winnowing window.
        threshold: minimum (max-directional) containment to report.

    Returns:
        Matches sorted by containment descending.
    """
    sketches = [winnow(doc, q, window) for doc in documents]
    postings: dict[int, list[int]] = {}
    for doc_id, sketch in enumerate(sketches):
        for fingerprint in sketch:
            postings.setdefault(fingerprint, []).append(doc_id)

    candidates: set[tuple[int, int]] = set()
    for posting in postings.values():
        for i in range(len(posting)):
            for j in range(i + 1, len(posting)):
                candidates.add((posting[i], posting[j]))

    matches = []
    for a, b in candidates:
        containment = max(
            sketch_containment(sketches[a], sketches[b]),
            sketch_containment(sketches[b], sketches[a]),
        )
        if containment >= threshold:
            matches.append(DocumentMatch(doc_a=a, doc_b=b, containment=containment))
    matches.sort(key=lambda m: (-m.containment, m.doc_a, m.doc_b))
    return matches


def serialize_source(
    dataset: Dataset,
    source_id: int,
    order: Literal["aligned", "native"] = "native",
    seed: int = 0,
) -> list[str]:
    """Render one source's claims as a token stream.

    Args:
        dataset: the claims.
        source_id: which source to serialise.
        order: ``"aligned"`` sorts claims by item id (every source agrees
            on the order — the unrealistically friendly case for text
            fingerprinting); ``"native"`` shuffles per source, simulating
            each site's own record order.
        seed: base seed for the native shuffles.

    Returns:
        One ``item=value`` token per claim.
    """
    claim = dataset.claims[source_id]
    items = sorted(claim)
    if order == "native":
        rng = random.Random((seed << 20) ^ source_id)
        rng.shuffle(items)
    return [
        f"{dataset.item_names[item_id]}={dataset.value_label[claim[item_id]]}"
        for item_id in items
    ]
