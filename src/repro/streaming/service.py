"""The asyncio ingestion loop: micro-batching, debounce, drain, fan-out.

:class:`StreamingService` is the always-on layer between delta producers
and the synchronous :class:`~repro.streaming.engine.StreamEngine`.  Its
single job is deciding *when* a micro-batch becomes an epoch:

* **size trigger** — ``max_batch`` pending deltas flush immediately;
* **deadline trigger** — the first pending delta starts a ``max_delay``
  clock; the batch flushes when it expires no matter what;
* **per-source debounce** — while any pending source keeps sending
  (its last arrival is younger than ``debounce``), the flush waits for
  the burst to end, bounded by the deadline.  The flush instant is
  ``min(first_arrival + max_delay, newest_arrival + debounce)``.

Every flushed batch is first collapsed by
:func:`~repro.data.coalesce_deltas` (one delta per ``(source, item)``,
first-arrival position, last value), then handed to the engine **in a
single-worker thread executor** — fusion is CPU-bound and must not
stall the event loop, and one worker guarantees epochs are serialized.
A batch the ledger proves to be a no-op (pure re-confirmations) runs no
fusion and publishes no snapshot.

Completed epochs fan out to subscribers (:meth:`subscribe` returns an
``asyncio.Queue`` of event dicts — the SSE layer drains one per client)
and refresh the service's :class:`~repro.serving.VerdictReader`, so
:meth:`get_verdict`/:meth:`get_truth` always answer from the snapshot
the store just published, version tag included.

Shutdown is graceful by default: :meth:`stop` flushes whatever is
pending as one final epoch (``drain=True``), waits for it to publish,
then cancels the loop — no accepted delta is ever dropped.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable, Sequence

from ..data import ClaimDelta, coalesce_deltas
from .engine import EpochResult, EpochState, StreamEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.explain import PairExplanation
    from ..serving.reader import Truth, Verdict


class StreamingService:
    """Micro-batching asyncio front end over a :class:`StreamEngine`.

    Args:
        engine: the epoch engine (the service takes ownership: its
            workspace is closed by :meth:`stop`).  Must have a store for
            the read API to work.
        max_batch: pending-delta count that flushes immediately.
        max_delay: hard deadline (seconds) from the first pending
            arrival to its epoch — the staleness bound.
        debounce: quiet period (seconds) a bursty source must hold
            before the batch flushes ahead of the deadline.
        queue_size: per-subscriber event queue capacity; a slow
            subscriber drops oldest events rather than stalling epochs.
    """

    def __init__(
        self,
        engine: StreamEngine,
        max_batch: int = 512,
        max_delay: float = 0.5,
        debounce: float = 0.05,
        queue_size: int = 256,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay <= 0 or debounce < 0:
            raise ValueError("max_delay must be > 0 and debounce >= 0")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.debounce = min(debounce, max_delay)
        self.queue_size = queue_size

        self._pending: list[ClaimDelta] = []
        self._first_arrival: float | None = None
        self._last_arrival: float = 0.0
        self._arrival = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopping = False
        self._task: asyncio.Task | None = None
        self._subscribers: list[asyncio.Queue] = []
        self._reader = None
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="stream-epoch"
        )

        #: Ingestion counters, served by the HTTP ``/stats`` endpoint.
        self.claims_received = 0
        self.epochs_run = 0
        self.epochs_skipped = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the batching loop (idempotent)."""
        if self._task is None:
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(
                self._batch_loop()
            )

    async def stop(self, drain: bool = True) -> None:
        """Stop the loop; by default drain pending deltas first.

        With ``drain=True`` (the default) any pending deltas are flushed
        as one final epoch — published, fanned out — before the loop
        exits; with ``drain=False`` pending deltas are discarded.  The
        engine's workspace is closed either way.
        """
        if self._task is not None:
            if not drain:
                self._pending.clear()
                self._first_arrival = None
            self._stopping = True
            self._arrival.set()
            await self._task
            self._task = None
        self._worker.shutdown(wait=True)
        self.engine.close()
        for queue in self._subscribers:
            self._offer(queue, {"type": "shutdown"})

    async def __aenter__(self) -> "StreamingService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def submit(self, deltas: Iterable[ClaimDelta]) -> int:
        """Accept deltas into the pending batch; returns how many.

        Must be called on the event-loop thread (the HTTP layer does).
        Arrival timestamps feed the debounce/deadline triggers; the
        batch itself is coalesced only at flush time so a burst costs
        appends, not scans.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        count = 0
        for delta in deltas:
            self._pending.append(delta)
            count += 1
        if count:
            if self._first_arrival is None:
                self._first_arrival = now
            self._last_arrival = now
            self.claims_received += count
            self._idle.clear()
            self._arrival.set()
        return count

    async def flush(self) -> None:
        """Wait until everything currently pending has been epoch-ed."""
        await self._idle.wait()

    # ------------------------------------------------------------------
    # The batching loop
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._arrival.wait()
            self._arrival.clear()
            if not self._pending:
                if self._stopping:
                    return
                self._idle.set()
                continue
            # Wait out the debounce/deadline window (size trigger and
            # shutdown cut it short).
            while len(self._pending) < self.max_batch and not self._stopping:
                deadline = min(
                    self._first_arrival + self.max_delay,
                    self._last_arrival + self.debounce,
                )
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    await asyncio.wait_for(self._arrival.wait(), timeout)
                except asyncio.TimeoutError:
                    break
                self._arrival.clear()

            batch = coalesce_deltas(self._pending)
            self._pending.clear()
            self._first_arrival = None
            result = await loop.run_in_executor(
                self._worker, self.engine.run_epoch, batch
            )
            self._on_epoch(result)
            if not self._pending:
                self._idle.set()
                if self._stopping:
                    return

    def _on_epoch(self, result: EpochResult) -> None:
        """Refresh the read view and fan the epoch out to subscribers."""
        if result.skipped:
            self.epochs_skipped += 1
            return
        self.epochs_run += 1
        if self._reader is not None:
            self._reader.refresh()
        event = {
            "type": "epoch",
            "epoch": result.epoch,
            "snapshot_id": result.snapshot_id,
            "n_sources": result.n_sources,
            "n_items": result.n_items,
            "changed_claims": result.update.changed_claims,
            "rounds": result.fusion.n_rounds if result.fusion else 0,
            "converged": bool(result.fusion and result.fusion.converged),
            "elapsed_seconds": result.elapsed_seconds,
        }
        for queue in self._subscribers:
            self._offer(queue, event)

    @staticmethod
    def _offer(queue: asyncio.Queue, event: dict) -> None:
        """Enqueue without blocking; drop the oldest event when full."""
        while True:
            try:
                queue.put_nowait(event)
                return
            except asyncio.QueueFull:
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - race-free
                    return

    # ------------------------------------------------------------------
    # Subscriptions + live queries
    # ------------------------------------------------------------------
    def subscribe(self) -> asyncio.Queue:
        """A fresh queue receiving one event dict per published epoch."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_size)
        self._subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Stop delivering epochs to a queue from :meth:`subscribe`."""
        try:
            self._subscribers.remove(queue)
        except ValueError:
            pass

    @property
    def reader(self):
        """Lazy :class:`~repro.serving.VerdictReader` over the engine's store.

        Raises:
            RuntimeError: the engine has no store, or nothing has been
                published yet.
        """
        if self._reader is None:
            if self.engine.store is None:
                raise RuntimeError(
                    "the engine has no verdict store; queries need one"
                )
            from ..serving.reader import VerdictReader

            self._reader = VerdictReader(self.engine.store)
        return self._reader

    @property
    def state(self) -> EpochState | None:
        """The engine's latest immutable epoch state (None before epoch 1)."""
        return self.engine.state

    def get_verdict(self, s1: int, s2: int) -> "Verdict | None":
        """Served pair verdict from the freshest published snapshot."""
        return self.reader.get_verdict(s1, s2)

    def get_truth(self, item: int | str) -> "Truth | None":
        """Served fused truth from the freshest published snapshot."""
        return self.reader.get_truth(item)

    def explain_pair(self, s1: int, s2: int) -> "PairExplanation":
        """Live item-by-item evidence from the latest epoch state.

        Raises:
            RuntimeError: before the first epoch has run.
            PairNotObservedError: the pair was never opened.
        """
        state = self.engine.state
        if state is None:
            raise RuntimeError("no epoch has run yet")
        return state.explain(s1, s2)

    def stats(self) -> dict:
        """Ingestion/epoch counters plus the current world dimensions."""
        state = self.engine.state
        return {
            "claims_received": self.claims_received,
            "epochs_run": self.epochs_run,
            "epochs_skipped": self.epochs_skipped,
            "pending": len(self._pending),
            "epoch": state.epoch if state else 0,
            "snapshot_id": state.snapshot_id if state else None,
            "n_sources": state.dataset.n_sources if state else 0,
            "n_items": state.dataset.n_items if state else 0,
            "ledger_version": self.engine.ledger.version,
        }
