"""Streaming layer: online INCREMENTAL detection behind an HTTP/SSE API.

The batch pipeline answers "given these claims, who copied whom?"; this
package keeps the answer *fresh* as claims keep arriving.  Four pieces,
bottom-up:

* :mod:`~repro.streaming.engine` — :class:`StreamEngine`, the
  synchronous epoch engine (ledger -> fusion with a fresh
  INCREMENTAL detector per epoch -> verdict-store publish), plus
  :func:`replay_epochs`, its batch-mode twin for lockstep-parity
  testing;
* :mod:`~repro.streaming.service` — :class:`StreamingService`, the
  asyncio micro-batcher (size/deadline triggers, per-source debounce,
  subscriber fan-out, drain-on-stop);
* :mod:`~repro.streaming.http` — :class:`StreamingServer`, the
  stdlib-only HTTP/1.1 + SSE wire layer (``POST /claims``,
  ``GET /events``, live ``/verdict`` ``/truth`` ``/explain`` queries);
* :mod:`~repro.streaming.client` — :class:`StreamClient`, the blocking
  :mod:`http.client`-based consumer used by scripts and benchmarks.

Run one with ``repro-copydetect serve`` (see ``--help``), or embed the
pieces directly — the quickstart lives in ``README.md`` and the layer
map in ``docs/ARCHITECTURE.md``.
"""

from .client import StreamClient, StreamClientError
from .engine import EpochResult, EpochState, StreamEngine, replay_epochs
from .http import StreamingServer, serve
from .service import StreamingService

__all__ = [
    "EpochResult",
    "EpochState",
    "StreamClient",
    "StreamClientError",
    "StreamEngine",
    "StreamingServer",
    "StreamingService",
    "replay_epochs",
    "serve",
]
