"""Hand-rolled HTTP/1.1 + SSE front end for the streaming service.

No web framework: the whole wire layer is ``asyncio.start_server`` plus
a minimal request parser, which keeps the runtime dependency set at
stdlib + numpy.  The surface:

====================  ======================================================
``POST /claims``      JSON body ``{"claims": [{"source","item","value"},…]}``
                      (or a bare list); replies ``202`` with the accepted
                      count.  Deltas enter the micro-batcher — the reply
                      does *not* wait for the epoch.
``GET  /events``      ``text/event-stream`` of epoch events: one
                      ``event: epoch`` frame per published snapshot, with
                      the JSON event dict as ``data:``.  The first frame is
                      ``event: hello`` carrying current stats.
``GET  /verdict``     ``?s1=<id>&s2=<id>`` — the served pair verdict from
                      the freshest snapshot (``null`` if never observed).
``GET  /truth``       ``?item=<id-or-name>`` — the served fused truth.
``GET  /explain``     ``?s1=<id>&s2=<id>`` — live item-by-item evidence
                      from the latest epoch (top contributions included).
``GET  /stats``       ingestion counters + world dimensions.
====================  ======================================================

Error handling is deliberately boring: malformed requests get a ``400``
with a JSON ``error`` body, unknown paths a ``404``, queries before the
first epoch a ``409``; handler crashes are caught per-connection so one
bad request never takes the service down.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from ..core.result import PairNotObservedError
from ..data import ClaimDelta
from ..serving.codec import ServingError
from .service import StreamingService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.explain import PairExplanation
    from ..serving.reader import Truth, Verdict

#: Maximum accepted request-body size (a POST of ~100k claims).
MAX_BODY_BYTES = 16 * 1024 * 1024


class _BadRequest(Exception):
    """Maps to a 400 reply with the message as the JSON error body."""


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    reason = {
        200: "OK",
        202: "Accepted",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        409: "Conflict",
        413: "Payload Too Large",
        500: "Internal Server Error",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _verdict_json(verdict: "Verdict | None") -> object:
    if verdict is None:
        return None
    return {
        "source_1": verdict.source_1,
        "source_2": verdict.source_2,
        "copying": verdict.copying,
        "early": verdict.early,
        "independent": verdict.independent,
        "forward": verdict.forward,
        "backward": verdict.backward,
        "snapshot_id": verdict.snapshot_id,
    }


def _truth_json(truth: "Truth | None") -> object:
    if truth is None:
        return None
    return {
        "item": truth.item,
        "item_name": truth.item_name,
        "value": truth.value,
        "value_label": truth.value_label,
        "probability": truth.probability,
        "supporters": list(truth.supporters),
        "snapshot_id": truth.snapshot_id,
    }


def _explanation_json(explanation: "PairExplanation", top: int = 10) -> dict:
    return {
        "observed": True,
        "source_a": explanation.source_a,
        "source_b": explanation.source_b,
        "copying": explanation.copying,
        "independent": explanation.posterior.independent,
        "c_fwd": explanation.c_fwd,
        "c_bwd": explanation.c_bwd,
        "n_shared_values": explanation.n_shared_values,
        "n_different": explanation.n_different,
        "credibility_a": explanation.credibility_a,
        "credibility_b": explanation.credibility_b,
        "top_evidence": [
            {
                "item": ev.item,
                "value_a": ev.value_a,
                "value_b": ev.value_b,
                "shared": ev.shared,
                "probability": ev.probability,
                "c_fwd": ev.c_fwd,
                "conflict": ev.conflict,
            }
            for ev in explanation.top_evidence(top)
        ],
    }


def _sse_frame(event: str, payload: object) -> bytes:
    return (
        f"event: {event}\ndata: {json.dumps(payload, separators=(',', ':'))}\n\n"
    ).encode("utf-8")


class StreamingServer:
    """Asyncio TCP server exposing a :class:`StreamingService` over HTTP.

    Args:
        service: the running (or to-be-started) service.
        host: bind address.
        port: bind port; 0 picks a free one (see :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self, service: StreamingService, host: str = "127.0.0.1", port: int = 8731
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The actually bound port (differs from the request when 0)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start the service's batch loop and begin accepting connections."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, then stop the service (draining by default)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, query, body = await self._read_request(reader)
            if path == "/events" and method == "GET":
                await self._serve_events(writer)
                return
            response = self._dispatch(method, path, query, body)
        except _BadRequest as exc:
            response = _response(400, _json_bytes({"error": str(exc)}))
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - one bad request, not the server
            response = _response(500, _json_bytes({"error": repr(exc)}))
        try:
            writer.write(response)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method, split.path, parse_qs(split.query), body

    def _dispatch(
        self, method: str, path: str, query: dict, body: bytes
    ) -> bytes:
        if path == "/claims":
            if method != "POST":
                return _response(405, _json_bytes({"error": "POST only"}))
            return self._post_claims(body)
        if method != "GET":
            return _response(405, _json_bytes({"error": "GET only"}))
        if path == "/stats":
            return _response(200, _json_bytes(self.service.stats()))
        if path == "/verdict":
            s1, s2 = self._pair_params(query)
            return self._query_reply(
                lambda: {"verdict": _verdict_json(self.service.get_verdict(s1, s2))}
            )
        if path == "/truth":
            raw = query.get("item", [None])[0]
            if raw is None:
                raise _BadRequest("truth needs an item=<id-or-name> parameter")
            item: int | str = int(raw) if raw.lstrip("-").isdigit() else raw
            return self._query_reply(
                lambda: {"truth": _truth_json(self.service.get_truth(item))}
            )
        if path == "/explain":
            s1, s2 = self._pair_params(query)
            return self._query_reply(
                lambda: _explanation_json(self.service.explain_pair(s1, s2))
            )
        return _response(404, _json_bytes({"error": f"unknown path {path}"}))

    def _post_claims(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON ({exc})") from exc
        claims = payload.get("claims") if isinstance(payload, dict) else payload
        if not isinstance(claims, list):
            raise _BadRequest('expected {"claims": [...]} or a JSON list')
        try:
            deltas = [ClaimDelta.from_json(obj) for obj in claims]
        except ValueError as exc:
            raise _BadRequest(str(exc)) from exc
        accepted = self.service.submit(deltas)
        return _response(
            202,
            _json_bytes(
                {"accepted": accepted, "pending": self.service.stats()["pending"]}
            ),
        )

    def _pair_params(self, query: dict) -> tuple[int, int]:
        try:
            return (int(query["s1"][0]), int(query["s2"][0]))
        except (KeyError, ValueError, IndexError) as exc:
            raise _BadRequest(
                "needs integer s1=<id>&s2=<id> parameters"
            ) from exc

    def _query_reply(self, compute) -> bytes:
        """Run a read query, mapping service states to HTTP statuses."""
        try:
            return _response(200, _json_bytes(compute()))
        except PairNotObservedError as exc:
            # Only /explain raises this (the reader returns None for
            # unobserved pairs): an unobserved pair is independent by
            # construction, which is an answer, not an error.
            return _response(
                200, _json_bytes({"observed": False, "detail": str(exc)})
            )
        except (RuntimeError, ServingError) as exc:
            # No store / no epoch / nothing published yet: the query is
            # early, not malformed.
            return _response(409, _json_bytes({"error": str(exc)}))
        except ValueError as exc:
            return _response(400, _json_bytes({"error": str(exc)}))

    async def _serve_events(self, writer: asyncio.StreamWriter) -> None:
        """Stream epoch events to one SSE client until it disconnects."""
        queue = self.service.subscribe()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            writer.write(_sse_frame("hello", self.service.stats()))
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write(_sse_frame(event.get("type", "epoch"), event))
                await writer.drain()
                if event.get("type") == "shutdown":
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.service.unsubscribe(queue)
            writer.close()


async def serve(
    server: StreamingServer, shutdown: asyncio.Event | None = None
) -> None:
    """Run a server until ``shutdown`` is set (or forever), then drain.

    The CLI wires ``SIGINT``/``SIGTERM`` to the event, so Ctrl-C performs
    a graceful drain-on-shutdown instead of dropping accepted claims.
    """
    await server.start()
    try:
        if shutdown is None:
            await server.serve_forever()
        else:
            await shutdown.wait()
    finally:
        await server.stop(drain=True)
