"""Epoch engine: one micro-batch of deltas in, one published epoch out.

This is the synchronous heart of the streaming service — everything the
asyncio layer (:mod:`repro.streaming.service`) does reduces to calling
:meth:`StreamEngine.run_epoch` with a coalesced batch of
:class:`~repro.data.ClaimDelta`.  Keeping the engine synchronous and
deterministic is what makes the lockstep-parity guarantee testable:
:func:`replay_epochs` drives the *same* engine over the same epoch
partitions with no event loop at all, and the results must match the
live service's exactly.

Per epoch the engine:

1. folds the deltas into its :class:`~repro.data.ClaimLedger` and skips
   everything else when the batch was a pure confirmation
   (``LedgerUpdate.is_noop`` — detection state provably unchanged);
2. freezes a new immutable dataset snapshot and rebinds the
   round-persistent :class:`~repro.fusion.FusionWorkspace` to it —
   executor pools and the shared-memory block survive across epochs,
   only the dataset-derived caches are rebuilt;
3. runs the full fusion loop with a **fresh**
   :class:`~repro.core.IncrementalDetector` (``prepare_round=1``: the
   first round builds the bookkeeping, later rounds patch it with the
   paper's three-pass INCREMENTAL), warm-started from the previous
   epoch's converged accuracies when ``warm_start`` is on;
4. publishes the converged verdicts + truths to the
   :class:`~repro.serving.VerdictStore` — a delta snapshot sized by a
   field-exact diff against the previous *epoch* (the last round's
   ``changed_pairs`` is relative to the previous round, not the
   previous epoch, so it is deliberately dropped before publishing),
   or a fresh full snapshot whenever new sources appeared (pair keys
   are ``s1 * n_sources + s2`` — a changed stride invalidates every
   published key, so the publisher is rebuilt).

**Why per-epoch index rebuilds are honest.**  The paper's INCREMENTAL
assumes a frozen claim set: its bookkeeping indexes positions in one
fixed inverted index.  A claim delta changes that index, so cross-epoch
bookkeeping reuse would be wrong.  The engine therefore rebuilds the
index once per epoch and runs INCREMENTAL *within* the epoch's fusion
rounds — the cross-epoch savings come from accuracy warm-starts (fewer
rounds to re-converge), workspace reuse (no pool/shm setup), and delta
snapshots (publish only what moved).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..core.detector import IncrementalDetector
from ..core.explain import PairExplanation, explain_pair
from ..core.params import CopyParams
from ..data import ClaimDelta, ClaimLedger, Dataset, LedgerUpdate
from ..fusion.pipeline import (
    FusionConfig,
    FusionResult,
    _decision_positions,
    run_fusion,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.result import DetectionResult
    from ..fusion.workspace import FusionWorkspace
    from ..serving.store import VerdictStore


@dataclass(frozen=True)
class EpochState:
    """Immutable post-epoch state, safe to read from any thread.

    The service thread swaps a fresh ``EpochState`` into
    ``StreamEngine.state`` after each epoch (one attribute write, atomic
    under the GIL), so live queries from the event loop never observe a
    half-updated epoch.

    Attributes:
        epoch: 1-based number of the epoch that produced this state.
        ledger_version: the claim ledger's version at freeze time.
        dataset: the epoch's immutable claim snapshot.
        params: the engine's model parameters.
        probabilities: converged ``P(D.v)`` per value id.
        accuracies: converged ``A(S)`` per source id.
        chosen: fused truth — ``item_id -> value_id``.
        detection: the epoch's converged detection (None when the epoch
            ran copy-oblivious).
        snapshot_id: the verdict-store snapshot this epoch published
            (None when the engine runs without a store).
        conflict: the final round's Dempster conflict ``K`` per item id
            (``fusion_method == "ds"`` only; None under ``"accu"``).
        credibility: effective per-source credibility at convergence
            (``"ds"`` only; None under ``"accu"``).
    """

    epoch: int
    ledger_version: int
    dataset: Dataset
    params: CopyParams
    probabilities: tuple[float, ...]
    accuracies: tuple[float, ...]
    chosen: dict[int, int]
    detection: "DetectionResult | None"
    snapshot_id: int | None
    conflict: dict[int, float] | None = None
    credibility: tuple[float, ...] | None = None

    def explain(self, source_a: int, source_b: int) -> PairExplanation:
        """Item-by-item evidence between two sources, live from this epoch.

        Raises:
            ValueError: coinciding or out-of-range source ids.
            PairNotObservedError: the epoch's detection never opened the
                pair (no shared scored value — independent by
                construction).
        """
        return explain_pair(
            self.dataset,
            source_a,
            source_b,
            list(self.probabilities),
            list(self.accuracies),
            self.params,
            result=self.detection,
            credibility=self.credibility,
            conflict=self.conflict,
        )

    def truth_of(self, item_id: int) -> tuple[int, float] | None:
        """The fused ``(value_id, probability)`` for an item id, if any."""
        value = self.chosen.get(item_id)
        if value is None:
            return None
        return value, float(self.probabilities[value])


@dataclass(frozen=True)
class EpochResult:
    """What one :meth:`StreamEngine.run_epoch` call did.

    Attributes:
        epoch: 1-based epoch number (not advanced by skipped batches).
        update: the ledger's accounting of the applied batch.
        skipped: True when the batch was a no-op (pure confirmations, or
            nothing at all) and no fusion ran, no snapshot was written.
        fusion: the epoch's fusion outcome (None when skipped).
        snapshot_id: the published snapshot (None when skipped or when
            the engine has no store).
        n_sources: sources after the batch.
        n_items: items after the batch.
        elapsed_seconds: wall-clock for the whole epoch (apply + fusion
            + publish).
    """

    epoch: int
    update: LedgerUpdate
    skipped: bool
    fusion: FusionResult | None
    snapshot_id: int | None
    n_sources: int
    n_items: int
    elapsed_seconds: float


class StreamEngine:
    """Synchronous epoch-at-a-time streaming engine.

    Args:
        store: the verdict store to publish each epoch into (a
            :class:`~repro.serving.VerdictStore`, a directory path, or
            None to run unpublished — e.g. for replay tests).
        params: model parameters; ``params.backend == "numpy"`` also
            enables the persistent :class:`~repro.fusion.FusionWorkspace`.
        config: per-epoch fusion loop configuration (defaults to
            :class:`~repro.fusion.FusionConfig`'s).  The engine overrides
            only ``initial_accuracies`` for warm starts.
        warm_start: seed each epoch's fusion with the previous epoch's
            converged accuracies (new sources start at
            ``config.initial_accuracy``).  Cuts rounds-to-reconverge on
            quiet feeds; turn off to make every epoch bit-identical to a
            cold batch run over the accumulated claims.
        rho_value / rho_accuracy: the INCREMENTAL re-open thresholds,
            passed to each epoch's detector.
    """

    def __init__(
        self,
        store: "VerdictStore | Path | str | None" = None,
        params: CopyParams | None = None,
        config: FusionConfig | None = None,
        warm_start: bool = True,
        rho_value: float = 1.0,
        rho_accuracy: float = 0.2,
    ):
        from ..serving.store import VerdictStore

        if store is not None and not isinstance(store, VerdictStore):
            store = VerdictStore(store)
        self.store = store
        self.params = params or CopyParams()
        self.config = config or FusionConfig()
        self.warm_start = warm_start
        self.rho_value = rho_value
        self.rho_accuracy = rho_accuracy
        self.ledger = ClaimLedger()
        self.state: EpochState | None = None
        self._epoch = 0
        self._workspace: "FusionWorkspace | None" = None
        self._publisher = None
        self._last_detector: IncrementalDetector | None = None

    # ------------------------------------------------------------------
    # The epoch step
    # ------------------------------------------------------------------
    def run_epoch(self, deltas: Sequence[ClaimDelta]) -> EpochResult:
        """Fold one micro-batch in, re-fuse, publish; returns the record."""
        start = time.perf_counter()
        update = self.ledger.apply(deltas)
        if (update.is_noop and self.state is not None) or not len(self.ledger):
            return EpochResult(
                epoch=self._epoch,
                update=update,
                skipped=True,
                fusion=None,
                snapshot_id=self.state.snapshot_id if self.state else None,
                n_sources=self.ledger.snapshot().n_sources,
                n_items=self.ledger.snapshot().n_items,
                elapsed_seconds=time.perf_counter() - start,
            )

        dataset = self.ledger.snapshot()
        fusion = self._fuse(dataset)
        detection = fusion.final_detection()
        snapshot_id = self._publish(dataset, fusion, detection)

        self._epoch += 1
        self.state = EpochState(
            epoch=self._epoch,
            ledger_version=self.ledger.version,
            dataset=dataset,
            params=self.params,
            probabilities=tuple(fusion.probabilities),
            accuracies=tuple(fusion.accuracies),
            chosen=dict(fusion.chosen),
            detection=detection,
            snapshot_id=snapshot_id,
            conflict=fusion.final_conflict(),
            credibility=(
                tuple(fusion.credibility)
                if fusion.credibility is not None
                else None
            ),
        )
        return EpochResult(
            epoch=self._epoch,
            update=update,
            skipped=False,
            fusion=fusion,
            snapshot_id=snapshot_id,
            n_sources=dataset.n_sources,
            n_items=dataset.n_items,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _fuse(self, dataset: Dataset) -> FusionResult:
        """Run the epoch's fusion loop over the frozen snapshot."""
        if self.params.backend == "numpy":
            if self._workspace is None:
                from ..fusion.workspace import FusionWorkspace

                self._workspace = FusionWorkspace(dataset, self.params)
            else:
                self._workspace.rebind(dataset)

        cfg = self.config
        if self.warm_start and self.state is not None:
            previous = list(self.state.accuracies)
            if cfg.credibility is None:
                pad = [cfg.initial_accuracy] * (dataset.n_sources - len(previous))
            else:
                # Sources that appeared mid-stream never saw the cold
                # start, so their pad must honour the same credibility
                # prior a cold run would apply — otherwise a grown DS
                # epoch and a cold batch run over the accumulated claims
                # would disagree on the newcomers' starting accuracies.
                names = dataset.source_names
                pad = [
                    cfg.credibility.initial_accuracy_for(
                        cfg.initial_accuracy, source_id=sid, name=names[sid]
                    )
                    for sid in range(len(previous), dataset.n_sources)
                ]
            cfg = replace(cfg, initial_accuracies=previous + pad)

        # A fresh detector per epoch: the claim deltas changed the
        # inverted index, and INCREMENTAL's bookkeeping positions are
        # only valid within one index build.  prepare_round=1 makes the
        # first round record the bookkeeping, so every later round of
        # this epoch runs the three-pass incremental patch.
        detector = IncrementalDetector(
            self.params,
            prepare_round=1,
            rho_value=self.rho_value,
            rho_accuracy=self.rho_accuracy,
        )
        self._last_detector = detector
        return run_fusion(
            dataset,
            self.params,
            detector,
            cfg,
            workspace=self._workspace,
        )

    def _publish(
        self,
        dataset: Dataset,
        fusion: FusionResult,
        detection: "DetectionResult | None",
    ) -> int | None:
        """Write this epoch's verdicts + truths to the store, if any."""
        if self.store is None:
            return None
        from ..serving.store import SnapshotPublisher

        if (
            self._publisher is None
            or dataset.n_sources != self._publisher.dataset.n_sources
        ):
            # New sources change the pair-key stride: every key already
            # in the store decodes differently, so the chain cannot be
            # extended.  A fresh publisher starts with a full snapshot.
            self._publisher = SnapshotPublisher(self.store, dataset)
        else:
            self._publisher.rebind(dataset)

        if detection is not None:
            # The last round's changed_pairs is relative to the previous
            # *round* of this epoch; the store's previous state is the
            # previous *epoch*.  Drop it so the publisher falls back to
            # the field-exact diff between the two epochs.
            detection = replace(detection, changed_pairs=None)
        return self._publisher.publish_round(
            self._epoch + 1,
            detection,
            list(fusion.probabilities),
            _decision_positions(self._last_detector),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the workspace's pools and shared memory (idempotent)."""
        if self._workspace is not None:
            self._workspace.close()
            self._workspace = None

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_epochs(
    epochs: Sequence[Sequence[ClaimDelta]],
    store: "VerdictStore | Path | str | None" = None,
    params: CopyParams | None = None,
    config: FusionConfig | None = None,
    warm_start: bool = True,
    rho_value: float = 1.0,
    rho_accuracy: float = 0.2,
) -> list[EpochResult]:
    """Drive a fresh :class:`StreamEngine` over pre-partitioned epochs.

    This is the batch-mode twin of the live service: identical engine,
    identical epoch boundaries, no event loop.  The lockstep-parity
    tests feed the same partitions to both and assert exact equality of
    every epoch's verdicts, accuracies and truths.
    """
    with StreamEngine(
        store=store,
        params=params,
        config=config,
        warm_start=warm_start,
        rho_value=rho_value,
        rho_accuracy=rho_accuracy,
    ) as engine:
        return [engine.run_epoch(epoch) for epoch in epochs]
