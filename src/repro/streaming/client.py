"""Blocking stdlib client for the streaming HTTP/SSE API.

:class:`StreamClient` wraps :mod:`http.client` so scripts, benchmarks
and tests can talk to a running ``repro-copydetect serve`` instance
without any third-party HTTP library.  One client is one host:port; each
call opens a short-lived connection (the server replies
``Connection: close``), except :meth:`events`, which holds its
connection open and yields parsed SSE frames as they arrive.

Example::

    client = StreamClient("127.0.0.1", 8731)
    client.post_claims([{"source": "S0", "item": "NJ", "value": "Trenton"}])
    for event in client.events():        # blocks between epochs
        print(event["epoch"], event["snapshot_id"])
        break
    print(client.get_truth("NJ"))
"""

from __future__ import annotations

import http.client
import json
from typing import Iterable, Iterator, Mapping

from ..data import ClaimDelta


class StreamClientError(RuntimeError):
    """A non-2xx reply from the streaming server (carries the status)."""

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status


class StreamClient:
    """Minimal blocking client for one streaming server.

    Args:
        host: server address.
        port: server port.
        timeout: per-request socket timeout in seconds; also the maximum
            blocking time between SSE events in :meth:`events`.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8731, timeout: float = 30.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": payload[:200].decode("latin-1")}
            if response.status >= 400:
                raise StreamClientError(
                    response.status, str(decoded.get("error", decoded))
                )
            return decoded
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # The API surface
    # ------------------------------------------------------------------
    def post_claims(
        self, claims: Iterable[ClaimDelta | Mapping[str, str]]
    ) -> dict:
        """Submit claim deltas; returns the server's acceptance reply.

        Accepts :class:`~repro.data.ClaimDelta` objects or plain
        ``{"source", "item", "value"}`` mappings.  The reply arrives as
        soon as the deltas enter the server's micro-batcher — watch
        :meth:`events` to learn when the epoch that includes them lands.
        """
        wire = [
            delta.to_json() if isinstance(delta, ClaimDelta) else dict(delta)
            for delta in claims
        ]
        body = json.dumps({"claims": wire}).encode("utf-8")
        return self._request("POST", "/claims", body)

    def get_verdict(self, s1: int, s2: int) -> dict | None:
        """The served pair verdict (None when never observed)."""
        return self._request("GET", f"/verdict?s1={int(s1)}&s2={int(s2)}")["verdict"]

    def get_truth(self, item: int | str) -> dict | None:
        """The served fused truth for an item id or name."""
        from urllib.parse import quote

        return self._request("GET", f"/truth?item={quote(str(item))}")["truth"]

    def explain_pair(self, s1: int, s2: int) -> dict:
        """Live evidence breakdown for a pair from the latest epoch."""
        return self._request("GET", f"/explain?s1={int(s1)}&s2={int(s2)}")

    def stats(self) -> dict:
        """Server ingestion counters and world dimensions."""
        return self._request("GET", "/stats")

    def events(self) -> Iterator[dict]:
        """Yield parsed SSE event dicts from ``GET /events`` as they arrive.

        Blocks up to ``timeout`` seconds between events (a
        ``socket.timeout`` escapes to the caller); ends when the server
        shuts the stream down.  Each yielded dict carries the frame's
        ``data:`` JSON plus an ``"event"`` key with the frame type
        (``hello``, ``epoch``, ``shutdown``).
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", "/events")
            response = conn.getresponse()
            if response.status != 200:
                raise StreamClientError(
                    response.status, response.read()[:200].decode("latin-1")
                )
            event_type = "message"
            data_lines: list[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("event:"):
                    event_type = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and data_lines:
                    payload = json.loads("\n".join(data_lines))
                    if isinstance(payload, dict):
                        payload.setdefault("event", event_type)
                    yield payload
                    if event_type == "shutdown":
                        return
                    event_type = "message"
                    data_lines = []
        finally:
            conn.close()
