"""The versioned regression corpus: divergent worlds, replayable forever.

Every divergence the grid fuzzer confirms is shrunk and frozen here as a
JSON fixture under ``tests/data/corpus/``.  The tier-1 suite
(``tests/test_corpus.py``) replays every fixture on every run, so once a
divergence is fixed it can never silently come back.

Fixtures are fully self-contained and lossless:

* claims as ``(source, item, value)`` string triples in interning order
  (plus the full source list, so claimless sources survive);
* probabilities and accuracies as ``float.hex`` strings — the round trip
  is bit-exact, which the ``bitexact`` contract requires;
* the complete :class:`~repro.conformance.engine.CaseConfig`;
* provenance metadata (schema version, generator kind, seed, the
  divergence details observed at capture time).

``version`` gates the schema: a reader refuses fixtures written by a
newer schema rather than misinterpreting them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from .engine import CaseConfig, run_case
from .generators import World

#: Current fixture schema version.
CORPUS_VERSION = 1

#: Default corpus location (relative to the repo root).
DEFAULT_CORPUS = Path("tests") / "data" / "corpus"


def _encode_world(world: World) -> dict:
    return {
        "kind": world.kind,
        "seed": world.seed,
        "sources": list(world.sources),
        "claims": [list(claim) for claim in world.claims],
        "probabilities": [
            [item, value, prob.hex()]
            for (item, value), prob in world.prob_by_value.items()
        ],
        "accuracies": [
            [source, acc.hex()] for source, acc in world.acc_by_source.items()
        ],
    }


def _decode_world(payload: dict) -> World:
    return World(
        kind=payload["kind"],
        sources=list(payload["sources"]),
        claims=[tuple(claim) for claim in payload["claims"]],
        prob_by_value={
            (item, value): float.fromhex(prob)
            for item, value, prob in payload["probabilities"]
        },
        acc_by_source={
            source: float.fromhex(acc) for source, acc in payload["accuracies"]
        },
        seed=payload.get("seed"),
    )


def _encode_config(config: CaseConfig) -> dict:
    payload = asdict(config)
    if payload["band"] is not None:
        payload["band"] = list(payload["band"])
    return payload


def _decode_config(payload: dict) -> CaseConfig:
    payload = dict(payload)
    if payload.get("band") is not None:
        payload["band"] = tuple(payload["band"])
    return CaseConfig(**payload)


def case_id(world: World, config: CaseConfig) -> str:
    """Deterministic fixture name: config label + world kind + digest."""
    digest = hashlib.sha256(
        json.dumps(
            [_encode_world(world), _encode_config(config)], sort_keys=True
        ).encode()
    ).hexdigest()[:10]
    label = f"{config.label}-{world.kind}".replace(":", "-").replace("+", "plus")
    return f"{label}-{digest}"


def save_case(
    world: World,
    config: CaseConfig,
    details: list[str],
    corpus_dir: str | Path = DEFAULT_CORPUS,
    origin: str = "fuzzer",
) -> Path:
    """Serialize a (world, config) case into the corpus; returns the path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CORPUS_VERSION,
        "id": case_id(world, config),
        "origin": origin,
        "config": _encode_config(config),
        "world": _encode_world(world),
        "divergence_at_capture": details,
    }
    path = corpus_dir / f"{payload['id']}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_case(path: str | Path) -> tuple[World, CaseConfig, dict]:
    """Load a fixture; returns ``(world, config, metadata)``.

    Raises:
        ValueError: for a fixture written by a newer schema version.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if not isinstance(version, int) or version > CORPUS_VERSION:
        raise ValueError(
            f"{path}: corpus schema version {version!r} is newer than "
            f"this library's {CORPUS_VERSION}"
        )
    return (
        _decode_world(payload["world"]),
        _decode_config(payload["config"]),
        {k: v for k, v in payload.items() if k not in ("world", "config")},
    )


def replay_case(path: str | Path) -> list[str]:
    """Re-run a fixture; returns the current divergences (empty = fixed)."""
    world, config, _ = load_case(path)
    return run_case(world, config).divergences


def corpus_paths(corpus_dir: str | Path = DEFAULT_CORPUS) -> list[Path]:
    """All fixture files in a corpus directory, sorted for stable runs."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return sorted(corpus_dir.glob("*.json"))
