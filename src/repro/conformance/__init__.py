"""Conformance engine: differential grid fuzzing against the reference.

The paper's contract is exactness — BOUND/BOUND+ decisions, ACCU /
ACCUCOPY truths and copy verdicts must not drift when the implementation
changes.  This subsystem turns that contract into an executable sweep:

* :mod:`~repro.conformance.generators` — seeded world generators
  (random, adversarial clone/tie/extreme worlds, Table V profile worlds,
  ``theta_cp`` threshold-edge bisection) shared with the hypothesis
  test-suite strategies;
* :mod:`~repro.conformance.engine` — the (method x backend x executor x
  reduce x partition x fusion) grid runner, diffing every configuration
  against the pure-Python reference under a bit-exact or 1e-9 contract,
  with greedy world shrinking on divergence;
* :mod:`~repro.conformance.corpus` — versioned, replayable regression
  fixtures the tier-1 suite executes forever.

Surfaced on the CLI as ``repro-copydetect conformance`` (see the README's
"Conformance & soak" section); the green full-grid run is the soak
evidence behind the ``backend="numpy"`` default.
"""

from .corpus import (
    CORPUS_VERSION,
    DEFAULT_CORPUS,
    case_id,
    corpus_paths,
    load_case,
    replay_case,
    save_case,
)
from .engine import (
    GRIDS,
    NUMERIC_TOL,
    CaseConfig,
    CaseOutcome,
    ConformanceReport,
    Divergence,
    full_grid,
    run_case,
    run_grid,
    shrink_world,
    smoke_grid,
)
from .generators import (
    DrawChooser,
    RandomChooser,
    World,
    adversarial_world,
    build_dataset,
    generate_world,
    profile_world,
    random_world,
    shared_run_world,
    theta_edge_worlds,
    world_from_problem,
)

__all__ = [
    "CORPUS_VERSION",
    "CaseConfig",
    "CaseOutcome",
    "ConformanceReport",
    "DEFAULT_CORPUS",
    "Divergence",
    "DrawChooser",
    "GRIDS",
    "NUMERIC_TOL",
    "RandomChooser",
    "World",
    "adversarial_world",
    "build_dataset",
    "case_id",
    "corpus_paths",
    "full_grid",
    "generate_world",
    "load_case",
    "profile_world",
    "random_world",
    "replay_case",
    "run_case",
    "run_grid",
    "save_case",
    "shared_run_world",
    "shrink_world",
    "smoke_grid",
    "theta_edge_worlds",
    "world_from_problem",
]
